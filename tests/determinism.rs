//! Deterministic-RNG regression tests: the whole simulation stack must be a
//! pure function of the master seed.
//!
//! Two runs of `sim::runner` with the same master seed must produce
//! byte-identical `Stats` — not merely "close" ones. This pins down the
//! seed-derivation contract (`derive_seed(master, trial)` per trial) so
//! future parallelization or pipeline-reordering PRs cannot silently change
//! results: any reordering of RNG draws shows up here as a bit flip.

use ldp_attacks::AttackKind;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::{run_experiment, ExperimentConfig, ExperimentResult, PipelineOptions, Stats};

/// Byte-exact view of a `Stats`: `f64` payloads compared through their bit
/// patterns, so `-0.0 != 0.0` and NaNs would be caught too.
fn bits(s: &Stats) -> (u64, u64, usize) {
    (s.mean.to_bits(), s.std.to_bits(), s.count)
}

fn opt_bits(s: &Option<Stats>) -> Option<(u64, u64, usize)> {
    s.as_ref().map(bits)
}

/// Compares every metric of two experiment results bit-for-bit — the
/// baselines plus the full open arm surface (same arm keys in the same
/// order, every per-arm statistic bit-identical).
fn assert_byte_identical(a: &ExperimentResult, b: &ExperimentResult, what: &str) {
    assert_eq!(
        bits(&a.mse_genuine),
        bits(&b.mse_genuine),
        "{what}: mse_genuine"
    );
    assert_eq!(
        bits(&a.mse_before),
        bits(&b.mse_before),
        "{what}: mse_before"
    );
    assert_eq!(
        opt_bits(&a.fg_before),
        opt_bits(&b.fg_before),
        "{what}: fg_before"
    );
    let keys = |r: &ExperimentResult| -> Vec<String> {
        r.arms.iter().map(|(key, _)| key.clone()).collect()
    };
    assert_eq!(keys(a), keys(b), "{what}: arm set");
    for ((key, arm_a), (_, arm_b)) in a.arms.iter().zip(&b.arms) {
        assert_eq!(
            opt_bits(&arm_a.mse),
            opt_bits(&arm_b.mse),
            "{what}: mse_{key}"
        );
        assert_eq!(opt_bits(&arm_a.fg), opt_bits(&arm_b.fg), "{what}: fg_{key}");
        assert_eq!(
            opt_bits(&arm_a.malicious_mse),
            opt_bits(&arm_b.malicious_mse),
            "{what}: malicious_mse_{key}"
        );
    }
}

fn config(protocol: ProtocolKind, attack: AttackKind) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_default(DatasetKind::Ipums, protocol, Some(attack));
    c.scale = 0.01;
    c.trials = 4;
    c
}

#[test]
fn same_master_seed_gives_byte_identical_stats() {
    // The headline regression guard: every registered defense arm active
    // (reports retained, clustering drawing from the trial RNG) on a
    // targeted attack, run twice.
    let c = config(ProtocolKind::Oue, AttackKind::Mga { r: 10 });
    let options = PipelineOptions::with_arms(ldprecover::ArmSet::new(ldprecover::ArmKind::ALL));
    let a = run_experiment(&c, &options).unwrap();
    let b = run_experiment(&c, &options).unwrap();
    assert_eq!(
        a.arms.len(),
        7,
        "all seven registered arms must report statistics"
    );
    assert_byte_identical(&a, &b, "OUE/MGA all registered arms");
}

#[test]
fn determinism_holds_across_protocols_and_attacks() {
    // Cheaper arms, broader sweep: every protocol against a targeted and an
    // untargeted attack.
    for protocol in ProtocolKind::ALL {
        for attack in [AttackKind::Adaptive, AttackKind::MgaSampled { r: 5 }] {
            let c = config(protocol, attack);
            let options = PipelineOptions::recovery_only();
            let a = run_experiment(&c, &options).unwrap();
            let b = run_experiment(&c, &options).unwrap();
            assert_byte_identical(&a, &b, &format!("{protocol:?}/{attack:?}"));
        }
    }
}

#[test]
fn different_master_seeds_give_different_results() {
    // Sanity check that byte-identity above is not vacuous (e.g. a runner
    // that ignores its RNG entirely would pass the tests above).
    let mut a_cfg = config(ProtocolKind::Grr, AttackKind::Adaptive);
    let mut b_cfg = a_cfg.clone();
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    let options = PipelineOptions::recovery_only();
    let a = run_experiment(&a_cfg, &options).unwrap();
    let b = run_experiment(&b_cfg, &options).unwrap();
    assert_ne!(
        a.mse_before.mean.to_bits(),
        b.mse_before.mean.to_bits(),
        "distinct seeds must perturb the aggregation"
    );
}

#[test]
fn malicious_count_agrees_across_every_engine() {
    // The formula-drift regression: `m = round(β/(1−β)·n)` used to be
    // written out three times (offline config, streaming spec, scenario
    // catalog's kv cell). All call sites now route through
    // `ldp_common::population::malicious_count`; this pins the agreement
    // for every β both scenario grids sweep, at several population sizes,
    // so a future rounding tweak in one engine cannot silently fork the
    // others.
    use ldp_sim::scenario::catalog::{BETA_GRID_FINE, BETA_GRID_WIDE};
    use ldp_sim::StreamSpec;

    let betas: Vec<f64> = BETA_GRID_WIDE
        .iter()
        .chain(&BETA_GRID_FINE)
        .copied()
        .collect();
    for &beta in &betas {
        for n in [1usize, 997, 7_798, 200_000, 1_000_000] {
            let canonical = ldp_common::population::malicious_count(beta, n);

            let mut config = ExperimentConfig::paper_default(
                DatasetKind::Ipums,
                ProtocolKind::Grr,
                Some(AttackKind::Adaptive),
            );
            config.beta = beta;
            assert_eq!(
                config.malicious_count(n),
                canonical,
                "offline config forked at beta={beta}, n={n}"
            );

            let spec = StreamSpec::from_experiment(&config, 2, 3, 1_000);
            assert_eq!(
                spec.malicious_count(n),
                canonical,
                "stream spec forked at beta={beta}, n={n}"
            );
        }
    }
    // Without an attack both engines report zero regardless of β.
    let mut clean = ExperimentConfig::paper_default(DatasetKind::Ipums, ProtocolKind::Grr, None);
    clean.beta = 0.0;
    assert_eq!(clean.malicious_count(10_000), 0);
    assert_eq!(
        StreamSpec::from_experiment(&clean, 1, 1, 100).malicious_count(10_000),
        0
    );
}
