//! Checkpoint / restore tests for the streaming ingestion engine.
//!
//! The suspend/resume contract: serializing the engine through the shared
//! JSON value layer (`ldp_common::json`), restoring it — possibly in a
//! different process — and continuing the stream is **bit-identical** to
//! never having stopped. Randomness is derived per `(shard, epoch)`, so
//! the contract needs no RNG serialization; what it does need is the JSON
//! layer reproducing every `f64` and count exactly, which the proptest
//! below hammers with randomized engine states (full-width seeds
//! included), and strict rejection of malformed checkpoints.

use ldp_attacks::AttackKind;
use ldp_common::Json;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::stream::{StreamEngine, StreamSpec, WindowMode};
use proptest::prelude::*;

fn spec(protocol: ProtocolKind, shards: usize, epochs: usize) -> StreamSpec {
    StreamSpec {
        dataset: DatasetKind::Ipums,
        protocol,
        epsilon: 0.5,
        attack: Some(AttackKind::Mga { r: 5 }),
        beta: 0.05,
        eta: 0.2,
        shards,
        epochs,
        users_per_epoch: 400,
        seed: 0xC0FFEE,
        window: WindowMode::Cumulative,
    }
}

/// One full serialize → bytes → parse → restore cycle.
fn roundtrip(engine: &StreamEngine) -> StreamEngine {
    let bytes = engine.to_checkpoint().render();
    StreamEngine::from_checkpoint(&Json::parse(&bytes).expect("parse")).expect("restore")
}

#[test]
fn suspend_resume_is_bit_identical_to_an_uninterrupted_run() {
    // For every protocol: run 4 epochs straight through, and 2 + (dump,
    // restore) + 2 — the final states, trajectories, reports, and
    // recovered frequencies must match bitwise.
    for protocol in ProtocolKind::EXTENDED {
        let spec = spec(protocol, 3, 4);
        let mut uninterrupted = StreamEngine::new(spec).unwrap();
        uninterrupted.run_to_completion().unwrap();

        let mut first_half = StreamEngine::new(spec).unwrap();
        first_half.step().unwrap();
        first_half.step().unwrap();
        let mut resumed = roundtrip(&first_half);
        assert_eq!(resumed, first_half, "{protocol}: restore changed state");
        resumed.run_to_completion().unwrap();

        assert_eq!(resumed, uninterrupted, "{protocol}: resumed final state");
        assert_eq!(
            resumed.report().unwrap().render(),
            uninterrupted.report().unwrap().render(),
            "{protocol}: resumed report bytes"
        );
        let a = resumed.recovery_snapshot().unwrap();
        let b = uninterrupted.recovery_snapshot().unwrap();
        for (x, y) in a.recovered.iter().zip(&b.recovered) {
            assert_eq!(x.to_bits(), y.to_bits(), "{protocol}: recovered bits");
        }
    }
}

#[test]
fn checkpoints_can_be_taken_at_every_epoch_boundary() {
    // Continuous checkpointing (what `ldp stream --checkpoint` does):
    // dumping after each epoch and restoring from *any* of those dumps,
    // then finishing, always reproduces the uninterrupted run.
    let spec = spec(ProtocolKind::Grr, 2, 3);
    let mut reference = StreamEngine::new(spec).unwrap();
    reference.run_to_completion().unwrap();

    let mut engine = StreamEngine::new(spec).unwrap();
    let mut dumps = vec![engine.to_checkpoint().render()];
    while !engine.is_complete() {
        engine.step().unwrap();
        dumps.push(engine.to_checkpoint().render());
    }
    for (at, dump) in dumps.iter().enumerate() {
        let mut resumed = StreamEngine::from_checkpoint(&Json::parse(dump).unwrap()).unwrap();
        assert_eq!(resumed.epochs_done(), at);
        resumed.run_to_completion().unwrap();
        assert_eq!(resumed, reference, "resumed from the epoch-{at} dump");
    }
}

proptest! {
    // Each case runs a real (small) engine; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// JSON value-layer round-trip on randomized engine states: random
    /// protocol/layout/traffic/attack and a full-width random seed. The
    /// restored engine must equal the original, and a second serialize
    /// must reproduce the exact bytes (the layer is a bijection on the
    /// states the engine emits).
    #[test]
    fn random_engine_states_roundtrip_bitwise(
        protocol_pick in 0usize..5,
        shards in 1usize..4,
        epochs in 1usize..3,
        users in 30usize..120,
        run_epochs in 0usize..3,
        attacked in 0u8..2,
        seed in 0u64..u64::MAX,
        window_pick in 0usize..4,
    ) {
        let protocol = ProtocolKind::EXTENDED[protocol_pick];
        let window = [
            WindowMode::Cumulative,
            WindowMode::Sliding(1),
            WindowMode::Sliding(2),
            WindowMode::Decay(0.75),
        ][window_pick];
        let spec = StreamSpec {
            dataset: DatasetKind::Ipums,
            protocol,
            epsilon: 0.8,
            attack: (attacked == 1).then_some(AttackKind::Adaptive),
            beta: if attacked == 1 { 0.05 } else { 0.0 },
            eta: 0.2,
            shards,
            epochs,
            users_per_epoch: users.max(shards),
            seed,
            window,
        };
        let mut engine = StreamEngine::new(spec).unwrap();
        for _ in 0..run_epochs.min(epochs) {
            engine.step().unwrap();
        }
        let bytes = engine.to_checkpoint().render();
        let restored =
            StreamEngine::from_checkpoint(&Json::parse(&bytes).unwrap()).unwrap();
        prop_assert_eq!(&restored, &engine);
        prop_assert_eq!(restored.to_checkpoint().render(), bytes);
    }
}

#[test]
fn truncated_checkpoints_are_rejected_not_misread() {
    // Every proper prefix that drops the closing brace must fail the
    // parse (or, for degenerate prefixes that still parse, the restore
    // validation) — never panic, never resume silently corrupt state.
    let mut engine = StreamEngine::new(spec(ProtocolKind::Oue, 2, 2)).unwrap();
    engine.step().unwrap();
    let text = engine.to_checkpoint().render();
    let len = text.len();
    for cut in [1, len / 4, len / 2, len - 2] {
        let prefix = &text[..cut];
        let outcome = Json::parse(prefix).and_then(|j| StreamEngine::from_checkpoint(&j));
        assert!(outcome.is_err(), "accepted a {cut}-byte prefix of {len}");
    }
}

#[test]
fn foreign_json_documents_are_rejected() {
    for bad in [
        "null",
        "[]",
        "{\"figure\": \"fig3\"}",
        "{\"format\": \"ldp-stream-checkpoint\"}",
        "{\"format\": \"ldp-stream-checkpoint\", \"version\": 1, \"spec\": {}}",
    ] {
        let json = Json::parse(bad).unwrap();
        assert!(
            StreamEngine::from_checkpoint(&json).is_err(),
            "accepted {bad}"
        );
    }
}

#[test]
fn spec_tampering_is_caught_by_validation() {
    // A checkpoint whose spec was edited out of range must fail restore
    // even though the JSON itself is well-formed.
    let mut engine = StreamEngine::new(spec(ProtocolKind::Grr, 2, 2)).unwrap();
    engine.step().unwrap();
    let text = engine.to_checkpoint().render();
    let tampered = text.replace("\"epsilon\": 0.5", "\"epsilon\": -1");
    assert_ne!(tampered, text, "tamper target present");
    let json = Json::parse(&tampered).unwrap();
    assert!(StreamEngine::from_checkpoint(&json).is_err());
}
