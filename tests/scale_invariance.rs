//! Validates the harness's `--scale` substitution argument (DESIGN.md §3):
//! shrinking the population inflates MSE uniformly (∝ 1/n) across methods,
//! so *who wins* is preserved at any scale.

use ldp_attacks::AttackKind;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::{run_experiment, ExperimentConfig, PipelineOptions};

fn config_at_scale(scale: f64) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_default(
        DatasetKind::Ipums,
        ProtocolKind::Grr,
        Some(AttackKind::Adaptive),
    );
    c.scale = scale;
    c.trials = 4;
    c
}

#[test]
fn method_ordering_is_preserved_across_scales() {
    let options = PipelineOptions::recovery_only();
    for scale in [0.01, 0.05] {
        let result = run_experiment(&config_at_scale(scale), &options).unwrap();
        assert!(
            result.mse_recover().unwrap().mean < result.mse_before.mean,
            "scale {scale}: recovery must beat poisoning"
        );
    }
}

#[test]
fn genuine_noise_floor_scales_inversely_with_n() {
    // Without an attack, the estimation MSE is the protocol variance,
    // which scales as 1/n: quadrupling the population should cut the MSE
    // by roughly 4 (within trial noise).
    let mut small = config_at_scale(0.02);
    small.attack = None;
    small.beta = 0.0;
    small.trials = 6;
    let mut large = small.clone();
    large.scale = 0.08;

    let options = PipelineOptions::default();
    let mse_small = run_experiment(&small, &options).unwrap().mse_before.mean;
    let mse_large = run_experiment(&large, &options).unwrap().mse_before.mean;
    let ratio = mse_small / mse_large;
    assert!(
        (2.0..8.0).contains(&ratio),
        "expected ≈4x MSE ratio for 4x population, got {ratio}"
    );
}

#[test]
fn poisoned_mse_is_scale_insensitive_for_fixed_beta() {
    // The attack-induced bias dominates the noise floor and depends on β,
    // not n — poisoned MSE should be of the same order at both scales.
    let options = PipelineOptions::default();
    let a = run_experiment(&config_at_scale(0.02), &options)
        .unwrap()
        .mse_before
        .mean;
    let b = run_experiment(&config_at_scale(0.08), &options)
        .unwrap()
        .mse_before
        .mean;
    let ratio = a / b;
    assert!(
        (0.3..6.0).contains(&ratio),
        "poisoned MSE should not explode across scales, ratio {ratio}"
    );
}
