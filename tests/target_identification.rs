//! Target identification (paper §V-D): the partial-knowledge arm's inputs
//! must be obtainable in practice — from the attack (oracle), from a
//! pre-attack reference (top-k increase), or from historical rounds
//! (moving-average outlier detection).

use ldp_attacks::{AttackKind, MgaSampled, PoisoningAttack};
use ldp_common::rng::rng_from_seed;
use ldp_common::Domain;
use ldp_datasets::DatasetKind;
use ldp_protocols::{CountAccumulator, LdpFrequencyProtocol, ProtocolKind};
use ldp_sim::{pipeline::run_trial, ExperimentConfig, PipelineOptions};
use ldprecover::{top_k_increase, MovingAverageDetector};

#[test]
fn top_k_increase_finds_mga_targets() {
    // Simulate pre/post attack aggregations directly and check the paper's
    // identification rule recovers the target set.
    let d = 64usize;
    let domain = Domain::new(d).unwrap();
    let protocol = ProtocolKind::Grr.build(0.5, domain).unwrap();
    let n = 30_000usize;
    let mut rng = rng_from_seed(1);

    let mut genuine_acc = CountAccumulator::new(domain);
    for i in 0..n {
        let item = i % 8; // mass on the first 8 items
        let report = protocol.perturb(item, &mut rng);
        genuine_acc.add(&protocol, &report);
    }
    let reference = genuine_acc.frequencies(protocol.params()).unwrap();

    let attack = MgaSampled::new(domain, vec![40, 45, 50, 55]);
    let malicious = attack.craft(&protocol, 3_000, &mut rng);
    let mut poisoned_acc = genuine_acc.clone();
    poisoned_acc.add_all(&protocol, &malicious);
    let poisoned = poisoned_acc.frequencies(protocol.params()).unwrap();

    let identified = top_k_increase(&poisoned, &reference, 4).unwrap();
    let mut sorted = identified.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![40, 45, 50, 55], "identified {identified:?}");
}

#[test]
fn moving_average_detector_flags_targets_from_history() {
    // Multi-round scenario: several clean collection rounds form the
    // history, then a poisoned round arrives.
    let mut config = ExperimentConfig::paper_default(
        DatasetKind::Ipums,
        ProtocolKind::Grr,
        Some(AttackKind::MgaSampled { r: 5 }),
    );
    config.scale = 0.02;
    let clean_options = PipelineOptions::default();

    // History: 6 clean rounds (β = 0 via attack = None).
    let mut clean_config = config.clone();
    clean_config.attack = None;
    clean_config.beta = 0.0;
    let mut history = Vec::new();
    for round in 0..6u64 {
        let mut rng = rng_from_seed(100 + round);
        let trial = run_trial(&clean_config, &clean_options, &mut rng).unwrap();
        history.push(trial.genuine);
    }

    // The poisoned round.
    let mut rng = rng_from_seed(999);
    let trial = run_trial(&config, &PipelineOptions::default(), &mut rng).unwrap();
    let targets = trial.attack_targets.clone().expect("targeted attack");

    let detector = MovingAverageDetector::default();
    let flagged = detector.detect(&history, &trial.poisoned).unwrap();

    // Every true target whose frequency gain is non-trivial must be
    // flagged; allow the detector to also flag a few noisy extras.
    let flagged_set: std::collections::HashSet<usize> = flagged.iter().copied().collect();
    let hit = targets.iter().filter(|t| flagged_set.contains(t)).count();
    assert!(
        hit >= targets.len() - 1,
        "targets {targets:?}, flagged {flagged:?}"
    );
    assert!(
        flagged.len() <= targets.len() + 5,
        "detector too noisy: {flagged:?}"
    );
}

#[test]
fn identified_targets_feed_recovery_as_well_as_oracle_targets() {
    // End-to-end: LDPRecover* with *identified* targets performs close to
    // LDPRecover* with oracle targets under sampled MGA.
    let mut config = ExperimentConfig::paper_default(
        DatasetKind::Ipums,
        ProtocolKind::Grr,
        Some(AttackKind::MgaSampled { r: 10 }),
    );
    config.scale = 0.05;

    let mut rng = rng_from_seed(7);
    let agg =
        ldp_sim::pipeline::run_aggregation(&config, &PipelineOptions::default(), &mut rng).unwrap();
    let params = agg.params();
    let oracle_targets = agg.attack_targets.clone().unwrap();
    let identified = top_k_increase(
        &agg.poisoned_freqs,
        &agg.genuine_freqs,
        oracle_targets.len(),
    )
    .unwrap();

    let recover = |targets: Vec<usize>| {
        ldprecover::LdpRecover::new(0.2)
            .unwrap()
            .with_targets(targets)
            .recover(&agg.poisoned_freqs, params)
            .unwrap()
            .frequencies
    };
    let with_oracle = recover(oracle_targets.clone());
    let with_identified = recover(identified.clone());
    let mse_oracle = ldp_sim::metrics::mse(&with_oracle, &agg.true_freqs);
    let mse_identified = ldp_sim::metrics::mse(&with_identified, &agg.true_freqs);
    assert!(
        mse_identified < 3.0 * mse_oracle + 1e-5,
        "identified {mse_identified:.3e} vs oracle {mse_oracle:.3e}"
    );
}
