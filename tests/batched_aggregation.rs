//! Workspace-level contract of the count-based batched aggregation engine:
//! batched trials are (a) deterministic per seed, (b) statistically
//! interchangeable with per-user trials all the way through recovery, and
//! (c) honest about their incompatibility with report-consuming arms.

use ldp_attacks::AttackKind;
use ldp_common::rng::rng_from_seed;
use ldp_common::Domain;
use ldp_datasets::DatasetKind;
use ldp_protocols::{CountAccumulator, LdpFrequencyProtocol, ProtocolKind};
use ldp_sim::{run_experiment, AggregationMode, ExperimentConfig, PipelineOptions};

fn config(protocol: ProtocolKind) -> ExperimentConfig {
    let mut c =
        ExperimentConfig::paper_default(DatasetKind::Ipums, protocol, Some(AttackKind::Adaptive));
    c.scale = 0.02;
    c.trials = 4;
    c
}

fn options(mode: AggregationMode) -> PipelineOptions {
    PipelineOptions {
        aggregation: mode,
        ..PipelineOptions::recovery_only()
    }
}

#[test]
fn batched_experiments_are_deterministic() {
    for protocol in ProtocolKind::EXTENDED {
        let c = config(protocol);
        let opts = options(AggregationMode::Batched);
        let a = run_experiment(&c, &opts).unwrap();
        let b = run_experiment(&c, &opts).unwrap();
        assert_eq!(
            a.mse_recover().unwrap().mean.to_bits(),
            b.mse_recover().unwrap().mean.to_bits(),
            "{protocol:?}"
        );
        assert_eq!(
            a.mse_before.mean.to_bits(),
            b.mse_before.mean.to_bits(),
            "{protocol:?}"
        );
    }
}

#[test]
fn batched_recovery_matches_per_user_recovery_statistically() {
    // The end-to-end equivalence check: for every protocol, both modes
    // must land in the same MSE envelope before *and* after recovery.
    // They share no RNG draws, so the comparison is distributional: means
    // within 8 pooled standard deviations.
    for protocol in ProtocolKind::ALL {
        let c = config(protocol);
        let batched = run_experiment(&c, &options(AggregationMode::Batched)).unwrap();
        let per_user = run_experiment(&c, &options(AggregationMode::PerUser)).unwrap();
        for (a, b, what) in [
            (&batched.mse_genuine, &per_user.mse_genuine, "genuine"),
            (&batched.mse_before, &per_user.mse_before, "before"),
            (
                &batched.mse_recover().unwrap(),
                &per_user.mse_recover().unwrap(),
                "recover",
            ),
        ] {
            let spread = a.std.max(b.std).max(1e-9);
            assert!(
                (a.mean - b.mean).abs() < 8.0 * spread,
                "{protocol:?} {what}: batched {} vs per-user {} (spread {spread})",
                a.mean,
                b.mean
            );
        }
    }
}

#[test]
fn batched_recovery_still_beats_poisoning() {
    // The paper's headline ordering must survive the engine swap.
    let mut c = config(ProtocolKind::Grr);
    c.trials = 6;
    let result = run_experiment(&c, &options(AggregationMode::Batched)).unwrap();
    let recover = result.mse_recover().unwrap().mean;
    assert!(
        recover < result.mse_before.mean,
        "recover {} !< before {}",
        recover,
        result.mse_before.mean
    );
}

#[test]
fn forced_batched_mode_rejects_report_arms() {
    let c = config(ProtocolKind::Oue);
    let opts = PipelineOptions {
        aggregation: AggregationMode::Batched,
        ..PipelineOptions::full_comparison()
    };
    assert!(run_experiment(&c, &opts).is_err());
}

#[test]
fn auto_mode_preserves_full_comparison_arms() {
    // Auto must silently fall back to per-user when Detection/k-means are
    // in play: every arm of the Fig. 3/4 comparison still materializes.
    let mut c = config(ProtocolKind::Oue);
    c.attack = Some(AttackKind::Mga { r: 10 });
    let result = run_experiment(&c, &PipelineOptions::full_comparison()).unwrap();
    assert!(result.mse_star().is_some());
    assert!(result.mse_detection().is_some());
    assert!(result.fg_before.is_some());
}

/// A skewed halving population over `d` items, `n` users total.
fn halving_population(d: usize, n: u64) -> Vec<u64> {
    let mut item_counts = vec![0u64; d];
    let mut remaining = n;
    for slot in &mut item_counts {
        let c = (remaining / 2).max(1).min(remaining);
        *slot = c;
        remaining -= c;
        if remaining == 0 {
            break;
        }
    }
    item_counts
}

#[test]
fn olh_closed_form_matches_per_user_across_epsilon_and_domain() {
    // The differential gate of the OLH λ-split sampler (which retired the
    // grouped per-user fallback): over repeated aggregations of a fixed
    // population, the closed-form and per-user support counts must agree
    // in per-item mean and variance, and both must sit on the analytic
    // values `E[C(v)] = c_v·p + (n−c_v)·q` and
    // `Var[C(v)] = c_v·p(1−p) + (n−c_v)·q(1−q)`, across the ε range of
    // the paper's sweeps and domains from GRR-scale to Hadamard-scale.
    // Population sizes / reps shrink as d grows to keep the per-user
    // reference path (O(n·d) hash evaluations per rep) affordable in
    // debug builds.
    for (d, n, reps) in [
        (16usize, 2_000u64, 60usize),
        (128, 1_000, 40),
        (1_024, 400, 24),
    ] {
        for eps in [0.5f64, 1.0, 2.0] {
            let item_counts = halving_population(d, n);
            let domain = Domain::new(d).unwrap();
            let protocol = ProtocolKind::Olh.build(eps, domain).unwrap();
            let params = protocol.params();
            let (p, q) = (params.p(), params.q());

            let mut rng = rng_from_seed(0x01_1155 ^ d as u64 ^ (eps * 64.0) as u64);
            let mut sums = [vec![0.0f64; d], vec![0.0f64; d]];
            let mut sqs = [vec![0.0f64; d], vec![0.0f64; d]];
            for _ in 0..reps {
                let batched = protocol
                    .batch_aggregate(&item_counts, &mut rng)
                    .expect("OLH is closed-form");
                let mut acc = CountAccumulator::new(domain);
                for (item, &c) in item_counts.iter().enumerate() {
                    for _ in 0..c {
                        let report = protocol.perturb(item, &mut rng);
                        acc.add(&protocol, &report);
                    }
                }
                for (path, counts) in [&batched[..], acc.counts()].into_iter().enumerate() {
                    for (v, &count) in counts.iter().enumerate() {
                        sums[path][v] += count as f64;
                        sqs[path][v] += (count as f64).powi(2);
                    }
                }
            }

            for v in 0..d {
                let c = item_counts[v] as f64;
                let analytic_mean = c * p + (n as f64 - c) * q;
                let analytic_var = c * p * (1.0 - p) + (n as f64 - c) * q * (1.0 - q);
                let mean = |path: usize| sums[path][v] / reps as f64;
                let var = |path: usize| sqs[path][v] / reps as f64 - mean(path).powi(2);

                // Both paths on the analytic mean (6σ of the rep average)…
                let mean_tol = 6.0 * (analytic_var / reps as f64).sqrt();
                for (path, label) in [(0, "closed-form"), (1, "per-user")] {
                    assert!(
                        (mean(path) - analytic_mean).abs() < mean_tol,
                        "eps={eps} d={d} item {v} {label}: mean {} vs analytic \
                         {analytic_mean} (tol {mean_tol})",
                        mean(path)
                    );
                }
                // …therefore on each other, and with matching spread:
                // sample variances within the (generous) sampling error of
                // a variance estimate over `reps` draws.
                assert!(
                    (mean(0) - mean(1)).abs() < 2.0 * mean_tol,
                    "eps={eps} d={d} item {v}: closed-form mean {} vs per-user mean {}",
                    mean(0),
                    mean(1)
                );
                let var_tol = 10.0 * analytic_var * (2.0 / reps as f64).sqrt();
                assert!(
                    (var(0) - var(1)).abs() < var_tol,
                    "eps={eps} d={d} item {v}: closed-form var {} vs per-user var {} \
                     (tol {var_tol})",
                    var(0),
                    var(1)
                );
                for (path, label) in [(0, "closed-form"), (1, "per-user")] {
                    assert!(
                        (var(path) - analytic_var).abs() < var_tol,
                        "eps={eps} d={d} item {v} {label}: var {} vs analytic \
                         {analytic_var} (tol {var_tol})",
                        var(path)
                    );
                }
            }
        }
    }
}

#[test]
fn olh_retirement_leaves_non_olh_rng_streams_untouched() {
    // Bit-compare gate for the OLH retirement + zero-alloc refactor: the
    // GRR/OUE/SUE/HR batched samplers must consume *exactly* the RNG
    // draws they did before (the `add_multinomial_uniform` rewrite is
    // draw-for-draw identical), so every non-OLH batched experiment —
    // including the 13 blessed goldens — reproduces bit-identically.
    // Expected vectors were captured at the pre-retirement tree.
    let d = 16usize;
    let item_counts = halving_population(d, 5_000);
    let domain = Domain::new(d).unwrap();
    let expected: [(ProtocolKind, Vec<u64>); 4] = [
        (
            ProtocolKind::Grr,
            vec![
                441, 392, 340, 324, 306, 300, 265, 318, 296, 269, 276, 294, 306, 316, 247, 310,
            ],
        ),
        (
            ProtocolKind::Oue,
            vec![
                2037, 1810, 1662, 1683, 1605, 1561, 1570, 1563, 1572, 1563, 1595, 1590, 1551, 1609,
                1461, 1484,
            ],
        ),
        (
            ProtocolKind::Sue,
            vec![
                2424, 2275, 2103, 2128, 2011, 2028, 2005, 2001, 1987, 1994, 1960, 1965, 2006, 1946,
                1912, 1936,
            ],
        ),
        (
            ProtocolKind::Hr,
            vec![
                2942, 2722, 2592, 2587, 2567, 2551, 2543, 2589, 2569, 2487, 2467, 2504, 2474, 2456,
                2470, 2474,
            ],
        ),
    ];
    for (kind, want) in expected {
        let protocol = kind.build(0.8, domain).unwrap();
        let got = protocol
            .batch_aggregate(&item_counts, &mut rng_from_seed(0xD1FF))
            .unwrap();
        assert_eq!(got, want, "{kind:?}: batched RNG stream perturbed");
    }
}

#[test]
fn batched_estimates_stay_near_truth_at_tiny_scale() {
    // Direct accuracy guard (independent of the per-user path): the
    // batched genuine estimate must sit at the LDP noise floor, i.e. its
    // MSE against the truth is far below the poisoned estimate's.
    let mut c = config(ProtocolKind::Grr);
    c.beta = 0.10;
    let result = run_experiment(&c, &options(AggregationMode::Batched)).unwrap();
    assert!(result.mse_genuine.mean < result.mse_before.mean);
    assert!(result.mse_genuine.mean.is_finite());
}
