//! Workspace-level contract of the count-based batched aggregation engine:
//! batched trials are (a) deterministic per seed, (b) statistically
//! interchangeable with per-user trials all the way through recovery, and
//! (c) honest about their incompatibility with report-consuming arms.

use ldp_attacks::AttackKind;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::{run_experiment, AggregationMode, ExperimentConfig, PipelineOptions};

fn config(protocol: ProtocolKind) -> ExperimentConfig {
    let mut c =
        ExperimentConfig::paper_default(DatasetKind::Ipums, protocol, Some(AttackKind::Adaptive));
    c.scale = 0.02;
    c.trials = 4;
    c
}

fn options(mode: AggregationMode) -> PipelineOptions {
    PipelineOptions {
        aggregation: mode,
        ..PipelineOptions::recovery_only()
    }
}

#[test]
fn batched_experiments_are_deterministic() {
    for protocol in ProtocolKind::EXTENDED {
        let c = config(protocol);
        let opts = options(AggregationMode::Batched);
        let a = run_experiment(&c, &opts).unwrap();
        let b = run_experiment(&c, &opts).unwrap();
        assert_eq!(
            a.mse_recover.mean.to_bits(),
            b.mse_recover.mean.to_bits(),
            "{protocol:?}"
        );
        assert_eq!(
            a.mse_before.mean.to_bits(),
            b.mse_before.mean.to_bits(),
            "{protocol:?}"
        );
    }
}

#[test]
fn batched_recovery_matches_per_user_recovery_statistically() {
    // The end-to-end equivalence check: for every protocol, both modes
    // must land in the same MSE envelope before *and* after recovery.
    // They share no RNG draws, so the comparison is distributional: means
    // within 8 pooled standard deviations.
    for protocol in ProtocolKind::ALL {
        let c = config(protocol);
        let batched = run_experiment(&c, &options(AggregationMode::Batched)).unwrap();
        let per_user = run_experiment(&c, &options(AggregationMode::PerUser)).unwrap();
        for (a, b, what) in [
            (&batched.mse_genuine, &per_user.mse_genuine, "genuine"),
            (&batched.mse_before, &per_user.mse_before, "before"),
            (&batched.mse_recover, &per_user.mse_recover, "recover"),
        ] {
            let spread = a.std.max(b.std).max(1e-9);
            assert!(
                (a.mean - b.mean).abs() < 8.0 * spread,
                "{protocol:?} {what}: batched {} vs per-user {} (spread {spread})",
                a.mean,
                b.mean
            );
        }
    }
}

#[test]
fn batched_recovery_still_beats_poisoning() {
    // The paper's headline ordering must survive the engine swap.
    let mut c = config(ProtocolKind::Grr);
    c.trials = 6;
    let result = run_experiment(&c, &options(AggregationMode::Batched)).unwrap();
    assert!(
        result.mse_recover.mean < result.mse_before.mean,
        "recover {} !< before {}",
        result.mse_recover.mean,
        result.mse_before.mean
    );
}

#[test]
fn forced_batched_mode_rejects_report_arms() {
    let c = config(ProtocolKind::Oue);
    let opts = PipelineOptions {
        aggregation: AggregationMode::Batched,
        ..PipelineOptions::full_comparison()
    };
    assert!(run_experiment(&c, &opts).is_err());
}

#[test]
fn auto_mode_preserves_full_comparison_arms() {
    // Auto must silently fall back to per-user when Detection/k-means are
    // in play: every arm of the Fig. 3/4 comparison still materializes.
    let mut c = config(ProtocolKind::Oue);
    c.attack = Some(AttackKind::Mga { r: 10 });
    let result = run_experiment(&c, &PipelineOptions::full_comparison()).unwrap();
    assert!(result.mse_star.is_some());
    assert!(result.mse_detection.is_some());
    assert!(result.fg_before.is_some());
}

#[test]
fn batched_estimates_stay_near_truth_at_tiny_scale() {
    // Direct accuracy guard (independent of the per-user path): the
    // batched genuine estimate must sit at the LDP noise floor, i.e. its
    // MSE against the truth is far below the poisoned estimate's.
    let mut c = config(ProtocolKind::Grr);
    c.beta = 0.10;
    let result = run_experiment(&c, &options(AggregationMode::Batched)).unwrap();
    assert!(result.mse_genuine.mean < result.mse_before.mean);
    assert!(result.mse_genuine.mean.is_finite());
}
