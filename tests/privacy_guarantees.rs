//! ε-LDP verification for every protocol (Definition 1 of the paper):
//! for any two inputs `v₁, v₂` and any output set `T`,
//! `Pr[Ψ(v₁) ∈ T] ≤ e^ε · Pr[Ψ(v₂) ∈ T]`.
//!
//! For the discrete mechanisms here the worst-case likelihood ratio has a
//! closed form, which we check analytically from the protocol parameters,
//! and we confirm empirically that observed output frequencies respect the
//! bound.

use ldp_common::rng::rng_from_seed;
use ldp_common::Domain;
use ldp_protocols::{BinaryRandomizedResponse, Grr, LdpFrequencyProtocol, Olh, Oue, Sue};

const EPSILONS: [f64; 3] = [0.5, 1.0, 2.0];

#[test]
fn grr_worst_case_ratio_is_exactly_e_epsilon() {
    // GRR: Pr[output = v | input = v] / Pr[output = v | input = w] = p/q.
    let domain = Domain::new(102).unwrap();
    for eps in EPSILONS {
        let grr = Grr::new(eps, domain).unwrap();
        let ratio = grr.params().p() / grr.params().q();
        assert!((ratio - eps.exp()).abs() < 1e-9, "eps={eps}: ratio={ratio}");
    }
}

#[test]
fn rr_worst_case_ratio_is_exactly_e_epsilon() {
    for eps in EPSILONS {
        let rr = BinaryRandomizedResponse::new(eps).unwrap();
        let ratio = rr.params().p() / rr.params().q();
        assert!((ratio - eps.exp()).abs() < 1e-9);
    }
}

#[test]
fn oue_per_report_ratio_is_exactly_e_epsilon() {
    // OUE: the likelihood ratio between inputs v and w for a full report
    // is maximized by the bit pattern (bit_v = 1, bit_w = 0):
    //   [p/q] · [(1−q)/(1−p)] with p = 1/2, q = 1/(e^ε+1)
    // = [ (1/2)/(1/(e^ε+1)) ] · [ (e^ε/(e^ε+1)) / (1/2) ] = e^ε.
    let domain = Domain::new(64).unwrap();
    for eps in EPSILONS {
        let oue = Oue::new(eps, domain).unwrap();
        let (p, q) = (oue.params().p(), oue.params().q());
        let ratio = (p / q) * ((1.0 - q) / (1.0 - p));
        assert!((ratio - eps.exp()).abs() < 1e-9, "eps={eps}: ratio={ratio}");
    }
}

#[test]
fn sue_per_report_ratio_is_exactly_e_epsilon() {
    // SUE: p = e^{ε/2}/(1+e^{ε/2}), q = 1−p; the two-bit worst case gives
    // (p/q)² = e^ε.
    let domain = Domain::new(64).unwrap();
    for eps in EPSILONS {
        let sue = Sue::new(eps, domain).unwrap();
        let (p, q) = (sue.params().p(), sue.params().q());
        let ratio = (p / q) * ((1.0 - q) / (1.0 - p));
        assert!((ratio - eps.exp()).abs() < 1e-9, "eps={eps}: ratio={ratio}");
    }
}

#[test]
fn olh_inner_grr_ratio_is_exactly_e_epsilon() {
    // OLH perturbs the hashed value with GRR over {0..g−1}:
    // p_grr/q_grr = e^ε with p_grr = e^ε/(e^ε+g−1), q_grr = 1/(e^ε+g−1).
    // (The support probabilities p, q = 1/g differ — privacy is a property
    // of the *mechanism*, not the support relation.)
    let domain = Domain::new(64).unwrap();
    for eps in EPSILONS {
        let olh = Olh::new(eps, domain).unwrap();
        let g = f64::from(olh.range());
        let p_grr = eps.exp() / (eps.exp() + g - 1.0);
        let q_grr = 1.0 / (eps.exp() + g - 1.0);
        assert!(((p_grr / q_grr) - eps.exp()).abs() < 1e-9);
    }
}

#[test]
fn grr_empirical_output_distribution_respects_the_bound() {
    // Empirical check: for every output o,
    // rate(o | input a) ≤ e^ε · rate(o | input b) within sampling noise.
    let d = 12usize;
    let domain = Domain::new(d).unwrap();
    let eps = 1.0;
    let grr = Grr::new(eps, domain).unwrap();
    let n = 300_000usize;
    let mut rng = rng_from_seed(5);
    let mut rates = vec![vec![0f64; d]; 2];
    for (input, rate) in [3usize, 9].into_iter().zip(rates.iter_mut()) {
        for _ in 0..n {
            rate[grr.perturb(input, &mut rng) as usize] += 1.0;
        }
        for r in rate.iter_mut() {
            *r /= n as f64;
        }
    }
    let bound = eps.exp();
    for (o, (&ra, &rb)) in rates[0].iter().zip(&rates[1]).enumerate() {
        // 5σ slack on each observed rate.
        let slack = 5.0 * (ra.max(rb) / n as f64).sqrt();
        assert!(
            ra <= bound * rb + slack * (1.0 + bound),
            "output {o}: {ra} vs e^ε·{rb}"
        );
        assert!(
            rb <= bound * ra + slack * (1.0 + bound),
            "output {o} (reverse)"
        );
    }
}

#[test]
fn oue_empirical_per_bit_ratios_respect_the_bound() {
    // For the v-th bit, P[bit=1 | holder] = p and P[bit=1 | non-holder] = q;
    // the empirical ratio must stay within e^ε (it equals e^ε·(…) < e^ε
    // for the one-sided event; the two-bit joint achieves e^ε exactly).
    let d = 16usize;
    let domain = Domain::new(d).unwrap();
    let eps = 1.0;
    let oue = Oue::new(eps, domain).unwrap();
    let n = 200_000usize;
    let mut rng = rng_from_seed(6);
    let mut one_rate_holder = 0f64;
    let mut one_rate_other = 0f64;
    for _ in 0..n {
        let r = oue.perturb(2, &mut rng);
        if r.get(2) {
            one_rate_holder += 1.0;
        }
        if r.get(7) {
            one_rate_other += 1.0;
        }
    }
    one_rate_holder /= n as f64;
    one_rate_other /= n as f64;
    let ratio = one_rate_holder / one_rate_other;
    assert!(
        ratio <= eps.exp() + 0.05,
        "per-bit ratio {ratio} exceeds e^ε"
    );
}

#[test]
fn larger_epsilon_is_strictly_less_private_for_all_protocols() {
    // Monotonicity sanity: the worst-case ratio grows with ε.
    let domain = Domain::new(32).unwrap();
    let ratio_grr = |eps: f64| {
        let g = Grr::new(eps, domain).unwrap();
        g.params().p() / g.params().q()
    };
    let ratio_oue = |eps: f64| {
        let o = Oue::new(eps, domain).unwrap();
        (o.params().p() / o.params().q()) * ((1.0 - o.params().q()) / (1.0 - o.params().p()))
    };
    assert!(ratio_grr(0.5) < ratio_grr(1.0));
    assert!(ratio_oue(0.5) < ratio_oue(1.0));
}
