//! Failure injection: every layer must reject corrupt inputs with a typed
//! error (never a panic, never a silent wrong answer) — the error-handling
//! contract a server-side deployment depends on.

use ldp_common::{Domain, LdpError};
use ldp_protocols::{ProtocolKind, PureParams};
use ldprecover::{LdpRecover, PostProcess};

#[test]
fn recovery_rejects_non_finite_poisoned_inputs() {
    let domain = Domain::new(4).unwrap();
    let params = PureParams::new(0.5, 0.25, domain).unwrap();
    let recover = LdpRecover::new(0.2).unwrap();
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let poisoned = vec![0.5, bad, 0.3, 0.1];
        let err = recover.recover(&poisoned, params).unwrap_err();
        assert!(
            matches!(err, LdpError::Numerical(_)),
            "expected Numerical error for {bad}, got {err}"
        );
    }
}

#[test]
fn recovery_rejects_wrong_domain_width() {
    let domain = Domain::new(4).unwrap();
    let params = PureParams::new(0.5, 0.25, domain).unwrap();
    let recover = LdpRecover::new(0.2).unwrap();
    let err = recover.recover(&[0.5, 0.5], params).unwrap_err();
    assert!(matches!(err, LdpError::DomainMismatch { expected: 4, .. }));
}

#[test]
fn post_process_none_passes_through_but_others_sanitize() {
    // PostProcess::None is the only mode allowed to emit constraint
    // violations, and it says so in its contract.
    let raw = [0.8, -0.3, 0.6];
    let out = PostProcess::None.apply(&raw).unwrap();
    assert!(out.iter().any(|&x| x < 0.0));
    for pp in [
        PostProcess::NormSub,
        PostProcess::SimplexProjection,
        PostProcess::ClipNormalize,
        PostProcess::BaseCut,
    ] {
        let out = pp.apply(&raw).unwrap();
        assert!(out.iter().all(|&x| x >= 0.0), "{pp:?}");
    }
}

#[test]
fn debias_rejects_zero_reports_and_wrong_width() {
    let domain = Domain::new(3).unwrap();
    let protocol = ProtocolKind::Grr.build(0.5, domain).unwrap();
    use ldp_protocols::LdpFrequencyProtocol as _;
    let params = protocol.params();
    assert!(matches!(
        params.debias_frequencies(&[1, 2, 3], 0).unwrap_err(),
        LdpError::EmptyInput(_)
    ));
    assert!(matches!(
        params.debias_frequencies(&[1, 2], 5).unwrap_err(),
        LdpError::DomainMismatch { .. }
    ));
}

#[test]
fn config_validation_failures_carry_actionable_messages() {
    use ldp_attacks::AttackKind;
    use ldp_datasets::DatasetKind;
    let mut config = ldp_sim::ExperimentConfig::paper_default(
        DatasetKind::Ipums,
        ProtocolKind::Grr,
        Some(AttackKind::Adaptive),
    );
    config.epsilon = -1.0;
    let msg = config.validate().unwrap_err().to_string();
    assert!(msg.contains("epsilon"), "message was: {msg}");

    config.epsilon = 0.5;
    config.beta = 0.05;
    config.attack = None;
    let msg = config.validate().unwrap_err().to_string();
    assert!(msg.contains("beta"), "message was: {msg}");
}

#[test]
fn dataset_loader_reports_line_numbers() {
    let dir = std::env::temp_dir().join("ldprecover-failure-injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.txt");
    std::fs::write(&path, "0\n1\noops\n2\n").unwrap();
    let err =
        ldp_datasets::Dataset::from_item_file("bad", Domain::new(5).unwrap(), &path).unwrap_err();
    match err {
        LdpError::Parse { line, .. } => assert_eq!(line, 3),
        other => panic!("expected Parse error, got {other}"),
    }
    // Missing file → Io error with a source.
    let missing = dir.join("does-not-exist.txt");
    let err =
        ldp_datasets::Dataset::from_item_file("x", Domain::new(5).unwrap(), &missing).unwrap_err();
    assert!(matches!(err, LdpError::Io(_)));
}

#[test]
fn detection_and_kv_reject_structural_misuse() {
    assert!(ldprecover::Detection::new(vec![]).is_err());
    assert!(ldp_kv::KvRecover::new(-1.0).is_err());

    // KV aggregate with an out-of-domain probe index is rejected at
    // aggregation time, not silently miscounted.
    let kv = ldp_kv::KvProtocol::new(1.0, Domain::new(3).unwrap()).unwrap();
    let rogue = ldp_kv::KvReport {
        index: 7,
        present: true,
        positive: true,
    };
    assert!(kv.aggregate(&[rogue]).is_err());
}

#[test]
fn errors_format_without_panicking_for_every_variant() {
    let variants: Vec<LdpError> = vec![
        LdpError::invalid("x"),
        LdpError::DomainMismatch {
            expected: 1,
            got: 2,
            context: "test",
        },
        LdpError::EmptyInput("y"),
        LdpError::Numerical("z".into()),
        LdpError::Io(std::io::Error::other("io")),
        LdpError::Parse {
            line: 1,
            message: "m".into(),
        },
    ];
    for v in variants {
        assert!(!v.to_string().is_empty());
    }
}
