//! Golden statistical regression gates for the reproduction catalog.
//!
//! Every figure/table scenario runs at the pinned `small` preset
//! (per-dataset ~1.2k-user fractions, 5 trials, the default master seed)
//! and every cell metric must land inside its checked-in tolerance band
//! (`tests/golden/<figure>.json`: blessed mean ± a band derived from the
//! SEM at bless time — see `ldp_sim::scenario::golden`).
//!
//! The whole pipeline is deterministic per seed, so an unchanged tree
//! reproduces the blessed means exactly; the bands only absorb legitimate
//! RNG-stream or float-association refactors. Regeneration is deliberate:
//!
//! ```text
//! LDP_BLESS_GOLDENS=1 cargo test --test golden_repro
//! ```
//!
//! then review the diff like any other code change.

use ldp_datasets::ScalePreset;
use ldp_sim::scenario::{catalog, run_scenario, Golden, RunScale};
use std::path::PathBuf;

fn golden_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{id}.json"))
}

fn check(id: &str) {
    let scenario = catalog::scenario(id).expect("catalog scenario");
    let report =
        run_scenario(&scenario, &RunScale::preset(ScalePreset::Small)).expect("scenario run");
    let path = golden_path(id);

    if std::env::var_os("LDP_BLESS_GOLDENS").is_some() {
        let golden = Golden::from_report(&report);
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, golden.to_json().render()).expect("write golden");
        // A freshly blessed golden must accept the report it came from.
        assert!(golden.compare(&report).is_empty(), "{id}: bless is broken");
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing/unreadable golden {}: {e}\n\
             regenerate deliberately with: LDP_BLESS_GOLDENS=1 cargo test --test golden_repro",
            path.display()
        )
    });
    let golden = Golden::parse(&text).expect("parse golden");
    let violations = golden.compare(&report);
    assert!(
        violations.is_empty(),
        "{id}: {} golden violation(s):\n  {}\n\
         if this change is intentional, re-bless with: \
         LDP_BLESS_GOLDENS=1 cargo test --test golden_repro",
        violations.len(),
        violations.join("\n  ")
    );
}

macro_rules! golden_tests {
    ($($name:ident => $figure:literal),* $(,)?) => {$(
        #[test]
        fn $name() {
            check($figure);
        }
    )*};
}

golden_tests! {
    fig3_matches_golden => "fig3",
    fig4_matches_golden => "fig4",
    fig5_matches_golden => "fig5",
    fig6_matches_golden => "fig6",
    fig7_matches_golden => "fig7",
    table1_matches_golden => "table1",
    fig8_matches_golden => "fig8",
    fig9_matches_golden => "fig9",
    fig10_matches_golden => "fig10",
    ablations_matches_golden => "ablations",
    kv_extension_matches_golden => "kv_extension",
    stream_online_matches_golden => "stream_online",
    stream_windowed_matches_golden => "stream_windowed",
    defense_arms_matches_golden => "defense_arms",
}

#[test]
fn every_catalog_figure_has_a_golden_test() {
    // Adding a figure to the catalog without gating it here should fail.
    assert_eq!(catalog::FIGURE_IDS.len(), 14);
    for id in catalog::FIGURE_IDS {
        assert!(
            std::env::var_os("LDP_BLESS_GOLDENS").is_some() || golden_path(id).exists(),
            "no golden checked in for catalog figure '{id}'"
        );
    }
}
