//! Property tests for the `ldp-sim` evaluation metrics (`frequency_gain`,
//! Eq. 37, and `top_k_recall`): relabeling invariance, output bounds, and
//! loud rejection of malformed inputs.

use ldp_sim::{frequency_gain, top_k_recall};
use proptest::prelude::*;

/// A pseudo-random permutation of `0..n` derived from a seed (stable,
/// dependency-free: sort indices by a SplitMix64 key).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut indexed: Vec<(u64, usize)> = (0..n)
        .map(|i| (ldp_common::rng::derive_seed(seed, i as u64), i))
        .collect();
    indexed.sort_unstable();
    indexed.into_iter().map(|(_, i)| i).collect()
}

/// Applies a permutation: `out[perm[i]] = v[i]`.
fn permute(v: &[f64], perm: &[usize]) -> Vec<f64> {
    let mut out = vec![0.0; v.len()];
    for (i, &p) in perm.iter().enumerate() {
        out[p] = v[i];
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Relabeling the domain (and renaming targets accordingly) never
    /// changes the frequency gain: FG is a function of (value at target)
    /// pairs only.
    #[test]
    fn frequency_gain_is_permutation_invariant(
        observed in prop::collection::vec(0.0f64..1.0, 4..40),
        genuine_raw in prop::collection::vec(0.0f64..1.0, 4..40),
        seed in 0u64..1_000_000,
        target_picks in prop::collection::vec(0usize..1000, 1..6),
    ) {
        let d = observed.len().min(genuine_raw.len());
        let observed = &observed[..d];
        let genuine = &genuine_raw[..d];
        let targets: Vec<usize> = target_picks.iter().map(|&t| t % d).collect();

        let direct = frequency_gain(observed, genuine, &targets).unwrap();
        let perm = permutation(d, seed);
        let relabeled_targets: Vec<usize> = targets.iter().map(|&t| perm[t]).collect();
        let relabeled = frequency_gain(
            &permute(observed, &perm),
            &permute(genuine, &perm),
            &relabeled_targets,
        )
        .unwrap();
        // Identical summand sequence ⇒ bitwise-equal sums.
        prop_assert_eq!(direct.to_bits(), relabeled.to_bits());
    }

    /// |FG| is bounded by the total variation available on the targets:
    /// every summand lies in [-1, 1] for frequency-vector inputs.
    #[test]
    fn frequency_gain_is_bounded_by_target_count(
        observed in prop::collection::vec(0.0f64..1.0, 2..40),
        genuine_raw in prop::collection::vec(0.0f64..1.0, 2..40),
        target_picks in prop::collection::vec(0usize..1000, 1..8),
    ) {
        let d = observed.len().min(genuine_raw.len());
        let targets: Vec<usize> = target_picks.iter().map(|&t| t % d).collect();
        let fg = frequency_gain(&observed[..d], &genuine_raw[..d], &targets).unwrap();
        prop_assert!(fg.abs() <= targets.len() as f64 + 1e-12);
        prop_assert!(fg.is_finite());
    }

    /// Relabeling the domain never changes top-k recall (ties excluded:
    /// equal values make the top-k set itself ambiguous).
    #[test]
    fn top_k_recall_is_permutation_invariant(
        estimate in prop::collection::vec(0.0f64..1.0, 3..40),
        truth_raw in prop::collection::vec(0.0f64..1.0, 3..40),
        seed in 0u64..1_000_000,
        k_pick in 1usize..1000,
    ) {
        let d = estimate.len().min(truth_raw.len());
        let estimate = &estimate[..d];
        let truth = &truth_raw[..d];
        let distinct = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(f64::total_cmp);
            s.windows(2).all(|w| w[0] != w[1])
        };
        prop_assume!(distinct(estimate) && distinct(truth));
        let k = 1 + k_pick % d;

        let direct = top_k_recall(estimate, truth, k).unwrap();
        let perm = permutation(d, seed);
        let relabeled =
            top_k_recall(&permute(estimate, &perm), &permute(truth, &perm), k).unwrap();
        prop_assert_eq!(direct.to_bits(), relabeled.to_bits());
    }

    /// Recall is always in [0, 1], quantized to multiples of 1/k, and 1
    /// when the estimate *is* the truth.
    #[test]
    fn top_k_recall_is_bounded_and_exact_on_self(
        truth in prop::collection::vec(0.0f64..1.0, 2..40),
        k_pick in 1usize..1000,
    ) {
        let k = 1 + k_pick % truth.len();
        let self_recall = top_k_recall(&truth, &truth, k).unwrap();
        prop_assert_eq!(self_recall, 1.0);

        let reversed: Vec<f64> = truth.iter().rev().copied().collect();
        let r = top_k_recall(&reversed, &truth, k).unwrap();
        prop_assert!((0.0..=1.0).contains(&r));
        let hits = r * k as f64;
        prop_assert!((hits - hits.round()).abs() < 1e-9, "recall {r} not a /k multiple");
    }
}

#[test]
fn frequency_gain_rejects_malformed_inputs() {
    let v = [0.2, 0.3, 0.5];
    // Mismatched lengths, both directions.
    assert!(frequency_gain(&v[..2], &v, &[0]).is_err());
    assert!(frequency_gain(&v, &v[..2], &[0]).is_err());
    // Empty target set.
    assert!(frequency_gain(&v, &v, &[]).is_err());
    // Out-of-range target.
    assert!(frequency_gain(&v, &v, &[3]).is_err());
    assert!(frequency_gain(&v, &v, &[0, 99]).is_err());
    // Valid call still works after all the rejections.
    assert_eq!(frequency_gain(&v, &v, &[0, 1, 2]).unwrap(), 0.0);
}

#[test]
fn top_k_recall_rejects_malformed_inputs() {
    let v = [0.2, 0.3, 0.5];
    // Mismatched lengths, both directions.
    assert!(top_k_recall(&v[..2], &v, 1).is_err());
    assert!(top_k_recall(&v, &v[..2], 1).is_err());
    // k out of range.
    assert!(top_k_recall(&v, &v, 0).is_err());
    assert!(top_k_recall(&v, &v, 4).is_err());
    // Boundary k values are legal.
    assert_eq!(top_k_recall(&v, &v, 1).unwrap(), 1.0);
    assert_eq!(top_k_recall(&v, &v, 3).unwrap(), 1.0);
}
