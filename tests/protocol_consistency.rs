//! Cross-crate protocol consistency: unbiasedness and variance of the three
//! LDP protocols on realistic (Zipf) populations.

use ldp_common::rng::rng_from_seed;
use ldp_datasets::zipf_dataset;
use ldp_protocols::{CountAccumulator, LdpFrequencyProtocol, ProtocolKind};

/// Aggregates one full pass of a dataset through a protocol.
fn estimate(kind: ProtocolKind, epsilon: f64, seed: u64) -> (Vec<f64>, Vec<f64>, usize) {
    let mut rng = rng_from_seed(seed);
    let dataset = zipf_dataset("z", 64, 60_000, 1.0, &mut rng).unwrap();
    let protocol = kind.build(epsilon, dataset.domain()).unwrap();
    let mut acc = CountAccumulator::new(dataset.domain());
    for &item in dataset.items() {
        let report = protocol.perturb(item as usize, &mut rng);
        acc.add(&protocol, &report);
    }
    let est = acc.frequencies(protocol.params()).unwrap();
    (est, dataset.true_frequencies(), dataset.len())
}

#[test]
fn estimates_track_truth_within_theoretical_sigma() {
    for kind in ProtocolKind::ALL {
        let (est, truth, n) = estimate(kind, 1.0, 7);
        let protocol = kind
            .build(1.0, ldp_common::Domain::new(64).unwrap())
            .unwrap();
        for v in 0..64 {
            let sigma = protocol.params().variance_frequency(truth[v], n).sqrt();
            assert!(
                (est[v] - truth[v]).abs() < 6.0 * sigma.max(1e-5),
                "{kind:?} item {v}: est {} vs truth {} (σ={sigma:.2e})",
                est[v],
                truth[v]
            );
        }
        // Estimated frequencies of a pure protocol sum to ≈ 1 on genuine
        // data (the estimator is linear in the counts); tolerance from the
        // variance of the sum, treating items as independent.
        let total: f64 = est.iter().sum();
        let sum_sigma: f64 = (0..64)
            .map(|v| protocol.params().variance_frequency(truth[v], n))
            .sum::<f64>()
            .sqrt();
        assert!(
            (total - 1.0).abs() < 5.0 * sum_sigma,
            "{kind:?} total {total} (σ_sum = {sum_sigma:.3e})"
        );
    }
}

#[test]
fn empirical_variance_matches_formula() {
    // Repeat small aggregations and compare the across-trial variance of a
    // mid-frequency item with the closed form.
    for kind in ProtocolKind::ALL {
        let domain = ldp_common::Domain::new(16).unwrap();
        let protocol = kind.build(0.5, domain).unwrap();
        let n = 4_000usize;
        let item = 0usize;
        let truth = 0.25;
        let mut estimates = Vec::new();
        let mut rng = rng_from_seed(11);
        for _ in 0..120 {
            let mut acc = CountAccumulator::new(domain);
            for i in 0..n {
                // Exactly 25% of users hold `item`, the rest spread evenly.
                let held = if i % 4 == 0 { item } else { 1 + (i % 15) };
                let report = protocol.perturb(held, &mut rng);
                acc.add(&protocol, &report);
            }
            estimates.push(acc.frequencies(protocol.params()).unwrap()[item]);
        }
        let mut rm = ldp_common::stats::RunningMoments::new();
        for &e in &estimates {
            rm.push(e);
        }
        let theory = protocol.params().variance_frequency(truth, n);
        let ratio = rm.variance() / theory;
        assert!(
            (0.6..1.6).contains(&ratio),
            "{kind:?}: empirical/theory variance ratio {ratio}"
        );
    }
}

#[test]
fn higher_epsilon_means_lower_variance() {
    for kind in ProtocolKind::ALL {
        let domain = ldp_common::Domain::new(32).unwrap();
        let low = kind.build(0.5, domain).unwrap();
        let high = kind.build(2.0, domain).unwrap();
        assert!(
            high.params().variance_frequency(0.1, 1000)
                < low.params().variance_frequency(0.1, 1000),
            "{kind:?}"
        );
    }
}

#[test]
fn oue_variance_beats_grr_on_large_domains() {
    // The design rationale for OUE: domain-size-independent variance.
    let domain = ldp_common::Domain::new(490).unwrap();
    let grr = ProtocolKind::Grr.build(0.5, domain).unwrap();
    let oue = ProtocolKind::Oue.build(0.5, domain).unwrap();
    assert!(
        oue.params().variance_frequency(0.01, 10_000)
            < grr.params().variance_frequency(0.01, 10_000)
    );
}
