//! End-to-end pipeline integration: every protocol × every attack kind
//! produces a complete, internally-consistent trial.

use ldp_attacks::AttackKind;
use ldp_common::rng::rng_from_seed;
use ldp_common::vecmath::is_probability_vector;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::{pipeline::run_trial, ExperimentConfig, PipelineOptions};

fn config(protocol: ProtocolKind, attack: Option<AttackKind>, scale: f64) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_default(DatasetKind::Ipums, protocol, attack);
    c.scale = scale;
    if attack.is_none() {
        c.beta = 0.0;
    }
    c
}

#[test]
fn every_protocol_attack_combination_completes() {
    let attacks = [
        AttackKind::Manip { h: 10 },
        AttackKind::Mga { r: 10 },
        AttackKind::MgaSampled { r: 10 },
        AttackKind::Adaptive,
        AttackKind::MgaIpa { r: 10 },
        AttackKind::MultiAdaptive { attackers: 5 },
    ];
    for protocol in ProtocolKind::ALL {
        for attack in attacks {
            let c = config(protocol, Some(attack), 0.01);
            let mut rng = rng_from_seed(1);
            let trial = run_trial(&c, &PipelineOptions::recovery_only(), &mut rng)
                .unwrap_or_else(|e| panic!("{protocol:?} × {attack:?}: {e}"));
            assert!(
                is_probability_vector(trial.recovered().unwrap(), 1e-9),
                "{protocol:?} × {attack:?} recovered vector invalid"
            );
            assert_eq!(trial.true_freqs.len(), 102);
            assert!(
                is_probability_vector(&trial.true_freqs, 1e-9),
                "ground truth must be a distribution"
            );
        }
    }
}

#[test]
fn full_comparison_arms_present_for_targeted_attacks() {
    for protocol in ProtocolKind::ALL {
        let c = config(protocol, Some(AttackKind::Mga { r: 10 }), 0.02);
        let mut rng = rng_from_seed(2);
        let trial = run_trial(&c, &PipelineOptions::full_comparison(), &mut rng).unwrap();
        assert!(
            trial.recovered_star().is_some(),
            "{protocol:?} star missing"
        );
        assert!(
            trial.detection().is_some(),
            "{protocol:?} detection missing"
        );
        assert!(trial.malicious_true.is_some());
        assert!(trial.malicious_estimate_star().is_some());
        // Oracle targets flow through to the star arm for targeted attacks.
        assert_eq!(trial.star_targets, trial.attack_targets);
    }
}

#[test]
fn pipeline_is_deterministic_given_seed() {
    let c = config(ProtocolKind::Oue, Some(AttackKind::Adaptive), 0.01);
    let t1 = run_trial(
        &c,
        &PipelineOptions::recovery_only(),
        &mut rng_from_seed(99),
    )
    .unwrap();
    let t2 = run_trial(
        &c,
        &PipelineOptions::recovery_only(),
        &mut rng_from_seed(99),
    )
    .unwrap();
    assert_eq!(t1.poisoned, t2.poisoned);
    assert_eq!(t1.recovered(), t2.recovered());
    let t3 = run_trial(
        &c,
        &PipelineOptions::recovery_only(),
        &mut rng_from_seed(100),
    )
    .unwrap();
    assert_ne!(t1.poisoned, t3.poisoned, "different seed, different noise");
}

#[test]
fn beta_zero_equals_unpoisoned() {
    let c = config(ProtocolKind::Grr, None, 0.01);
    let mut rng = rng_from_seed(3);
    let trial = run_trial(&c, &PipelineOptions::default(), &mut rng).unwrap();
    assert_eq!(trial.poisoned, trial.genuine);
    assert!(trial.malicious_true.is_none());
}

#[test]
fn kmeans_arms_run_under_ipa() {
    let mut c = config(ProtocolKind::Grr, Some(AttackKind::MgaIpa { r: 5 }), 0.01);
    c.trials = 1;
    let options = PipelineOptions {
        arms: ldprecover::ArmSet::new([
            ldprecover::ArmKind::Recover,
            ldprecover::ArmKind::Kmeans,
            ldprecover::ArmKind::RecoverKm,
        ]),
        kmeans: ldprecover::KMeansDefense::new(10, 0.3).unwrap(),
        ..Default::default()
    };
    let mut rng = rng_from_seed(4);
    let trial = run_trial(&c, &options, &mut rng).unwrap();
    let km = trial.kmeans().expect("kmeans estimate");
    let km_rec = trial.recover_km().expect("recover-km estimate");
    assert_eq!(km.len(), 102);
    assert!(is_probability_vector(km_rec, 1e-9));
}

#[test]
fn fire_dataset_runs_at_small_scale() {
    let mut c = ExperimentConfig::paper_default(
        DatasetKind::Fire,
        ProtocolKind::Olh,
        Some(AttackKind::Adaptive),
    );
    c.scale = 0.005;
    let mut rng = rng_from_seed(5);
    let trial = run_trial(&c, &PipelineOptions::recovery_only(), &mut rng).unwrap();
    assert_eq!(trial.true_freqs.len(), 490);
    assert!(is_probability_vector(trial.recovered().unwrap(), 1e-9));
}
