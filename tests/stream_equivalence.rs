//! Differential tests: the streaming ingestion engine against the offline
//! one-shot pipeline, bit for bit.
//!
//! The stream engine only earns trust if it is provably the *same
//! computation* as the validated offline path, re-scheduled. Three
//! contracts, each exercised for all five pure protocols (GRR/OUE/SUE/HR
//! through their batched count samplers, OLH through the grouped
//! fallback):
//!
//! 1. **1-shard single-epoch ≡ offline.** The stream's one cell consumes
//!    exactly the RNG call sequence of `run_aggregation` in `Batched` mode
//!    at the same derived seed, so support counts, debiased estimates, and
//!    recovered frequencies are bit-identical to the one-shot pipeline.
//! 2. **N-shard final state ≡ the exact merge of its cells.** Re-running
//!    every `(shard, epoch)` cell standalone and folding the deltas — in
//!    any order — reproduces the engine's merged state bitwise: sharding
//!    is pure parallelization of a fixed randomness layout.
//! 3. **N-shard ≡ 1-shard statistically.** Different shard layouts re-roll
//!    the sampling noise (disjoint derived streams) but draw from the same
//!    distribution, so final estimates agree within the LDP noise
//!    envelope, never bitwise.

use ldp_attacks::AttackKind;
use ldp_common::rng::{derive_seed2, rng_from_seed};
use ldp_common::vecmath::mse;
use ldp_datasets::DatasetKind;
use ldp_protocols::{CountAccumulator, LdpFrequencyProtocol, ProtocolKind};
use ldp_sim::config::AggregationMode;
use ldp_sim::pipeline::run_aggregation;
use ldp_sim::stream::{shard_epoch_delta, StreamEngine, StreamSpec};
use ldp_sim::{ExperimentConfig, PipelineOptions};
use ldprecover::LdpRecover;

const SEED: u64 = 0x57AE_A41B;

/// The offline cell the stream runs are compared against.
fn offline_config(protocol: ProtocolKind, scale: f64) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_default(
        DatasetKind::Ipums,
        protocol,
        Some(AttackKind::Mga { r: 5 }),
    );
    config.scale = scale;
    config.trials = 1;
    config.seed = SEED;
    config
}

/// The genuine user count `⌈n·scale⌉` the offline batched path realizes.
fn users_at(scale: f64) -> usize {
    ((DatasetKind::Ipums.total_users() as f64) * scale).ceil() as usize
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: {x:?} vs {y:?} differ bitwise"
        );
    }
}

#[test]
fn one_shard_single_epoch_is_bit_identical_to_the_offline_pipeline() {
    let scale = 0.004; // ≈ 1,560 users: fast, and every protocol stays alive
    for protocol in ProtocolKind::EXTENDED {
        let config = offline_config(protocol, scale);
        let spec = StreamSpec::from_experiment(&config, 1, 1, users_at(scale));

        // Online: one shard, one epoch.
        let mut engine = StreamEngine::new(spec).unwrap();
        engine.step().unwrap();
        let snapshot = engine.recovery_snapshot().unwrap();

        // Offline: the batched one-shot pipeline on the stream cell's
        // derived RNG stream.
        let options = PipelineOptions {
            aggregation: AggregationMode::Batched,
            ..PipelineOptions::default()
        };
        let mut rng = rng_from_seed(derive_seed2(SEED, 0, 0));
        let offline = run_aggregation(&config, &options, &mut rng).unwrap();
        let params = offline.protocol.params();
        let recovered = LdpRecover::new(config.eta)
            .unwrap()
            .recover(&offline.poisoned_freqs, params)
            .unwrap()
            .frequencies;

        assert_eq!(
            engine.genuine().report_count(),
            offline.genuine_count,
            "{protocol}: genuine users"
        );
        assert_eq!(
            engine.malicious().report_count(),
            offline.malicious_count,
            "{protocol}: malicious users"
        );
        assert_bits_eq(
            &snapshot.truth,
            &offline.true_freqs,
            &format!("{protocol}: realized truth"),
        );
        assert_bits_eq(
            &snapshot.genuine_estimate,
            &offline.genuine_freqs,
            &format!("{protocol}: genuine estimate"),
        );
        assert_bits_eq(
            &snapshot.poisoned_estimate,
            &offline.poisoned_freqs,
            &format!("{protocol}: poisoned estimate"),
        );
        assert_bits_eq(
            &snapshot.recovered,
            &recovered,
            &format!("{protocol}: recovered frequencies"),
        );
    }
}

#[test]
fn one_shard_single_epoch_counts_match_a_direct_recomputation() {
    // The count-level half of contract 1: the engine's merged accumulators
    // equal the shard cell's delta exactly (no hidden reweighting between
    // ingestion and state).
    for protocol in ProtocolKind::EXTENDED {
        let config = offline_config(protocol, 0.004);
        let spec = StreamSpec::from_experiment(&config, 1, 1, users_at(0.004));
        let mut engine = StreamEngine::new(spec).unwrap();
        engine.step().unwrap();
        let delta = shard_epoch_delta(&spec, 0, 0).unwrap();
        assert_eq!(engine.genuine().counts(), &delta.genuine_counts[..]);
        assert_eq!(engine.malicious().counts(), &delta.malicious_counts[..]);
        assert_eq!(engine.true_counts(), &delta.population[..]);
    }
}

#[test]
fn n_shard_multi_epoch_state_is_the_exact_merge_of_its_cells() {
    // Contract 2, for every protocol: fold the standalone deltas of every
    // (shard, epoch) cell — forward and in reverse — and compare the full
    // merged state bitwise against the engine's.
    for protocol in ProtocolKind::EXTENDED {
        let config = offline_config(protocol, 0.004);
        let spec = StreamSpec::from_experiment(&config, 3, 2, 600);
        let mut engine = StreamEngine::new(spec).unwrap();
        engine.run_to_completion().unwrap();

        let domain = spec.domain();
        let cells: Vec<(usize, usize)> = (0..spec.epochs)
            .flat_map(|e| (0..spec.shards).map(move |s| (s, e)))
            .collect();
        for reverse in [false, true] {
            let mut order = cells.clone();
            if reverse {
                order.reverse();
            }
            let mut genuine = CountAccumulator::new(domain);
            let mut malicious = CountAccumulator::new(domain);
            let mut truth = vec![0u64; domain.size()];
            for &(shard, epoch) in &order {
                let delta = shard_epoch_delta(&spec, shard, epoch).unwrap();
                genuine.merge(&CountAccumulator::from_parts(
                    delta.genuine_counts,
                    delta.genuine_users,
                ));
                malicious.merge(&CountAccumulator::from_parts(
                    delta.malicious_counts,
                    delta.malicious_users,
                ));
                for (slot, c) in truth.iter_mut().zip(delta.population) {
                    *slot += c;
                }
            }
            assert_eq!(
                engine.genuine(),
                &genuine,
                "{protocol}: genuine state (reverse={reverse})"
            );
            assert_eq!(
                engine.malicious(),
                &malicious,
                "{protocol}: malicious state (reverse={reverse})"
            );
            assert_eq!(
                engine.true_counts(),
                &truth[..],
                "{protocol}: population (reverse={reverse})"
            );
        }

        // …and therefore every derived estimate is bit-identical too.
        let merged = {
            let mut poisoned = engine.genuine().clone();
            poisoned.merge(engine.malicious());
            poisoned
        };
        let params = protocol.build(spec.epsilon, domain).unwrap().params();
        let snapshot = engine.recovery_snapshot().unwrap();
        assert_bits_eq(
            &snapshot.poisoned_estimate,
            &merged.frequencies(params).unwrap(),
            &format!("{protocol}: merged poisoned estimate"),
        );
    }
}

#[test]
fn engine_state_is_invariant_to_suspension_points() {
    // Contract 2 from the scheduler's side: stepping epoch by epoch, in
    // two bursts, or via run_to_completion lands on identical state.
    let config = offline_config(ProtocolKind::Oue, 0.004);
    let spec = StreamSpec::from_experiment(&config, 4, 3, 800);
    let mut all_at_once = StreamEngine::new(spec).unwrap();
    all_at_once.run_to_completion().unwrap();
    let mut stepped = StreamEngine::new(spec).unwrap();
    while !stepped.is_complete() {
        stepped.step().unwrap();
    }
    assert_eq!(all_at_once, stepped);
    assert_eq!(
        all_at_once.report().unwrap().render(),
        stepped.report().unwrap().render()
    );
}

#[test]
fn n_shard_and_one_shard_runs_agree_statistically() {
    // Contract 3: same traffic volume, different shard layout — disjoint
    // derived streams re-roll the noise, so the final estimates differ
    // bitwise but sit in the same statistical envelope (same distribution,
    // same n). MSE-to-truth ratios stay within a modest factor.
    let config = offline_config(ProtocolKind::Grr, 0.01);
    let users = 3_000;
    let sharded_spec = StreamSpec::from_experiment(&config, 8, 2, users);
    let single_spec = StreamSpec::from_experiment(&config, 1, 2, users);
    let mut sharded = StreamEngine::new(sharded_spec).unwrap();
    let mut single = StreamEngine::new(single_spec).unwrap();
    sharded.run_to_completion().unwrap();
    single.run_to_completion().unwrap();

    let a = sharded.recovery_snapshot().unwrap();
    let b = single.recovery_snapshot().unwrap();
    assert_ne!(
        a.poisoned_estimate, b.poisoned_estimate,
        "different layouts must consume different streams"
    );
    let mse_a = mse(&a.poisoned_estimate, &a.truth);
    let mse_b = mse(&b.poisoned_estimate, &b.truth);
    assert!(
        mse_a < 5.0 * mse_b && mse_b < 5.0 * mse_a,
        "poisoned-estimate error envelopes diverged: {mse_a} vs {mse_b}"
    );
    let rec_a = mse(&a.recovered, &a.truth);
    let rec_b = mse(&b.recovered, &b.truth);
    assert!(
        rec_a < 5.0 * rec_b && rec_b < 5.0 * rec_a,
        "recovered-estimate error envelopes diverged: {rec_a} vs {rec_b}"
    );
}

#[test]
fn online_trajectory_improves_with_traffic_and_recovery_wins() {
    // The product claim the trajectory exists for: as reports accumulate,
    // the recovered curve falls roughly like 1/n while the poisoned curve
    // stays pinned by the attack, for every protocol of the paper's trio.
    for protocol in ProtocolKind::ALL {
        let config = offline_config(protocol, 0.01);
        let spec = StreamSpec::from_experiment(&config, 4, 4, 2_000);
        let mut engine = StreamEngine::new(spec).unwrap();
        engine.run_to_completion().unwrap();
        let trajectory = engine.trajectory();
        let first = trajectory.first().unwrap();
        let last = trajectory.last().unwrap();
        assert!(
            last.mse_recovered < last.mse_before,
            "{protocol}: final recovered {} vs poisoned {}",
            last.mse_recovered,
            last.mse_before
        );
        assert!(
            last.mse_genuine < first.mse_genuine,
            "{protocol}: the noise floor must shrink with traffic ({} vs {})",
            last.mse_genuine,
            first.mse_genuine
        );
        assert_eq!(trajectory.len(), 4);
        assert!(trajectory
            .windows(2)
            .all(|w| w[1].reports_seen > w[0].reports_seen));
    }
}
