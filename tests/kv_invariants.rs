//! Property-based invariants for the key-value extension.

use ldp_common::rng::rng_from_seed;
use ldp_common::vecmath::is_probability_vector;
use ldp_common::Domain;
use ldp_kv::{KvProtocol, KvRecover, M2ga};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reports always carry in-domain probe indices, whatever the inputs.
    #[test]
    fn reports_stay_in_domain(
        d in 2usize..64,
        key_frac in 0.0f64..1.0,
        value in -1.0f64..1.0,
        seed in 0u64..500,
    ) {
        let domain = Domain::new(d).unwrap();
        let kv = KvProtocol::new(1.0, domain).unwrap();
        let key = ((key_frac * d as f64) as usize).min(d - 1);
        let mut rng = rng_from_seed(seed);
        for _ in 0..20 {
            let r = kv.perturb(key, value, &mut rng).unwrap();
            prop_assert!((r.index as usize) < d);
        }
    }

    /// Aggregation counts are internally consistent:
    /// positives ≤ presences ≤ probes, and probes sum to the report count.
    #[test]
    fn aggregate_count_hierarchy(
        d in 2usize..32,
        n in 1usize..400,
        seed in 0u64..500,
    ) {
        let domain = Domain::new(d).unwrap();
        let kv = KvProtocol::new(1.0, domain).unwrap();
        let mut rng = rng_from_seed(seed);
        let reports: Vec<_> = (0..n)
            .map(|i| kv.perturb(i % d, 0.3, &mut rng).unwrap())
            .collect();
        let agg = kv.aggregate(&reports).unwrap();
        let mut probe_total = 0u64;
        for k in 0..d {
            prop_assert!(agg.positives[k] <= agg.presences[k]);
            prop_assert!(agg.presences[k] <= agg.probes[k]);
            probe_total += agg.probes[k];
        }
        prop_assert_eq!(probe_total as usize, n);
    }

    /// Recovery output is always a probability vector with means in range,
    /// for any mixture of genuine and crafted reports.
    #[test]
    fn recovery_output_well_formed(
        d in 3usize..24,
        n in 50usize..400,
        m in 0usize..100,
        seed in 0u64..500,
    ) {
        let domain = Domain::new(d).unwrap();
        let kv = KvProtocol::new(1.5, domain).unwrap();
        let mut rng = rng_from_seed(seed);
        let mut reports: Vec<_> = (0..n)
            .map(|i| kv.perturb(i % d, -0.4, &mut rng).unwrap())
            .collect();
        if m > 0 {
            let attack = M2ga::new(vec![0]);
            reports.extend(attack.craft(&kv, m, &mut rng));
        }
        let agg = kv.aggregate(&reports).unwrap();
        let rec = KvRecover::default().recover(&kv, &agg).unwrap();
        prop_assert!(is_probability_vector(&rec.frequencies, 1e-6));
        prop_assert!(rec.means.iter().all(|&m| (-1.0..=1.0).contains(&m)));
        prop_assert!(rec.malicious_probes.iter().all(|&m| m >= 0.0));
    }

    /// Estimated frequencies of clean crafted data match their counts
    /// exactly (crafted reports bypass perturbation, so debias on a pure
    /// present/absent mix is deterministic in expectation terms).
    #[test]
    fn crafted_estimates_are_deterministic(
        d in 2usize..16,
        present_count in 1usize..50,
        absent_count in 0usize..50,
    ) {
        let domain = Domain::new(d).unwrap();
        let kv = KvProtocol::new(1.0, domain).unwrap();
        let mut reports = Vec::new();
        for _ in 0..present_count {
            reports.push(kv.craft_clean(0, true, true));
        }
        for _ in 0..absent_count {
            reports.push(kv.craft_clean(0, false, false));
        }
        let est = kv.estimate(&kv.aggregate(&reports).unwrap()).unwrap();
        let params = kv.bit_params();
        let rate = present_count as f64 / (present_count + absent_count) as f64;
        let expect = (rate - params.q()) / (params.p() - params.q());
        prop_assert!((est.frequencies[0] - expect).abs() < 1e-9);
    }
}
