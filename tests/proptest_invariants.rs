//! Property-based invariants on the core data structures and solvers.

use ldp_common::kernels::{fwht_i64, parity};
use ldp_common::sampling::AliasTable;
use ldp_common::vecmath::is_probability_vector;
use ldp_common::BitVec;
use ldprecover::solve::{clip_normalize, norm_sub, project_simplex};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The O(k log k) butterfly equals the O(k²) Sylvester matrix product
    /// `H·x` with `H[w][y] = (−1)^popcount(w & y)`, at random orders and
    /// random (including negative) entries — complementing the exhaustive
    /// small-order check in `ldp_common::kernels`.
    #[test]
    fn fwht_matches_naive_at_random_orders(
        log_k in 0u32..=10,
        seed_vals in prop::collection::vec(-1_000_000i64..1_000_000, 1024),
    ) {
        let k = 1usize << log_k;
        let data: Vec<i64> = seed_vals[..k].to_vec();
        let naive: Vec<i64> = (0..k as u32)
            .map(|w| {
                (0..k as u32)
                    .map(|y| if parity(w, y) == 0 { data[y as usize] } else { -data[y as usize] })
                    .sum()
            })
            .collect();
        let mut fast = data;
        fwht_i64(&mut fast);
        prop_assert_eq!(fast, naive);
    }

    /// H is k·I times its own inverse: applying the butterfly twice
    /// returns the input scaled by the order.
    #[test]
    fn fwht_is_a_scaled_involution(
        log_k in 0u32..=10,
        seed_vals in prop::collection::vec(-1_000_000i64..1_000_000, 1024),
    ) {
        let k = 1usize << log_k;
        let data: Vec<i64> = seed_vals[..k].to_vec();
        let mut twice = data.clone();
        fwht_i64(&mut twice);
        fwht_i64(&mut twice);
        let scaled: Vec<i64> = data.iter().map(|&x| x * k as i64).collect();
        prop_assert_eq!(twice, scaled);
    }

    /// Algorithm 1's output is always a probability vector, whatever the
    /// estimate looks like.
    #[test]
    fn norm_sub_lands_on_simplex(est in prop::collection::vec(-2.0f64..2.0, 1..200)) {
        let out = norm_sub(&est);
        prop_assert!(is_probability_vector(&out, 1e-6));
        prop_assert_eq!(out.len(), est.len());
    }

    /// The iterative KKT scheme agrees with the exact sort-based projection
    /// (they solve the same strictly-convex program).
    #[test]
    fn norm_sub_equals_exact_projection(est in prop::collection::vec(-2.0f64..2.0, 1..100)) {
        let a = norm_sub(&est);
        let b = project_simplex(&est);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-7, "{:?} vs {:?}", a, b);
        }
    }

    /// Projection never increases the L2 distance to any simplex point
    /// (firm non-expansiveness spot-check against the uniform vector).
    #[test]
    fn projection_is_closer_to_uniform_than_input(
        est in prop::collection::vec(-2.0f64..2.0, 2..50)
    ) {
        let d = est.len();
        let uniform = vec![1.0 / d as f64; d];
        let proj = project_simplex(&est);
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
        };
        prop_assert!(dist(&proj, &uniform) <= dist(&est, &uniform) + 1e-9);
    }

    /// Clip-normalize also lands on the simplex (the ablation baseline).
    #[test]
    fn clip_normalize_lands_on_simplex(est in prop::collection::vec(-2.0f64..2.0, 1..200)) {
        prop_assert!(is_probability_vector(&clip_normalize(&est), 1e-6));
    }

    /// The genuine frequency estimator is the exact inverse of the mixture
    /// identity (Eq. 14) for any eta and any vectors.
    #[test]
    fn estimator_inverts_mixture(
        x in prop::collection::vec(0.0f64..1.0, 1..50),
        eta in 0.0f64..2.0,
    ) {
        let y: Vec<f64> = x.iter().map(|v| 1.0 - v).collect();
        let z: Vec<f64> = x.iter().zip(&y)
            .map(|(&a, &b)| (a + eta * b) / (1.0 + eta))
            .collect();
        let est = ldprecover::estimator::genuine_estimate(&z, &y, eta).unwrap();
        for (e, &t) in est.iter().zip(&x) {
            prop_assert!((e - t).abs() < 1e-9);
        }
    }

    /// Full recovery output is always on the simplex for arbitrary
    /// poisoned inputs.
    #[test]
    fn recovery_output_always_on_simplex(
        poisoned in prop::collection::vec(-0.5f64..1.5, 2..120),
        eta in 0.0f64..0.5,
    ) {
        let d = poisoned.len();
        let domain = ldp_common::Domain::new(d).unwrap();
        let e = 0.5f64.exp();
        let denom = d as f64 - 1.0 + e;
        let params = ldp_protocols::PureParams::new(e / denom, 1.0 / denom, domain).unwrap();
        let out = ldprecover::LdpRecover::new(eta).unwrap()
            .recover(&poisoned, params)
            .unwrap();
        prop_assert!(is_probability_vector(&out.frequencies, 1e-6));
    }

    /// Alias tables reproduce their input distribution's support exactly:
    /// zero-weight outcomes are never sampled.
    #[test]
    fn alias_table_respects_support(
        weights in prop::collection::vec(0.0f64..5.0, 1..40),
        seed in 0u64..1000,
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = ldp_common::rng::rng_from_seed(seed);
        for _ in 0..200 {
            let s = table.sample(&mut rng);
            prop_assert!(weights[s] > 0.0, "sampled zero-weight outcome {}", s);
        }
    }

    /// BitVec set/get roundtrip and count consistency.
    #[test]
    fn bitvec_roundtrip(
        len in 1usize..300,
        indices in prop::collection::vec(0usize..300, 0..50),
    ) {
        let indices: Vec<usize> = indices.into_iter().filter(|&i| i < len).collect();
        let unique: std::collections::BTreeSet<usize> = indices.iter().copied().collect();
        let mut bv = BitVec::zeros(len);
        for &i in &indices {
            bv.set_one(i);
        }
        prop_assert_eq!(bv.count_ones(), unique.len());
        let ones: Vec<usize> = bv.iter_ones().collect();
        let expected: Vec<usize> = unique.into_iter().collect();
        prop_assert_eq!(ones, expected);
    }

    /// xxhash64 is deterministic and input-sensitive.
    #[test]
    fn xxhash_deterministic_and_sensitive(
        data in prop::collection::vec(any::<u8>(), 0..64),
        seed in any::<u64>(),
    ) {
        use ldp_common::hash::xxh64;
        prop_assert_eq!(xxh64(&data, seed), xxh64(&data, seed));
        // Appending a byte must change the hash (collisions at 2^-64 are
        // effectively impossible over 256 proptest cases).
        let mut extended = data.clone();
        extended.push(0xAB);
        prop_assert_ne!(xxh64(&data, seed), xxh64(&extended, seed));
    }

    /// OLH hash family members map every item into range.
    #[test]
    fn olh_hash_always_in_range(seed in any::<u64>(), g in 2u32..64, item in 0usize..10_000) {
        let h = ldp_common::hash::OlhHash::new(seed, g);
        prop_assert!(h.hash(item) < g);
    }

    /// Normalization lands on the simplex for any non-degenerate input.
    #[test]
    fn normalize_lands_on_simplex(v in prop::collection::vec(0.0f64..10.0, 1..100)) {
        let mut v = v;
        ldp_common::vecmath::normalize_to_simplex_sum(&mut v);
        prop_assert!(is_probability_vector(&v, 1e-6));
    }

    /// The non-knowledge malicious spread always totals the learned sum
    /// (Eq. 26 conserves mass), for any poisoned vector and any sum.
    #[test]
    fn non_knowledge_spread_conserves_mass(
        poisoned in prop::collection::vec(-1.0f64..1.0, 1..150),
        sum in -500.0f64..500.0,
    ) {
        let est = ldprecover::malicious::non_knowledge_estimate(&poisoned, sum).unwrap();
        let total: f64 = est.iter().sum();
        prop_assert!((total - sum).abs() < 1e-6 * sum.abs().max(1.0));
        // Zero on the non-positive sub-domain (when D1 is non-empty).
        if poisoned.iter().any(|&x| x > 0.0) {
            for (z, e) in poisoned.iter().zip(&est) {
                if *z <= 0.0 {
                    prop_assert_eq!(*e, 0.0);
                }
            }
        }
    }

    /// Detection thresholds are monotone in the false-positive budget.
    #[test]
    fn detection_threshold_monotone_in_fpr(r in 2usize..15, seed in 0u64..100) {
        let domain = ldp_common::Domain::new(100).unwrap();
        let proto = ldp_protocols::ProtocolKind::Oue.build(0.5, domain).unwrap();
        let mut rng = ldp_common::rng::rng_from_seed(seed);
        let targets = ldp_common::sampling::sample_distinct(100, r, &mut rng);
        let strict = ldprecover::Detection::new(targets.clone()).unwrap()
            .with_fpr(0.001).unwrap();
        let lax = ldprecover::Detection::new(targets).unwrap()
            .with_fpr(0.2).unwrap();
        prop_assert!(strict.threshold(&proto) >= lax.threshold(&proto));
    }

    /// Partial-knowledge malicious estimates always total the learned sum.
    #[test]
    fn partial_knowledge_totals_learned_sum(
        d in 3usize..80,
        n_targets in 1usize..3,
        seed in 0u64..500,
    ) {
        let domain = ldp_common::Domain::new(d).unwrap();
        let e = 0.5f64.exp();
        let denom = d as f64 - 1.0 + e;
        let params = ldp_protocols::PureParams::new(e / denom, 1.0 / denom, domain).unwrap();
        let mut rng = ldp_common::rng::rng_from_seed(seed);
        let targets = ldp_common::sampling::sample_distinct(d, n_targets.min(d), &mut rng);
        let sum = params.malicious_frequency_sum();
        let est = ldprecover::malicious::partial_knowledge_estimate(params, &targets, sum).unwrap();
        let total: f64 = est.iter().sum();
        prop_assert!((total - sum).abs() < 1e-6 * sum.abs().max(1.0));
    }

    /// End-to-end KKT invariants of Algorithm 1 across the whole protocol ×
    /// attack grid: for any (protocol, attack, η, seed), both LDPRecover and
    /// LDPRecover*'s recovered frequencies are non-negative and sum to at
    /// most 1 + tolerance. (Norm-sub's KKT conditions pin the output to the
    /// probability simplex exactly; the tolerance only absorbs float
    /// accumulation across the d-dimensional sum.)
    #[test]
    fn recovery_is_nonnegative_and_substochastic_for_all_protocol_attack_pairs(
        protocol_idx in 0usize..3,
        attack_idx in 0usize..6,
        eta in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        use ldp_attacks::AttackKind;
        use ldp_datasets::DatasetKind;
        use ldp_protocols::ProtocolKind;
        use ldp_sim::{ExperimentConfig, PipelineOptions};

        let protocol = ProtocolKind::ALL[protocol_idx % ProtocolKind::ALL.len()];
        let attack = [
            AttackKind::Adaptive,
            AttackKind::Mga { r: 5 },
            AttackKind::MgaSampled { r: 5 },
            AttackKind::Manip { h: 8 },
            AttackKind::MgaIpa { r: 5 },
            AttackKind::MultiAdaptive { attackers: 3 },
        ][attack_idx % 6];

        let mut config = ExperimentConfig::paper_default(DatasetKind::Ipums, protocol, Some(attack));
        config.scale = 0.002; // ~780 genuine users: cheap but non-degenerate
        config.eta = eta;
        config.seed = seed;
        config.trials = 1;

        let mut rng = ldp_common::rng::rng_from_seed(seed);
        let result =
            ldp_sim::pipeline::run_trial(&config, &PipelineOptions::recovery_only(), &mut rng)
                .unwrap();

        let tol = 1e-6;
        for (label, freqs) in [
            ("LDPRecover", result.recovered()),
            ("LDPRecover*", result.recovered_star()),
        ] {
            let Some(freqs) = freqs else { continue };
            for (v, &f) in freqs.iter().enumerate() {
                prop_assert!(
                    f >= 0.0,
                    "{label} {protocol:?}×{attack:?} η={eta}: f[{v}] = {f} < 0"
                );
            }
            let total: f64 = freqs.iter().sum();
            prop_assert!(
                total <= 1.0 + tol,
                "{label} {protocol:?}×{attack:?} η={eta}: Σf = {total} > 1 + tol"
            );
        }
    }
}
