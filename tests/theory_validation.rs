//! Empirical validation of the paper's theory (§V-B, §V-E).
//!
//! * Lemmas 1–2: the aggregated malicious / genuine frequencies are
//!   asymptotically normal with the stated moments.
//! * Theorems 4–5: the Kolmogorov–Smirnov distance between the empirical
//!   CDF and the normal approximation sits below the Berry–Esseen-style
//!   bounds.

use ldp_common::rng::rng_from_seed;
use ldp_common::stats::{ks_statistic, normal_cdf_mu_sigma};
use ldp_common::Domain;
use ldp_protocols::{CountAccumulator, LdpFrequencyProtocol, ProtocolKind};
use ldprecover::estimator::{genuine_moments, malicious_moments};
use ldprecover::theory::{genuine_cdf_bound, malicious_cdf_bound};

/// Samples `trials` independent malicious aggregated frequencies f̃_Y(v)
/// for a two-point attack distribution.
fn sample_malicious_freqs(
    kind: ProtocolKind,
    attack_prob: f64,
    m: usize,
    trials: usize,
    item: usize,
) -> Vec<f64> {
    let domain = Domain::new(16).unwrap();
    let protocol = kind.build(0.5, domain).unwrap();
    let mut weights = vec![0.0; 16];
    weights[item] = attack_prob;
    weights[(item + 1) % 16] = 1.0 - attack_prob;
    let attack = ldp_attacks::AdaptiveAttack::from_distribution(&weights).unwrap();
    let mut rng = rng_from_seed(21);
    (0..trials)
        .map(|_| {
            let reports = ldp_attacks::PoisoningAttack::craft(&attack, &protocol, m, &mut rng);
            let mut acc = CountAccumulator::new(domain);
            acc.add_all(&protocol, &reports);
            acc.frequencies(protocol.params()).unwrap()[item]
        })
        .collect()
}

#[test]
fn malicious_frequency_is_asymptotically_normal_with_lemma_1_moments() {
    // GRR/OUE clean encodings follow the single-support model exactly.
    for kind in [ProtocolKind::Grr, ProtocolKind::Oue] {
        let attack_prob = 0.3;
        let m = 2_000;
        let trials = 400;
        let sample = sample_malicious_freqs(kind, attack_prob, m, trials, 5);
        let domain = Domain::new(16).unwrap();
        let protocol = kind.build(0.5, domain).unwrap();
        let (mu, var) = malicious_moments(protocol.params(), attack_prob, m);

        // Empirical mean within 5 standard errors.
        let mut rm = ldp_common::stats::RunningMoments::new();
        for &x in &sample {
            rm.push(x);
        }
        let se = (var / trials as f64).sqrt();
        assert!(
            (rm.mean() - mu).abs() < 5.0 * se,
            "{kind:?}: mean {} vs mu {mu} (se {se})",
            rm.mean()
        );

        // KS distance against N(mu, var) below the Theorem 4 bound plus
        // the finite-trial resolution (~1.36/√trials at 5%).
        let sigma = var.sqrt();
        let ks = ks_statistic(&sample, |w| normal_cdf_mu_sigma(w, mu, sigma));
        let bound = malicious_cdf_bound(protocol.params(), attack_prob, m).unwrap();
        // 1% KS critical value: ~5% of seeds exceed the 5% value by definition.
        let resolution = 1.63 / (trials as f64).sqrt();
        assert!(
            ks < bound + resolution,
            "{kind:?}: KS {ks} vs bound {bound} + resolution {resolution}"
        );
    }
}

#[test]
fn genuine_frequency_is_asymptotically_normal_with_lemma_2_moments() {
    let domain = Domain::new(8).unwrap();
    let truth = 0.25;
    let n = 4_000usize;
    let trials = 400usize;
    for kind in ProtocolKind::ALL {
        let protocol = kind.build(0.5, domain).unwrap();
        let mut rng = rng_from_seed(77);
        let sample: Vec<f64> = (0..trials)
            .map(|_| {
                let mut acc = CountAccumulator::new(domain);
                for i in 0..n {
                    let item = if i % 4 == 0 { 0 } else { 1 + (i % 7) };
                    let report = protocol.perturb(item, &mut rng);
                    acc.add(&protocol, &report);
                }
                acc.frequencies(protocol.params()).unwrap()[0]
            })
            .collect();

        let (mu, var) = genuine_moments(protocol.params(), truth, n);
        let sigma = var.sqrt();
        let mut rm = ldp_common::stats::RunningMoments::new();
        for &x in &sample {
            rm.push(x);
        }
        let se = sigma / (trials as f64).sqrt();
        assert!(
            (rm.mean() - mu).abs() < 5.0 * se,
            "{kind:?}: mean {} vs mu {mu}",
            rm.mean()
        );

        let ks = ks_statistic(&sample, |w| normal_cdf_mu_sigma(w, mu, sigma));
        let bound = genuine_cdf_bound(protocol.params(), truth, n).unwrap();
        // 1% KS critical value: ~5% of seeds exceed the 5% value by definition.
        let resolution = 1.63 / (trials as f64).sqrt();
        assert!(
            ks < bound + resolution,
            "{kind:?}: KS {ks} vs bound {bound} + resolution {resolution}"
        );
    }
}

#[test]
fn bounds_shrink_with_population_like_theorems_4_and_5() {
    let domain = Domain::new(16).unwrap();
    let protocol = ProtocolKind::Grr.build(0.5, domain).unwrap();
    let params = protocol.params();
    // √10 shrink per 10× reports, for both bounds.
    let m_bound_small = malicious_cdf_bound(params, 0.3, 1_000).unwrap();
    let m_bound_large = malicious_cdf_bound(params, 0.3, 10_000).unwrap();
    assert!((m_bound_small / m_bound_large - 10.0f64.sqrt()).abs() < 1e-9);

    let g_bound_small = genuine_cdf_bound(params, 0.25, 1_000).unwrap();
    let g_bound_large = genuine_cdf_bound(params, 0.25, 10_000).unwrap();
    assert!((g_bound_small / g_bound_large - 10.0f64.sqrt()).abs() < 1e-9);
}
