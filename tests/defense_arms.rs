//! Property and contract tests for the open defense-arm surface
//! (`ldprecover::arm`): every registered arm, across random protocol ×
//! attack draws, either produces a valid probability vector or degrades
//! cleanly to a documented degeneracy — never a silent bad estimate —
//! and the string-keyed registry round-trips its names and rejects
//! unknowns helpfully.

use ldp_attacks::AttackKind;
use ldp_common::rng::rng_from_seed;
use ldp_common::vecmath::is_probability_vector;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::pipeline::run_trial;
use ldp_sim::{ExperimentConfig, PipelineOptions};
use ldprecover::{ArmKind, ArmSet};
use proptest::prelude::*;

/// A tiny-but-alive cell: ~1.5k genuine users keeps every protocol's
/// estimate statistically meaningful while the whole registry (including
/// the report-retaining clustering arms) stays fast enough for proptest.
fn tiny_cell(protocol: ProtocolKind, attack: AttackKind) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_default(DatasetKind::Ipums, protocol, Some(attack));
    config.scale = 0.004;
    config
}

/// The attack pool the property sweep draws from: targeted, untargeted,
/// and input-poisoning families.
const ATTACKS: [AttackKind; 4] = [
    AttackKind::Mga { r: 10 },
    AttackKind::MgaSampled { r: 5 },
    AttackKind::Adaptive,
    AttackKind::MgaIpa { r: 10 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The registry-wide output contract: with every registered arm
    /// selected, each output has full domain width and finite entries;
    /// arms whose pipeline ends in a simplex refinement (`recover`,
    /// `star`, `recover_km`, `norm_sub`, `base_cut`) additionally land
    /// exactly on the probability simplex. Detection and plain k-means
    /// re-*estimate* from surviving reports, so their outputs are raw
    /// debiased frequencies — finite and full-width, but legitimately
    /// allowed off the simplex (exactly like the paper's baselines).
    /// Anything that produces no output must be a recorded degeneracy.
    #[test]
    fn every_registered_arm_is_simplex_valid_or_cleanly_degenerate(
        protocol_pick in 0usize..ProtocolKind::ALL.len(),
        attack_pick in 0usize..ATTACKS.len(),
        seed in 0u64..1_000_000,
    ) {
        let protocol = ProtocolKind::ALL[protocol_pick];
        let attack = ATTACKS[attack_pick];
        let config = tiny_cell(protocol, attack);
        let options = PipelineOptions::with_arms(ArmSet::new(ArmKind::ALL));
        let mut rng = rng_from_seed(seed);
        let trial = run_trial(&config, &options, &mut rng).unwrap();

        const REFINED: [&str; 5] = ["recover", "star", "recover_km", "norm_sub", "base_cut"];
        let d = config.dataset.domain().size();
        for (key, output) in &trial.arms {
            prop_assert_eq!(output.frequencies.len(), d, "{}: domain width", key);
            prop_assert!(
                output.frequencies.iter().all(|x| x.is_finite()),
                "{}/{:?}/{:?}: non-finite estimate", key, protocol, attack
            );
            if REFINED.contains(&key.as_str()) {
                prop_assert!(
                    is_probability_vector(&output.frequencies, 1e-9),
                    "{}/{:?}/{:?}: {:?} is not a probability vector",
                    key, protocol, attack, &output.frequencies[..4.min(d)]
                );
            }
            if let Some(malicious) = &output.malicious_estimate {
                prop_assert_eq!(malicious.len(), d, "{}: malicious width", key);
                prop_assert!(
                    malicious.iter().all(|x| x.is_finite()),
                    "{}: malicious estimate must be finite", key
                );
            }
        }
        // Accounting is total: every selected kind either produced its
        // output(s) or filed a degeneracy under its registry name.
        for kind in ArmKind::ALL {
            let produced = trial.arm(kind.metric_key()).is_some();
            let degenerated = trial
                .degenerate
                .iter()
                .any(|(name, _)| name == kind.name());
            prop_assert!(
                produced || degenerated,
                "{:?}/{:?}/{}: arm neither produced nor degenerated",
                protocol, attack, kind
            );
        }
    }
}

#[test]
fn arm_kind_parse_round_trips_every_registry_name() {
    for kind in ArmKind::ALL {
        assert_eq!(ArmKind::parse(kind.name()).unwrap(), kind);
        assert_eq!(
            ArmKind::parse(&kind.name().to_ascii_uppercase()).unwrap(),
            kind,
            "case-insensitive"
        );
        assert_eq!(
            ArmKind::parse(kind.metric_key()).unwrap(),
            kind,
            "metric-key alias"
        );
        // Display is the parseable name.
        assert_eq!(ArmKind::parse(&kind.to_string()).unwrap(), kind);
    }
    // Set-level round trip: render → parse is the identity.
    let set = ArmSet::new(ArmKind::ALL);
    assert_eq!(ArmSet::parse(&set.to_string()).unwrap(), set);
}

#[test]
fn unknown_arms_are_rejected_with_the_full_registry_listed() {
    for bad in ["ldprecover2", "trust-me", "recover;detection", ""] {
        let err = match bad {
            "" => ArmSet::parse("").unwrap_err().to_string(),
            other => ArmKind::parse(other).unwrap_err().to_string(),
        };
        for kind in ArmKind::ALL {
            assert!(
                err.contains(kind.name()),
                "error for '{bad}' must list '{}': {err}",
                kind.name()
            );
        }
    }
}

#[test]
fn arm_set_selection_is_order_and_duplicate_insensitive() {
    let a = ArmSet::parse("base-cut,recover,base_cut,RECOVER-STAR").unwrap();
    let b = ArmSet::parse("recover-star, recover, base-cut").unwrap();
    assert_eq!(a, b);
    assert_eq!(
        a.kinds(),
        &[ArmKind::Recover, ArmKind::RecoverStar, ArmKind::BaseCut]
    );
}

#[test]
fn adding_an_arm_does_not_disturb_the_existing_arms_draws() {
    // The open-surface scheduling contract: selecting an extra
    // rng-independent arm must leave every other arm's output bitwise
    // unchanged (arms run in canonical order; only rng-consuming arms may
    // advance the trial stream).
    let config = tiny_cell(ProtocolKind::Grr, AttackKind::Mga { r: 10 });
    let narrow = PipelineOptions::recovery_only();
    let wide = PipelineOptions::with_arms(ArmSet::new([
        ArmKind::Recover,
        ArmKind::RecoverStar,
        ArmKind::NormSub,
        ArmKind::BaseCut,
    ]));
    let mut rng_a = rng_from_seed(7);
    let mut rng_b = rng_from_seed(7);
    let a = run_trial(&config, &narrow, &mut rng_a).unwrap();
    let b = run_trial(&config, &wide, &mut rng_b).unwrap();
    assert_eq!(a.recovered(), b.recovered(), "recover must be unperturbed");
    assert_eq!(a.recovered_star(), b.recovered_star(), "star unperturbed");
    assert!(b.arm("norm_sub").is_some() && b.arm("base_cut").is_some());
}
