//! Statistical acceptance tests for the paper's headline claims, at reduced
//! scale (MSE levels scale as 1/n; orderings are scale-invariant).
//!
//! * LDPRecover reduces MSE relative to the poisoned estimate (Fig. 3).
//! * LDPRecover\* estimates malicious frequencies more accurately than
//!   LDPRecover (Fig. 7) and achieves lower or comparable MSE.
//! * Both recovery methods slash the frequency gain of targeted attacks
//!   (Fig. 4), with LDPRecover\* driving it negative or near zero.

use ldp_attacks::AttackKind;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::{run_experiment, ExperimentConfig, PipelineOptions};

fn cell(protocol: ProtocolKind, attack: AttackKind) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_default(DatasetKind::Ipums, protocol, Some(attack));
    c.scale = 0.05; // ~19.5k genuine users
    c.trials = 4;
    c
}

#[test]
fn ldprecover_beats_poisoned_mse_for_adaptive_attacks() {
    for protocol in ProtocolKind::ALL {
        let result = run_experiment(
            &cell(protocol, AttackKind::Adaptive),
            &PipelineOptions::recovery_only(),
        )
        .unwrap();
        assert!(
            result.mse_recover().unwrap().mean < result.mse_before.mean,
            "{protocol:?}: recover {:.3e} !< before {:.3e}",
            result.mse_recover().unwrap().mean,
            result.mse_before.mean
        );
    }
}

#[test]
fn ldprecover_beats_poisoned_mse_for_manip_on_grr() {
    // The paper's Fig. 3 evaluates Manip on GRR only.
    let result = run_experiment(
        &cell(ProtocolKind::Grr, AttackKind::Manip { h: 10 }),
        &PipelineOptions::recovery_only(),
    )
    .unwrap();
    assert!(result.mse_recover().unwrap().mean < result.mse_before.mean);
}

#[test]
fn frequency_gain_collapses_after_recovery() {
    // Fig. 4: FG before recovery is large; both recovery arms cut it
    // substantially. The cut is strongest for GRR (where the paper's
    // single-support attack model matches the precise MGA exactly) and
    // partial for OUE/OLH, whose precise-MGA reports support all r targets
    // at once — see EXPERIMENTS.md for the quantitative discussion.
    for protocol in ProtocolKind::ALL {
        let result = run_experiment(
            &cell(protocol, AttackKind::Mga { r: 10 }),
            &PipelineOptions::full_comparison(),
        )
        .unwrap();
        let before = result.fg_before.expect("targeted").mean;
        let after = result.fg_recover().expect("targeted").mean;
        let star = result.fg_star().expect("star ran").mean;
        assert!(
            before > 0.05,
            "{protocol:?}: attack produced no gain ({before})"
        );
        let budget = match protocol {
            ProtocolKind::Grr => 0.45,
            _ => 0.65,
        };
        assert!(
            after < budget * before,
            "{protocol:?}: FG {after} not reduced enough from {before}"
        );
        assert!(
            star <= after * 1.05,
            "{protocol:?}: star FG {star} worse than plain {after}"
        );
    }
}

#[test]
fn star_fg_goes_negative_for_grr_mga() {
    // The paper's sharpest Fig. 4 observation: with oracle targets and the
    // deliberately-oversized η = 0.2, LDPRecover* over-subtracts the
    // malicious mass on targets, driving FG *negative*.
    //
    // Statistically, star recovery clamps every target to ~0, so its FG is
    // −Σ_T f̃_X̃(t): a mean near zero with per-trial noise dominated by the
    // genuine GRR estimate's variance on the 10 targets (std ≈ 0.35 per
    // trial at this scale). Four trials put a 0.05 absolute threshold well
    // inside the noise, so this uses more trials and bounds calibrated to
    // the measured spread: near zero *relative to the pre-recovery gain*
    // (FG_before ≈ 7), below a 3-SEM absolute ceiling, and strictly better
    // than plain LDPRecover.
    let mut config = cell(ProtocolKind::Grr, AttackKind::Mga { r: 10 });
    config.trials = 12;
    let result = run_experiment(&config, &PipelineOptions::full_comparison()).unwrap();
    let before = result.fg_before.expect("targeted").mean;
    let after = result.fg_recover().expect("targeted").mean;
    let star = result.fg_star().expect("star ran");
    let sem = star.std / (star.count as f64).sqrt();
    assert!(
        star.mean < 0.05 * before,
        "star FG {} not ≈0 relative to pre-recovery gain {before}",
        star.mean
    );
    assert!(
        star.mean < 0.05 + 3.0 * sem,
        "star FG {} exceeds 3-SEM ceiling (sem = {sem})",
        star.mean
    );
    assert!(
        star.mean < after,
        "star FG {} should undercut plain recovery's {after}",
        star.mean
    );
}

#[test]
fn star_estimates_malicious_frequencies_better() {
    // Fig. 7: the partial-knowledge malicious model is closer to the true
    // f̃_Y than the uniform non-knowledge spread, for MGA.
    for protocol in [ProtocolKind::Grr, ProtocolKind::Oue] {
        let result = run_experiment(
            &cell(protocol, AttackKind::Mga { r: 10 }),
            &PipelineOptions::recovery_only(),
        )
        .unwrap();
        let plain = result.malicious_mse_recover().expect("attacked").mean;
        let star = result.malicious_mse_star().expect("star ran").mean;
        assert!(
            star < plain,
            "{protocol:?}: star malicious MSE {star:.3e} !< plain {plain:.3e}"
        );
    }
}

#[test]
fn detection_is_no_better_than_ldprecover_star() {
    // The paper's comparison: LDPRecover* ≥ Detection in MSE terms
    // (Detection indiscriminately strips genuine users holding targets).
    let result = run_experiment(
        &cell(ProtocolKind::Oue, AttackKind::Mga { r: 10 }),
        &PipelineOptions::full_comparison(),
    )
    .unwrap();
    let star = result.mse_star().expect("star").mean;
    let detection = result.mse_detection().expect("detection").mean;
    assert!(
        star <= detection * 1.5,
        "star {star:.3e} should not be far worse than detection {detection:.3e}"
    );
}

#[test]
fn mga_ipa_is_much_weaker_than_mga() {
    // Fig. 8: the general attack dominates input poisoning by orders of
    // magnitude. At reduced scale the LDP noise floor masks absolute MSEs,
    // so compare the attack-induced *excess* over the genuine noise floor.
    let general = run_experiment(
        &cell(ProtocolKind::Grr, AttackKind::Mga { r: 10 }),
        &PipelineOptions::default(),
    )
    .unwrap();
    let ipa = run_experiment(
        &cell(ProtocolKind::Grr, AttackKind::MgaIpa { r: 10 }),
        &PipelineOptions::default(),
    )
    .unwrap();
    let general_excess = general.mse_before.mean - general.mse_genuine.mean;
    let ipa_excess = (ipa.mse_before.mean - ipa.mse_genuine.mean).max(1e-12);
    assert!(
        general_excess > 20.0 * ipa_excess,
        "general excess {general_excess:.3e} vs ipa excess {ipa_excess:.3e}"
    );
}

#[test]
fn recovery_restores_the_heavy_hitter_list() {
    // The introduction's motivating harm: MGA promotes unpopular items into
    // the top-k. Recovery must push them back out.
    use ldp_common::rng::rng_from_seed;
    use ldp_sim::pipeline::run_trial;

    let config = cell(ProtocolKind::Grr, AttackKind::Mga { r: 10 });
    let options = PipelineOptions::recovery_only();
    let mut recall_poisoned = 0.0;
    let mut recall_recovered = 0.0;
    // Top-10 recall moves in 0.1 quanta, so 4 trials leave the margin one
    // flipped item wide; 10 trials keep the assertion honest.
    let trials = 10;
    for trial in 0..trials {
        let mut rng = rng_from_seed(1000 + trial);
        let r = run_trial(&config, &options, &mut rng).unwrap();
        recall_poisoned += ldp_sim::top_k_recall(&r.poisoned, &r.true_freqs, 10).unwrap();
        recall_recovered +=
            ldp_sim::top_k_recall(r.recovered().unwrap(), &r.true_freqs, 10).unwrap();
    }
    recall_poisoned /= trials as f64;
    recall_recovered /= trials as f64;
    assert!(
        recall_poisoned < 0.65,
        "MGA should corrupt the top-10 (recall {recall_poisoned})"
    );
    assert!(
        recall_recovered > recall_poisoned + 0.2,
        "recovery should restore the top-10: {recall_poisoned} -> {recall_recovered}"
    );
}

#[test]
fn d1_fallback_repairs_the_oue_degeneracy() {
    // Extension ablation (EXPERIMENTS.md "AA on unary encodings"): under
    // AA-OUE the raw single-support malicious reports depress every
    // frequency, leaving only the head item positive; Eq. (26) then
    // concentrates the (huge, negative) malicious sum on ~1 item and the
    // recovered vector degenerates toward one-hot. The uniform fallback
    // spreads the sum over the whole domain and recovers the shape.
    use ldp_common::rng::{derive_seed, rng_from_seed};
    use ldp_sim::pipeline::run_aggregation;
    use ldprecover::LdpRecover;

    let config = cell(ProtocolKind::Oue, AttackKind::Adaptive);
    let options = PipelineOptions::default();
    let mut paper_total = 0.0;
    let mut fallback_total = 0.0;
    for trial in 0..3u64 {
        let mut rng = rng_from_seed(derive_seed(config.seed, trial));
        let agg = run_aggregation(&config, &options, &mut rng).unwrap();
        let params = agg.params();
        let paper = LdpRecover::new(0.2)
            .unwrap()
            .recover(&agg.poisoned_freqs, params)
            .unwrap();
        let fallback = LdpRecover::new(0.2)
            .unwrap()
            .with_d1_fallback(0.1)
            .recover(&agg.poisoned_freqs, params)
            .unwrap();
        paper_total += ldp_sim::metrics::mse(&paper.frequencies, &agg.true_freqs);
        fallback_total += ldp_sim::metrics::mse(&fallback.frequencies, &agg.true_freqs);
    }
    assert!(
        fallback_total < 0.5 * paper_total,
        "fallback {fallback_total:.3e} should beat paper-exact {paper_total:.3e}"
    );
}

#[test]
fn multi_attacker_recovery_still_works() {
    // Fig. 10: LDPRecover handles the five-attacker composition.
    let result = run_experiment(
        &cell(
            ProtocolKind::Grr,
            AttackKind::MultiAdaptive { attackers: 5 },
        ),
        &PipelineOptions::default(),
    )
    .unwrap();
    assert!(result.mse_recover().unwrap().mean < result.mse_before.mean);
}

#[test]
fn recovery_extends_to_sue_and_hadamard() {
    // The extension protocols (SUE, HR) are pure protocols, so the whole
    // LDPRecover stack applies unchanged. Like OUE they have large q
    // (0.44 / 0.5), so the D₁ heuristic degenerates under raw clean
    // encodings — run the partial-knowledge arm, which is insensitive.
    use ldp_common::rng::rng_from_seed;
    use ldp_sim::pipeline::run_trial;

    for protocol in [ProtocolKind::Sue, ProtocolKind::Hr] {
        let config = cell(protocol, AttackKind::Mga { r: 10 });
        let options = PipelineOptions::recovery_only();
        let mut fg_before = 0.0;
        let mut fg_star = 0.0;
        let trials = 3;
        for trial in 0..trials {
            let mut rng = rng_from_seed(500 + trial);
            let r = run_trial(&config, &options, &mut rng).unwrap();
            let targets = r.attack_targets.as_ref().unwrap();
            fg_before += ldp_sim::frequency_gain(&r.poisoned, &r.genuine, targets).unwrap();
            let star = r.recovered_star().expect("star arm");
            fg_star += ldp_sim::frequency_gain(star, &r.genuine, targets).unwrap();
        }
        assert!(
            fg_before / trials as f64 > 0.2,
            "{protocol:?}: MGA should gain ({fg_before})"
        );
        assert!(
            fg_star < 0.4 * fg_before,
            "{protocol:?}: star FG {fg_star} vs before {fg_before}"
        );
    }
}

#[test]
fn harmony_mean_recovery_reduces_poisoning_shift() {
    // The §VII-A case study end to end: a poisoned Harmony mean estimate
    // is pulled back toward the genuine one by LDPRecover on the binary
    // frequency view.
    use ldp_common::rng::rng_from_seed;
    use ldp_protocols::{Harmony, LdpFrequencyProtocol};
    use ldprecover::LdpRecover;

    let harmony = Harmony::new(1.0).unwrap();
    let params = harmony.rr().params();
    let n = 100_000usize;
    let m = 5_000usize;
    let true_mean = -0.3;
    let mut rng = rng_from_seed(7);

    let mut counts = [0u64; 2];
    for _ in 0..n {
        let bit = harmony.perturb_value(true_mean, &mut rng).unwrap();
        counts[usize::from(bit)] += 1;
    }
    let genuine_mean = harmony.estimate_mean(&counts, n).unwrap();

    // Attack: clean "+1" bits.
    counts[1] += m as u64;
    let poisoned_mean = harmony.estimate_mean(&counts, n + m).unwrap();
    assert!(
        poisoned_mean > genuine_mean + 0.05,
        "attack must shift the mean"
    );

    let poisoned_freqs = params.debias_frequencies(&counts, n + m).unwrap();
    let outcome = LdpRecover::new(0.1)
        .unwrap()
        .recover(&poisoned_freqs, params)
        .unwrap();
    let recovered_mean = Harmony::frequencies_to_mean(&outcome.frequencies);
    assert!(
        (recovered_mean - genuine_mean).abs() < (poisoned_mean - genuine_mean).abs(),
        "recovered {recovered_mean} should beat poisoned {poisoned_mean} (genuine {genuine_mean})"
    );
}

#[test]
fn eta_matching_beta_is_near_optimal_in_expectation() {
    // Fig. 5/6 η column, tested in expectation space (no sampling noise so
    // the effect is not buried under the reduced-scale LDP noise floor):
    // build the exact mixture of Eq. (14) for a sampled-MGA attack, recover
    // with oracle targets at several η, and check the error is minimized
    // near the true ratio.
    let d = 102usize;
    let domain = ldp_common::Domain::new(d).unwrap();
    let e = 0.5f64.exp();
    let denom = d as f64 - 1.0 + e;
    let params = ldp_protocols::PureParams::new(e / denom, 1.0 / denom, domain).unwrap();
    let (p, q) = (params.p(), params.q());

    // Zipf-ish truth.
    let mut f_x: Vec<f64> = (0..d).map(|v| 1.0 / (v as f64 + 1.0)).collect();
    ldp_common::vecmath::normalize_to_simplex_sum(&mut f_x);

    // Sampled MGA on targets 50..60: per-item malicious frequencies in the
    // single-support model.
    let targets: Vec<usize> = (50..60).collect();
    let f_y: Vec<f64> = (0..d)
        .map(|v| {
            if targets.contains(&v) {
                (0.1 - q) / (p - q)
            } else {
                -q / (p - q)
            }
        })
        .collect();

    let beta = 0.05f64;
    let eta_true = beta / (1.0 - beta);
    let poisoned: Vec<f64> = f_x
        .iter()
        .zip(&f_y)
        .map(|(&x, &y)| (x + eta_true * y) / (1.0 + eta_true))
        .collect();

    let mse_at = |eta: f64| -> f64 {
        let out = ldprecover::LdpRecover::new(eta)
            .unwrap()
            .with_targets(targets.clone())
            .recover(&poisoned, params)
            .unwrap();
        ldp_sim::metrics::mse(&out.frequencies, &f_x)
    };
    let undersized = mse_at(0.005);
    let matched = mse_at(eta_true);
    let oversized = mse_at(0.8);
    assert!(
        matched < undersized,
        "matched {matched:.3e} !< undersized {undersized:.3e}"
    );
    assert!(
        matched < oversized,
        "matched {matched:.3e} !< oversized {oversized:.3e}"
    );
}
