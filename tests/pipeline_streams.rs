//! End-to-end bit-exactness pins for the kernelized aggregation paths.
//!
//! The digests below were captured from the pre-kernel pipeline (per-user
//! loop with per-report scatters, branchy samplers, no trial arena) and
//! must stay bitwise identical: the FWHT per-user path, the FWHT batched
//! readoff, the chunked report loop, and the trial arena are all pure
//! reorganizations that neither consume extra randomness nor change a
//! single count. The `tail` words additionally pin the RNG stream
//! position after aggregation — a path that silently drew one extra
//! uniform would pass a frequency check but fail the tail.

use ldp_attacks::AttackKind;
use ldp_common::hash::xxh64;
use ldp_common::rng::rng_from_seed;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::config::{AggregationMode, ExperimentConfig, PipelineOptions};
use ldp_sim::pipeline::run_aggregation;
use rand::Rng;

/// xxh64 over the poisoned-then-genuine frequency estimates, bit-exact.
fn freq_digest(poisoned: &[f64], genuine: &[f64]) -> u64 {
    let bits: Vec<u8> = poisoned
        .iter()
        .chain(genuine)
        .flat_map(|f| f.to_bits().to_le_bytes())
        .collect();
    xxh64(&bits, 0)
}

fn scaled_config(kind: ProtocolKind) -> ExperimentConfig {
    let mut config =
        ExperimentConfig::paper_default(DatasetKind::Ipums, kind, Some(AttackKind::Adaptive));
    config.scale = 0.02; // n = 7798 genuine, m = 410 malicious
    config
}

#[test]
fn per_user_aggregation_matches_pre_kernel_digests() {
    for (kind, expect_digest, expect_tail) in [
        (
            ProtocolKind::Hr,
            0x2782_e302_a502_b794u64,
            0xeb05_2688_fac1_b7f0u64,
        ),
        (
            ProtocolKind::Grr,
            0x91c3_03c6_84d5_466a,
            0xa26f_7318_bb5c_039d,
        ),
    ] {
        let config = scaled_config(kind);
        let options = PipelineOptions {
            aggregation: AggregationMode::PerUser,
            ..PipelineOptions::recovery_only()
        };
        let mut rng = rng_from_seed(0xFEED);
        let agg = run_aggregation(&config, &options, &mut rng).unwrap();
        assert_eq!(agg.genuine_count, 7798, "{kind}");
        assert_eq!(agg.malicious_count, 410, "{kind}");
        assert_eq!(
            freq_digest(&agg.poisoned_freqs, &agg.genuine_freqs),
            expect_digest,
            "{kind}: estimates drifted from the pre-kernel pipeline"
        );
        assert_eq!(
            rng.gen::<u64>(),
            expect_tail,
            "{kind}: RNG stream perturbed by the kernelized path"
        );
    }
}

#[test]
fn batched_hr_aggregation_matches_pre_kernel_digest() {
    let config = scaled_config(ProtocolKind::Hr);
    let options = PipelineOptions {
        aggregation: AggregationMode::Batched,
        ..PipelineOptions::recovery_only()
    };
    let mut rng = rng_from_seed(0xFEED);
    let agg = run_aggregation(&config, &options, &mut rng).unwrap();
    assert_eq!(
        freq_digest(&agg.poisoned_freqs, &agg.genuine_freqs),
        0x7c9e_8a6c_3f83_9956,
        "batched HR estimates drifted from the pre-kernel sampler"
    );
    assert_eq!(
        rng.gen::<u64>(),
        0xf24f_17a6_12fc_1b52,
        "batched HR RNG stream perturbed"
    );
}
