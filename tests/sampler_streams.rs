//! Draw-for-draw RNG-stream pins for the branchless sampler kernels.
//!
//! The vectors below were captured from the pre-kernel (branchy) samplers
//! and are asserted bit-for-bit against the current implementation: the
//! branchless inverse-CDF scan in `sample_binomial` must produce the
//! *identical* draw from the identical uniform, and must consume exactly
//! one uniform per call so every downstream draw in the stream (pinned by
//! the `tail` words) is unperturbed. `sample_multinomial` rides on the
//! binomial, so its pins cover the conditional-binomial decomposition too.

use ldp_common::rng::rng_from_seed;
use ldp_common::sampling::{sample_binomial, sample_multinomial};
use rand::Rng;

/// Captured from the pre-kernel sampler: 16 draws per `(seed, n, p)` cell
/// followed by the next raw `u64` of the stream.
#[test]
fn branchless_binomial_keeps_captured_draws() {
    #[rustfmt::skip]
    let cells: &[(u64, u64, f64, [u64; 16], u64)] = &[
        // Small-mean cells exercise the bottom-up scan that went branchless.
        (0xB1A5, 40, 0.1,
         [2, 5, 6, 4, 7, 7, 7, 2, 5, 6, 2, 3, 4, 2, 4, 2],
         0x7cc5_dcfd_52c4_f358),
        (0xB1A5, 1_000, 0.004,
         [2, 5, 6, 4, 7, 8, 7, 2, 5, 6, 2, 3, 3, 2, 4, 2],
         0x7cc5_dcfd_52c4_f358),
        // Large-mean cells exercise the zig-zag regime (kept branchy).
        (0xB1A5, 100_000, 0.37,
         [36962, 36862, 36770, 36883, 36728, 36697, 37256, 36973,
          36812, 36780, 37032, 37048, 37086, 36961, 37123, 37028],
         0x7cc5_dcfd_52c4_f358),
        (0xB1A5, 1_000_000, 0.5,
         [499875, 499547, 499246, 500384, 500891, 499008, 499163, 499911,
          499384, 500722, 500105, 499843, 499720, 499872, 500402, 499910],
         0x7cc5_dcfd_52c4_f358),
        // p > 1/2 goes through the complement reflection.
        (0xB1A5, 2_000, 0.93,
         [1857, 1870, 1877, 1851, 1880, 1837, 1879, 1862, 1874, 1876,
          1862, 1856, 1866, 1857, 1869, 1862],
         0x7cc5_dcfd_52c4_f358),
        // Tiny n: the scan's n-cap path.
        (0xB1A5, 17, 0.5,
         [7, 9, 11, 9, 11, 12, 11, 6, 10, 11, 6, 7, 8, 7, 9, 6],
         0x7cc5_dcfd_52c4_f358),
        // Near-zero mean: draws hug 0, the scan exits in its first chunk.
        (0xC0DE, 1_000_000, 0.000_001,
         [1, 1, 0, 2, 4, 0, 2, 1, 0, 0, 0, 0, 0, 1, 2, 0],
         0x86cd_c6c9_2e05_8545),
    ];

    for &(seed, n, p, ref expect, tail) in cells {
        let mut rng = rng_from_seed(seed);
        let draws: Vec<u64> = (0..16).map(|_| sample_binomial(n, p, &mut rng)).collect();
        assert_eq!(draws.as_slice(), expect, "seed={seed:#x}, n={n}, p={p}");
        assert_eq!(
            rng.gen::<u64>(),
            tail,
            "RNG stream perturbed after n={n}, p={p}"
        );
    }
}

/// Captured from the pre-kernel sampler: two multinomial draws (one large,
/// one tiny, sharing a stream) plus the next raw `u64`.
#[test]
fn branchless_multinomial_keeps_captured_draws() {
    let weights = [0.0, 3.0, 1.0, 0.0, 6.0, 2.5];
    let mut rng = rng_from_seed(0xD00D);
    let a = sample_multinomial(1_000_000, &weights, &mut rng).unwrap();
    let b = sample_multinomial(37, &weights, &mut rng).unwrap();
    assert_eq!(a, [0, 240_317, 79_404, 0, 480_026, 200_253]);
    assert_eq!(b, [0, 6, 2, 0, 23, 6]);
    assert_eq!(rng.gen::<u64>(), 0xf392_bac6_af24_5b3e);
}
