//! Quickstart: poison an LDP frequency estimation, then recover it.
//!
//! ```text
//! cargo run --release -p ldp-sim --example quickstart
//! ```
//!
//! Walks the full LDPRecover story on a scaled-down IPUMS-like workload:
//! genuine users perturb their items with OUE, an adaptive attacker injects
//! 5% malicious users, and the server recovers the aggregated frequencies
//! without knowing anything about the attack.

use ldp_attacks::AttackKind;
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::{pipeline::run_trial, ExperimentConfig, PipelineOptions};

fn main() -> Result<()> {
    // The paper's default cell: ε = 0.5, β = 0.05, η = 0.2 — scaled to 5%
    // of the IPUMS population so the example runs in a couple of seconds.
    let mut config = ExperimentConfig::paper_default(
        DatasetKind::Ipums,
        ProtocolKind::Oue,
        Some(AttackKind::Adaptive),
    );
    config.scale = 0.05;

    let options = PipelineOptions::recovery_only();
    let mut rng = ldp_common::rng::rng_from_seed(config.seed);
    let trial = run_trial(&config, &options, &mut rng)?;

    let mse_before = ldp_sim::metrics::mse(&trial.poisoned, &trial.true_freqs);
    let recovered = trial.recovered().expect("recover arm ran");
    let mse_after = ldp_sim::metrics::mse(recovered, &trial.true_freqs);
    let mse_genuine = ldp_sim::metrics::mse(&trial.genuine, &trial.true_freqs);

    println!("LDPRecover quickstart — {}", config.label());
    println!("  domain size            : {}", trial.true_freqs.len());
    println!("  MSE, genuine estimate  : {mse_genuine:.3e}   (LDP noise floor)");
    println!("  MSE, poisoned estimate : {mse_before:.3e}   (before recovery)");
    println!("  MSE, LDPRecover        : {mse_after:.3e}   (after recovery)");
    println!("  error reduction        : {:.1}x", mse_before / mse_after);

    // The recovered vector is a proper distribution again.
    assert!(recovered.iter().all(|&f| f >= 0.0));
    let total: f64 = recovered.iter().sum();
    println!("  recovered sum          : {total:.6} (non-negative, sums to 1)");
    Ok(())
}
