//! Untargeted degradation: the Manip attack against a census-style survey.
//!
//! ```text
//! cargo run --release -p ldp-sim --example untargeted_attack
//! ```
//!
//! Models the paper's motivating census scenario (the IPUMS "city"
//! attribute collected with GRR). The attacker does not care *which* items
//! gain — it floods a random sub-domain to maximize overall distortion.
//! The example shows the distortion per protocol and how much of it
//! LDPRecover undoes, including when the server's assumed η badly
//! overshoots the truth.

use ldp_attacks::AttackKind;
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::{run_experiment, ExperimentConfig, PipelineOptions, Table};

fn main() -> Result<()> {
    println!("Untargeted Manip attack on an IPUMS-like census (|H| = 10, β = 0.05)\n");
    let mut table = Table::new(["protocol", "MSE before", "MSE LDPRecover", "reduction"]);

    for protocol in ProtocolKind::ALL {
        let mut config = ExperimentConfig::paper_default(
            DatasetKind::Ipums,
            protocol,
            Some(AttackKind::Manip { h: 10 }),
        );
        config.scale = 0.05;
        config.trials = 3;

        let result = run_experiment(&config, &PipelineOptions::recovery_only())?;
        table.push_row([
            protocol.name().to_string(),
            format!("{:.3e}", result.mse_before.mean),
            format!("{:.3e}", result.mse_recover().unwrap().mean),
            format!(
                "{:.1}x",
                result.mse_before.mean / result.mse_recover().unwrap().mean
            ),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nNote: the server assumed η = 0.2 although the true ratio is only\n\
         β/(1−β) ≈ 0.053 — LDPRecover tolerates the mismatch (paper §VI-D)."
    );
    Ok(())
}
