//! Beyond frequencies: recovering a poisoned Harmony *mean* estimate.
//!
//! ```text
//! cargo run --release -p ldp-sim --example mean_estimation_harmony
//! ```
//!
//! The paper's §VII-A observes that any aggregation decomposable into
//! frequency estimation inherits LDPRecover — Harmony mean estimation
//! (discretize to ±1, binary randomized response) being the canonical case.
//! Here an attacker pushes the reported mean upward by always sending the
//! clean "+1" encoding; LDPRecover pulls the estimate back.

use ldp_common::rng::rng_from_seed;
use ldp_common::Result;
use ldp_protocols::{Harmony, LdpFrequencyProtocol};
use ldprecover::LdpRecover;
use rand::Rng;

fn main() -> Result<()> {
    let epsilon = 1.0;
    let n = 200_000usize; // genuine users
    let beta = 0.05;
    let m = ((beta / (1.0 - beta)) * n as f64).round() as usize;
    let true_mean = -0.2; // population leans negative
    let mut rng = rng_from_seed(7);

    let harmony = Harmony::new(epsilon)?;
    let params = harmony.rr().params();

    // Genuine users: value −0.2 ± noise, clamped to [−1, 1].
    let mut counts = [0u64; 2];
    for _ in 0..n {
        let x = (true_mean + 0.3 * (rng.gen::<f64>() - 0.5)).clamp(-1.0, 1.0);
        let bit = harmony.perturb_value(x, &mut rng)?;
        counts[usize::from(bit)] += 1;
    }
    let genuine_mean = harmony.estimate_mean(&counts, n)?;

    // Malicious users bypass perturbation and send the clean "+1" bit.
    let mut poisoned_counts = counts;
    poisoned_counts[1] += m as u64;
    let poisoned_mean = harmony.estimate_mean(&poisoned_counts, n + m)?;

    // LDPRecover on the 2-item frequency view, then map back to the mean.
    let poisoned_freqs = params.debias_frequencies(&poisoned_counts, n + m)?;
    let recover = LdpRecover::new(0.2)?;
    let outcome = recover.recover(&poisoned_freqs, params)?;
    let recovered_mean = Harmony::frequencies_to_mean(&outcome.frequencies);

    println!("Harmony mean estimation under poisoning (ε = {epsilon}, β = {beta})");
    println!("  true population mean : {true_mean:+.4}");
    println!("  genuine LDP estimate : {genuine_mean:+.4}");
    println!("  poisoned estimate    : {poisoned_mean:+.4}");
    println!("  LDPRecover estimate  : {recovered_mean:+.4}");
    println!(
        "\n  poisoning shifted the mean by {:+.4}; recovery brought it back to within {:+.4}.",
        poisoned_mean - genuine_mean,
        recovered_mean - genuine_mean
    );
    Ok(())
}
