//! Key-value LDP under poisoning — the paper's stated future work, working.
//!
//! ```text
//! cargo run --release -p ldp-kv --example key_value_recovery
//! ```
//!
//! A PrivKV-style collection (one ⟨key, value⟩ pair per user, value in
//! [−1, 1]) is poisoned by M2GA: fake users probe a target key and report
//! `(present, +1)` unperturbed, inflating both its frequency and its mean.
//! LDPRecover-KV localizes the fakes through the probe-histogram anomaly
//! and recovers both statistics.

use ldp_common::rng::rng_from_seed;
use ldp_common::{Domain, Result};
use ldp_kv::{KvProtocol, KvRecover, M2ga};

fn main() -> Result<()> {
    let d = 20usize;
    let n = 300_000usize;
    let beta = 0.05;
    let m = ((beta / (1.0 - beta)) * n as f64).round() as usize;
    let mut rng = rng_from_seed(11);

    let kv = KvProtocol::new(2.0, Domain::new(d)?)?;

    // Genuine population: Zipf-ish key popularity, means alternating ±0.4.
    let weights = ldp_common::sampling::zipf_weights(d, 1.0);
    let sampler = ldp_common::sampling::AliasTable::new(&weights)?;
    let true_freqs = sampler.probabilities().to_vec();
    let mean_of = |k: usize| if k.is_multiple_of(2) { 0.4 } else { -0.4 };

    let mut reports = Vec::with_capacity(n + m);
    for _ in 0..n {
        let key = sampler.sample(&mut rng);
        reports.push(kv.perturb(key, mean_of(key), &mut rng)?);
    }
    let clean = kv.estimate(&kv.aggregate(&reports)?)?;

    // The attack: promote the least popular key.
    let target = d - 1;
    let attack = M2ga::new(vec![target]);
    reports.extend(attack.craft(&kv, m, &mut rng));
    let agg = kv.aggregate(&reports)?;
    let poisoned = kv.estimate(&agg)?;
    let recovered = KvRecover::default().recover(&kv, &agg)?;

    println!("Key-value LDP poisoning & recovery (d = {d}, β = {beta}, target = key {target})");
    println!("                      frequency          mean");
    println!(
        "  ground truth      : {:>9.4}        {:>7.3}",
        true_freqs[target],
        mean_of(target)
    );
    println!(
        "  clean estimate    : {:>9.4}        {:>7.3}",
        clean.frequencies[target], clean.means[target]
    );
    println!(
        "  poisoned estimate : {:>9.4}        {:>7.3}",
        poisoned.frequencies[target], poisoned.means[target]
    );
    println!(
        "  LDPRecover-KV     : {:>9.4}        {:>7.3}",
        recovered.frequencies[target], recovered.means[target]
    );
    println!(
        "\n  inferred malicious probes on target: {:.0} (actual: {m})",
        recovered.malicious_probes[target]
    );
    Ok(())
}
