//! Defending item promotion: MGA vs LDPRecover / LDPRecover\* / Detection.
//!
//! ```text
//! cargo run --release -p ldp-sim --example targeted_attack_defense
//! ```
//!
//! Scenario from the paper's introduction: an attacker promotes `r = 10`
//! chosen items (think: a poisoned "popular emojis" ranking) by injecting
//! fake users running the precise maximal gain attack. The example prints
//! the frequency gain (FG) the attacker achieves before and after each
//! defense — the paper's Fig. 4 in miniature.

use ldp_attacks::AttackKind;
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::{pipeline::run_trial, ExperimentConfig, PipelineOptions};

fn main() -> Result<()> {
    let mut config = ExperimentConfig::paper_default(
        DatasetKind::Ipums,
        ProtocolKind::Oue,
        Some(AttackKind::Mga { r: 10 }),
    );
    config.scale = 0.05;

    let options = PipelineOptions::full_comparison();
    let mut rng = ldp_common::rng::rng_from_seed(42);
    let trial = run_trial(&config, &options, &mut rng)?;

    let targets = trial.attack_targets.as_ref().expect("MGA is targeted");
    let fg = |observed: &[f64]| -> f64 {
        ldp_sim::frequency_gain(observed, &trial.genuine, targets).expect("valid targets")
    };

    println!("Targeted attack defense — {} (r = 10)", config.label());
    println!("  attacker-promoted items: {targets:?}");
    println!("  FG before recovery     : {:+.4}", fg(&trial.poisoned));
    let recovered = trial.recovered().expect("recover arm ran");
    println!("  FG after LDPRecover    : {:+.4}", fg(recovered));
    if let Some(star) = trial.recovered_star() {
        println!("  FG after LDPRecover*   : {:+.4}", fg(star));
    }
    if let Some(det) = trial.detection() {
        println!("  FG after Detection     : {:+.4}", fg(det));
    }

    let gain_before = fg(&trial.poisoned);
    let gain_after = fg(recovered);
    println!(
        "\n  LDPRecover removed {:.1}% of the attacker's frequency gain.",
        100.0 * (1.0 - gain_after / gain_before)
    );
    Ok(())
}
