//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements exactly the API subset the workspace
//! uses — [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`rngs::SmallRng`] — with the same
//! semantics as `rand` 0.8:
//!
//! * `SmallRng` is xoshiro256++ seeded through SplitMix64, the same
//!   construction `rand` 0.8 uses on 64-bit targets, so streams are
//!   high-quality and fully deterministic for a given seed.
//! * `gen::<f64>()` draws uniformly from `[0, 1)` using the standard
//!   53-bit mantissa construction.
//! * `gen_range` uses Lemire's widening-multiply rejection method for
//!   integers (unbiased) and linear interpolation for floats.
//!
//! Everything is `no_std`-free plain Rust with zero dependencies. The
//! stream positions are NOT guaranteed to match upstream `rand` bit-for-bit
//! (upstream never guaranteed cross-version stability either); all
//! determinism contracts in this workspace are internal to this crate.

#![warn(missing_docs)]

pub mod rngs;

/// A random number generator core: the object-safe supplier of raw bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce from the "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution for this type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64,
                   usize => next_u64, isize => next_u64);

impl StandardSample for u128 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform on `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform on `[0, 1)` with 24 random mantissa bits.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, n)` via Lemire's rejection method.
#[inline]
fn lemire_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Zone rejection: accept iff the low half of x * n is >= threshold.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(lemire_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(lemire_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval_and_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dy: &mut dyn RngCore = &mut rng;
        let _ = dy.gen_range(0usize..4);
        let _: f64 = dy.gen();
        let mut buf = [0u8; 16];
        dy.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
