//! Concrete generators: [`SmallRng`], a xoshiro256++ implementation.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256++ by Blackman/Vigna),
/// mirroring `rand::rngs::SmallRng` on 64-bit targets.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Self { s }
    }
}
