//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng;

/// A range of collection sizes, convertible from `usize` and `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from an inner strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng().gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Creates a strategy generating vectors with elements from `element` and
/// lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
