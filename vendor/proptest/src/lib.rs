//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io)
//! property-testing crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest that the workspace's test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] implementations for numeric ranges and
//!   [`collection::vec`],
//! * the [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`] assertion macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message of the inner assertion) but is not minimized.
//! * **Deterministic generation.** Each test derives its RNG seed from the
//!   test's name, so failures reproduce exactly across runs and machines —
//!   which doubles as a guard for this workspace's determinism contracts.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Re-exports used via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of proptest's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Per-test configuration. Only `cases` is honoured by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Error raised by a failing `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Outcome of one property case: pass, fail, or discard (`prop_assume`).
#[derive(Debug)]
pub enum CaseResult {
    /// The case passed.
    Pass,
    /// The case was discarded by `prop_assume!`.
    Discard,
}

/// The RNG driving value generation (wraps the workspace's xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Derives a deterministic RNG from a test's name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name: stable across runs, platforms, and rustc.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(SmallRng::seed_from_u64(h))
    }

    /// Access the underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                rng.rng().gen_range(lo..=hi)
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// Types with a canonical "any value" strategy (mirror of `Arbitrary`).
///
/// Deliberately implemented for integers and `bool` only: real proptest's
/// `any::<f64>()` covers the full float range including negatives,
/// infinities, and NaN, which the uniform-`[0,1)` standard sampler cannot
/// honestly imitate — a float property written against it would pass
/// vacuously. Use an explicit range strategy (`-1.0f64..1.0`) for floats.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of type `T` (mirror of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// A strategy producing a fixed value (mirror of proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Runs `body` over `config.cases` generated cases. Used by [`proptest!`].
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng, u32) -> Result<CaseResult, TestCaseError>,
{
    let mut rng = TestRng::deterministic(name);
    let mut discarded = 0u32;
    for case in 0..config.cases {
        match body(&mut rng, case) {
            Ok(CaseResult::Pass) => {}
            Ok(CaseResult::Discard) => discarded += 1,
            Err(e) => panic!("proptest property '{name}' failed at case {case}: {e}"),
        }
    }
    if discarded == config.cases && config.cases > 0 {
        panic!("proptest property '{name}': every case was discarded by prop_assume!");
    }
}

/// Defines property tests. Mirrors real proptest's macro syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(-1.0f64..1.0, 1..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |rng, _case| {
                    $(let $pat = $crate::Strategy::generate(&($strat), rng);)*
                    #[allow(unreachable_code)]
                    {
                        $body
                        Ok($crate::CaseResult::Pass)
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking directly) so the harness can attach case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            )));
        }
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok($crate::CaseResult::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_respects_len_and_bounds(v in prop::collection::vec(0u64..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_discards(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_cases(
            &crate::ProptestConfig::with_cases(4),
            "always_fails",
            |_rng, _c| Err(crate::TestCaseError::fail("nope")),
        );
    }
}
