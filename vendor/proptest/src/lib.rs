//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io)
//! property-testing crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest that the workspace's test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] implementations for numeric ranges, tuples, and
//!   [`collection::vec`],
//! * the combinators [`Strategy::prop_map`], [`Strategy::prop_flat_map`],
//!   [`Strategy::prop_recursive`], [`Strategy::boxed`], and the
//!   [`prop_oneof!`] union macro,
//! * [`sample::Index`] for cut points / element picks sized at use,
//! * the [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`] assertion macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message of the inner assertion) but is not minimized.
//! * **Deterministic generation.** Each test derives its RNG seed from the
//!   test's name, so failures reproduce exactly across runs and machines —
//!   which doubles as a guard for this workspace's determinism contracts.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod sample;

/// Re-exports used via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of proptest's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Per-test configuration. Only `cases` is honoured by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Error raised by a failing `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Outcome of one property case: pass, fail, or discard (`prop_assume`).
#[derive(Debug)]
pub enum CaseResult {
    /// The case passed.
    Pass,
    /// The case was discarded by `prop_assume!`.
    Discard,
}

/// The RNG driving value generation (wraps the workspace's xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Derives a deterministic RNG from a test's name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name: stable across runs, platforms, and rustc.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(SmallRng::seed_from_u64(h))
    }

    /// Access the underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirror of proptest's
    /// `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value and draws from
    /// it (mirror of proptest's `prop_flat_map`) — the way to make one
    /// input depend on another, e.g. an index into a generated vector.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle (mirror
    /// of proptest's `boxed`; this stand-in uses `Rc`, so the handle is
    /// not `Send` — irrelevant for the single-threaded case runner).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }

    /// Builds a recursive strategy: `self` generates the leaves, and
    /// `recurse` wraps an inner strategy into the branch cases (mirror of
    /// proptest's `prop_recursive`; `_desired_size` and
    /// `_expected_branch_size` are accepted for signature compatibility
    /// but unused — depth alone bounds the stand-in's recursion).
    ///
    /// Each of the `depth` layers unions the previous layer with its
    /// wrapped form, so generated values stop at every depth ≤ `depth`,
    /// not only at the maximum.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = Union::new(vec![strategy.clone(), recurse(strategy).boxed()]).boxed();
        }
        strategy
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy handle (mirror of proptest's
/// `BoxedStrategy`, backed by `Rc` instead of `Arc`).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(std::rc::Rc::clone(&self.0))
    }
}

impl<T> core::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between alternative strategies of one value type — what
/// the [`prop_oneof!`] macro builds.
#[derive(Debug, Clone)]
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Creates a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.rng().gen_range(0..self.0.len());
        self.0[arm].generate(rng)
    }
}

/// Uniformly picks one of the listed strategies each draw (mirror of
/// proptest's `prop_oneof!`; weighted arms are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                // One field per statement: tuple-constructor argument
                // order is defined, but sequential lets keep the draw
                // order explicit (the workspace's own D08 discipline).
                $(let $name = self.$idx.generate(rng);)+
                ($($name,)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                rng.rng().gen_range(lo..=hi)
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// Types with a canonical "any value" strategy (mirror of `Arbitrary`).
///
/// Deliberately implemented for integers and `bool` only: real proptest's
/// `any::<f64>()` covers the full float range including negatives,
/// infinities, and NaN, which the uniform-`[0,1)` standard sampler cannot
/// honestly imitate — a float property written against it would pass
/// vacuously. Use an explicit range strategy (`-1.0f64..1.0`) for floats.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of type `T` (mirror of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// A strategy producing a fixed value (mirror of proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Runs `body` over `config.cases` generated cases. Used by [`proptest!`].
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng, u32) -> Result<CaseResult, TestCaseError>,
{
    let mut rng = TestRng::deterministic(name);
    let mut discarded = 0u32;
    for case in 0..config.cases {
        match body(&mut rng, case) {
            Ok(CaseResult::Pass) => {}
            Ok(CaseResult::Discard) => discarded += 1,
            Err(e) => panic!("proptest property '{name}' failed at case {case}: {e}"),
        }
    }
    if discarded == config.cases && config.cases > 0 {
        panic!("proptest property '{name}': every case was discarded by prop_assume!");
    }
}

/// Defines property tests. Mirrors real proptest's macro syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(-1.0f64..1.0, 1..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |rng, _case| {
                    $(let $pat = $crate::Strategy::generate(&($strat), rng);)*
                    #[allow(unreachable_code)]
                    {
                        $body
                        Ok($crate::CaseResult::Pass)
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking directly) so the harness can attach case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            )));
        }
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok($crate::CaseResult::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_respects_len_and_bounds(v in prop::collection::vec(0u64..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_discards(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn map_and_tuples_compose(
            (a, b) in (0u32..10, 0u32..10),
            doubled in (0u64..50).prop_map(|x| x * 2),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn flat_map_ties_an_index_to_its_vector(
            (v, i) in prop::collection::vec(0u8..200, 1..9)
                .prop_flat_map(|v| { let n = v.len(); (Just(v), 0usize..n) }),
        ) {
            prop_assert!(i < v.len());
        }

        #[test]
        fn oneof_draws_only_listed_arms(x in prop_oneof![Just(1u8), Just(4u8), 7u8..9]) {
            prop_assert!(matches!(x, 1 | 4 | 7 | 8), "got {}", x);
        }

        #[test]
        fn sample_index_lands_in_bounds(idx in any::<prop::sample::Index>(), n in 1usize..40) {
            prop_assert!(idx.index(n) < n);
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    impl Tree {
        fn depth(&self) -> u32 {
            match self {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(Tree::depth).max().unwrap_or(0),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_respect_the_depth_bound(
            tree in (0u8..255).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            }),
        ) {
            prop_assert!(tree.depth() <= 3, "depth {}", tree.depth());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_cases(
            &crate::ProptestConfig::with_cases(4),
            "always_fails",
            |_rng, _c| Err(crate::TestCaseError::fail("nope")),
        );
    }
}
