//! Sampling helpers (`prop::sample::Index`).

use crate::{Arbitrary, TestRng};
use rand::Rng;

/// A collection index generated before the collection's size is known —
/// resolve it with [`Index::index`] once the size is available (mirror of
/// proptest's `prop::sample::Index`).
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// Resolves the index against a collection of `size` elements,
    /// returning a value in `0..size`. Panics if `size` is zero, exactly
    /// like real proptest.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on an empty collection");
        (self.0 % size as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Self(rng.rng().gen())
    }
}
