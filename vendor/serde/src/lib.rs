//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations on config/report types — nothing actually serializes yet
//! (tables are rendered by `ldp_sim::table`, CSV by hand). Since the build
//! environment cannot reach crates.io, this stand-in provides the marker
//! traits plus no-op derive macros so the annotations compile. When a real
//! wire format is needed, swap this out for the real `serde` by pointing
//! `[workspace.dependencies] serde` back at the registry.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stand-in).
pub trait Deserialize<'de>: Sized {}
