//! No-op `Serialize` / `Deserialize` derive macros for the offline serde
//! stand-in. They accept (and ignore) `#[serde(...)]` helper attributes so
//! annotated types compile unchanged; no impls are emitted because nothing
//! in the workspace serializes yet.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
