//! Offline stand-in for the [`criterion`](https://bheisler.github.io/criterion.rs)
//! benchmarking crate.
//!
//! Implements the API subset the workspace's five bench suites use —
//! benchmark groups, `bench_function` / `bench_with_input`, throughput
//! annotations, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery.
//!
//! Two run modes, selected the same way real criterion does it:
//!
//! * `cargo bench` passes `--bench` to the target: each benchmark is warmed
//!   up and measured over its configured measurement window, and mean
//!   time-per-iteration (plus throughput if annotated) is printed.
//! * Any other invocation (e.g. `cargo test --benches`) runs each benchmark
//!   body exactly once as a smoke test, so bench targets are cheap to gate
//!   in CI.
//!
//! # Perf-trajectory emission
//!
//! With `LDP_BENCH_JSON_DIR=<dir>` set, a measured run additionally writes
//! `<dir>/BENCH_<suite>.json`: the median ns/iteration of every case, plus
//! a `score` normalized by a deterministic calibration microbench timed in
//! the same process — so scores are comparable across machines of
//! different speeds. `criterion_main!` triggers the write after all groups
//! finish; the gate binary (`ldp-bench/bench_gate`) compares these files
//! against the blessed trajectory.

#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark, used to derive rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_id: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Types usable as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// Converts to the rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// One measured benchmark case, queued for trajectory emission.
struct CaseRecord {
    id: String,
    ns_per_iter: f64,
}

/// Measured cases of this process, drained by [`write_bench_json`].
static RECORDS: Mutex<Vec<CaseRecord>> = Mutex::new(Vec::new());

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median seconds per iteration, filled by [`Bencher::iter`].
    secs_per_iter: f64,
    iters: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`--bench`).
    Measure,
    /// Run the body once (smoke / `cargo test`).
    Smoke,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size targeting the measurement window split over
        // `sample_size` batches, based on the warm-up rate.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target_batch = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((target_batch / per_iter.max(1e-12)).ceil() as u64).max(1);

        let mut batch_means: Vec<f64> = Vec::with_capacity(self.sample_size + 1);
        let mut total_iters: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            batch_means.push(t.elapsed().as_secs_f64() / batch as f64);
            total_iters += batch;
        }
        // Median over batches: robust to the scheduler hiccups a plain
        // mean folds into the trajectory.
        self.secs_per_iter = median(&mut batch_means);
        self.iters = total_iters;
    }
}

/// Median of `xs` (sorts in place; 0.0 when empty).
fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement batches (advisory in the stand-in).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run(&id, |b| routine(b));
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        self.run(&id, |b| routine(b, input));
        self
    }

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            secs_per_iter: 0.0,
            iters: 0,
        };
        routine(&mut bencher);
        let full_id = format!("{}/{}", self.name, id);
        match self.criterion.mode {
            Mode::Smoke => println!("bench {full_id} ... ok (smoke: 1 iteration)"),
            Mode::Measure => {
                let rate = self.throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!(
                            "  ({:.3e} elem/s)",
                            n as f64 / bencher.secs_per_iter.max(1e-12)
                        )
                    }
                    Throughput::Bytes(n) => {
                        format!(
                            "  ({:.3e} B/s)",
                            n as f64 / bencher.secs_per_iter.max(1e-12)
                        )
                    }
                });
                println!(
                    "bench {full_id}: {:>12.1} ns/iter over {} iters{}",
                    bencher.secs_per_iter * 1e9,
                    bencher.iters,
                    rate.unwrap_or_default()
                );
                RECORDS.lock().expect("bench registry").push(CaseRecord {
                    id: full_id,
                    ns_per_iter: bencher.secs_per_iter * 1e9,
                });
            }
        }
    }

    /// Finishes the group (printing a separator in measure mode).
    pub fn finish(self) {
        if self.criterion.mode == Mode::Measure {
            println!();
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    /// Selects measure mode iff `--bench` was passed (as `cargo bench` does).
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Self {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 100,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_millis(2000),
            criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut group = self.benchmark_group("crit");
        group.bench_function(id, |b| routine(b));
        group.finish();
        self
    }
}

/// Nanoseconds per step of a fixed integer workload (xorshift64), the
/// machine-speed yardstick trajectory scores are normalized by. Median of
/// several samples, measured in-process right before emission so it sees
/// the same thermal/frequency state as the benchmarks themselves.
fn calibration_ns() -> f64 {
    const STEPS: u64 = 100_000;
    let mut samples = Vec::with_capacity(17);
    let mut x = 0x9E37_79B9_7F4A_7C15_u64;
    for _ in 0..17 {
        let t = Instant::now();
        for _ in 0..STEPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x = black_box(x);
        }
        samples.push(t.elapsed().as_secs_f64() * 1e9 / STEPS as f64);
    }
    black_box(x);
    median(&mut samples)
}

/// The bench-suite name: the executable stem with cargo's trailing
/// `-<16-hex-digit hash>` stripped.
fn strip_cargo_hash(stem: &str) -> &str {
    match stem.rsplit_once('-') {
        Some((base, hash))
            if !base.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base
        }
        _ => stem,
    }
}

/// Renders the trajectory JSON for `suite`.
fn render_bench_json(suite: &str, calib_ns: f64, records: &[CaseRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"suite\": \"{suite}\",\n"));
    out.push_str(&format!("  \"calibration_ns\": {calib_ns:.4},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.4}, \"score\": {:.6}}}{comma}\n",
            r.id,
            r.ns_per_iter,
            r.ns_per_iter / calib_ns.max(1e-12)
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_<suite>.json` into `$LDP_BENCH_JSON_DIR`, if that
/// variable is set and this process measured anything (i.e. ran under
/// `--bench`). Called by [`criterion_main!`] after every group has run;
/// a no-op in smoke mode or without the env var.
pub fn write_bench_json() {
    let Ok(dir) = std::env::var("LDP_BENCH_JSON_DIR") else {
        return;
    };
    let records = RECORDS.lock().expect("bench registry");
    if records.is_empty() {
        return;
    }
    let exe = std::env::current_exe().ok();
    let suite = exe
        .as_deref()
        .and_then(|p| p.file_stem())
        .and_then(|s| s.to_str())
        .map_or_else(|| "bench".to_string(), |s| strip_cargo_hash(s).to_string());
    let body = render_bench_json(&suite, calibration_ns(), &records);
    let path = std::path::Path::new(&dir).join(format!("BENCH_{suite}.json"));
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body)) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups, then emits the
/// perf trajectory (see [`write_bench_json`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_bench_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("grr", 102).into_id(), "grr/102");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }

    #[test]
    fn median_is_robust_to_order_and_parity() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn cargo_hash_is_stripped_only_when_present() {
        assert_eq!(
            strip_cargo_hash("aggregation-0123456789abcdef"),
            "aggregation"
        );
        assert_eq!(
            strip_cargo_hash("end_to_end-ABCDEF0123456789"),
            "end_to_end"
        );
        // Not a 16-hex suffix → untouched.
        assert_eq!(strip_cargo_hash("aggregation"), "aggregation");
        assert_eq!(strip_cargo_hash("agg-regation"), "agg-regation");
        assert_eq!(strip_cargo_hash("-0123456789abcdef"), "-0123456789abcdef");
    }

    #[test]
    fn trajectory_json_shape() {
        let records = vec![
            CaseRecord {
                id: "g/grr/1000".into(),
                ns_per_iter: 250.0,
            },
            CaseRecord {
                id: "g/olh/1000".into(),
                ns_per_iter: 125.0,
            },
        ];
        let json = render_bench_json("aggregation", 2.5, &records);
        assert!(json.contains("\"suite\": \"aggregation\""));
        assert!(json.contains("\"calibration_ns\": 2.5000"));
        assert!(json
            .contains("{\"id\": \"g/grr/1000\", \"median_ns\": 250.0000, \"score\": 100.000000},"));
        assert!(json
            .contains("{\"id\": \"g/olh/1000\", \"median_ns\": 125.0000, \"score\": 50.000000}\n"));
        // Exactly one trailing comma: the list is valid JSON.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn calibration_is_positive_and_finite() {
        let ns = calibration_ns();
        assert!(ns.is_finite() && ns > 0.0, "{ns}");
    }
}
