//! Offline stand-in for the [`criterion`](https://bheisler.github.io/criterion.rs)
//! benchmarking crate.
//!
//! Implements the API subset the workspace's five bench suites use —
//! benchmark groups, `bench_function` / `bench_with_input`, throughput
//! annotations, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery.
//!
//! Two run modes, selected the same way real criterion does it:
//!
//! * `cargo bench` passes `--bench` to the target: each benchmark is warmed
//!   up and measured over its configured measurement window, and mean
//!   time-per-iteration (plus throughput if annotated) is printed.
//! * Any other invocation (e.g. `cargo test --benches`) runs each benchmark
//!   body exactly once as a smoke test, so bench targets are cheap to gate
//!   in CI.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark, used to derive rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_id: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Types usable as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// Converts to the rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_secs: f64,
    iters: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`--bench`).
    Measure,
    /// Run the body once (smoke / `cargo test`).
    Smoke,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size targeting the measurement window split over
        // `sample_size` batches, based on the warm-up rate.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target_batch = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((target_batch / per_iter.max(1e-12)).ceil() as u64).max(1);

        let mut total_time = 0.0_f64;
        let mut total_iters: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_time += t.elapsed().as_secs_f64();
            total_iters += batch;
        }
        self.mean_secs = total_time / total_iters.max(1) as f64;
        self.iters = total_iters;
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement batches (advisory in the stand-in).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run(&id, |b| routine(b));
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        self.run(&id, |b| routine(b, input));
        self
    }

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            mean_secs: 0.0,
            iters: 0,
        };
        routine(&mut bencher);
        let full_id = format!("{}/{}", self.name, id);
        match self.criterion.mode {
            Mode::Smoke => println!("bench {full_id} ... ok (smoke: 1 iteration)"),
            Mode::Measure => {
                let rate = self.throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!("  ({:.3e} elem/s)", n as f64 / bencher.mean_secs.max(1e-12))
                    }
                    Throughput::Bytes(n) => {
                        format!("  ({:.3e} B/s)", n as f64 / bencher.mean_secs.max(1e-12))
                    }
                });
                println!(
                    "bench {full_id}: {:>12.1} ns/iter over {} iters{}",
                    bencher.mean_secs * 1e9,
                    bencher.iters,
                    rate.unwrap_or_default()
                );
            }
        }
    }

    /// Finishes the group (printing a separator in measure mode).
    pub fn finish(self) {
        if self.criterion.mode == Mode::Measure {
            println!();
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    /// Selects measure mode iff `--bench` was passed (as `cargo bench` does).
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Self {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 100,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_millis(2000),
            criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut group = self.benchmark_group("crit");
        group.bench_function(id, |b| routine(b));
        group.finish();
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("grr", 102).into_id(), "grr/102");
        assert_eq!(BenchmarkId::from_parameter(7).into_id(), "7");
    }
}
