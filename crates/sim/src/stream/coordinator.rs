//! The multi-process streaming coordinator.
//!
//! `ldp stream --workers N` promotes the in-memory shard fan-out of
//! [`StreamEngine::step`] to a distributed aggregation service: `N`
//! shard workers run as separate OS processes (the hidden
//! `ldp stream-worker` subcommand), speaking the length-prefixed JSON
//! protocol of [`transport`] over stdio. The coordinator assigns
//! `(shard, epoch)` work units round-robin, collects delta frames in
//! whatever order workers finish, and folds each completed epoch through
//! [`StreamEngine::apply_epoch_deltas`] — the `CountAccumulator` merge
//! monoid (proptest-proven commutative/associative) makes the arrival
//! order irrelevant to the merged bits.
//!
//! **Failover is replay.** Every work unit is a pure function of
//! `(spec, shard, epoch)` via the derived RNG stream layout, and the
//! engine only advances at epoch boundaries, so worker state is
//! disposable by construction. When a worker times out, dies, or sends
//! a torn/unparsable frame, the coordinator kills the process, respawns
//! it after a bounded backoff, and re-sends the unit — the replayed
//! delta is bit-identical to what the lost worker would have produced,
//! which is why a run with an injected mid-epoch crash still emits
//! byte-identical reports and checkpoints to the in-process engine.
//!
//! What workers never see: the engine state. All merging, recovery, and
//! checkpointing stays coordinator-side, so the worker protocol is two
//! message types and the blast radius of a worker failure is one work
//! unit.

use std::io::Read;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use ldp_common::{Json, LdpError, Result};

use super::transport::{self, WorkerRequest, WorkerResponse};
use super::{ShardDelta, StreamEngine};

/// How to launch one shard worker process.
#[derive(Debug, Clone)]
pub struct WorkerLauncher {
    /// The executable (normally the running `ldp` binary itself).
    pub program: PathBuf,
    /// Leading arguments (normally `["stream-worker"]`).
    pub args: Vec<String>,
    /// Extra arguments injected into worker 0's **first** spawn only —
    /// the fault harness (`--inject-fault …`). Respawned workers are
    /// always healthy, so an injected fault exercises exactly one
    /// failover.
    pub first_spawn_extra_args: Vec<String>,
}

impl WorkerLauncher {
    /// Launches workers as `program stream-worker` — the standard shape.
    pub fn for_binary(program: PathBuf) -> Self {
        WorkerLauncher {
            program,
            args: vec!["stream-worker".into()],
            first_spawn_extra_args: Vec::new(),
        }
    }
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorConfig {
    /// Worker process count (≥ 1).
    pub workers: usize,
    /// Per-work-unit reply timeout.
    pub timeout: Duration,
    /// Respawn-and-replay attempts per work unit beyond the first try.
    pub max_retries: usize,
    /// Base backoff between a kill and the respawn; grows linearly with
    /// the attempt number (bounded by `max_retries`).
    pub backoff: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            workers: 2,
            timeout: Duration::from_secs(10),
            max_retries: 3,
            backoff: Duration::from_millis(50),
        }
    }
}

/// A live worker process plus the reader thread draining its stdout
/// into a channel (so replies can be awaited with a timeout without
/// blocking on the pipe directly).
struct WorkerProcess {
    child: Child,
    stdin: ChildStdin,
    frames: mpsc::Receiver<Result<Json>>,
}

impl WorkerProcess {
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait(); // reap; the reader thread ends on EOF
    }
}

/// One worker slot: its launch recipe and, when alive, its process.
struct WorkerSlot {
    launcher: WorkerLauncher,
    index: usize,
    spawn_count: usize,
    process: Option<WorkerProcess>,
}

impl WorkerSlot {
    fn new(launcher: WorkerLauncher, index: usize) -> Self {
        WorkerSlot {
            launcher,
            index,
            spawn_count: 0,
            process: None,
        }
    }

    fn spawn(&mut self) -> Result<()> {
        let mut command = Command::new(&self.launcher.program);
        command.args(&self.launcher.args);
        if self.index == 0 && self.spawn_count == 0 {
            command.args(&self.launcher.first_spawn_extra_args);
        }
        command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = command.spawn().map_err(|e| {
            LdpError::invalid(format!(
                "worker {}: spawning {}: {e}",
                self.index,
                self.launcher.program.display()
            ))
        })?;
        self.spawn_count += 1;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| LdpError::invalid("worker stdin not piped"))?;
        let mut stdout = child
            .stdout
            .take()
            .ok_or_else(|| LdpError::invalid("worker stdout not piped"))?;
        let (tx, frames) = mpsc::channel();
        std::thread::spawn(move || drain_frames(&mut stdout, &tx));
        self.process = Some(WorkerProcess {
            child,
            stdin,
            frames,
        });
        Ok(())
    }

    fn kill(&mut self) {
        if let Some(process) = self.process.take() {
            process.kill();
        }
    }

    /// Runs one `(shard, epoch)` unit with timeout/retry/backoff; on any
    /// worker failure the process is killed, respawned, and the unit
    /// replayed — bit-identical by purity.
    fn request(
        &mut self,
        work: &WorkerRequest,
        domain_size: usize,
        config: &CoordinatorConfig,
    ) -> Result<ShardDelta> {
        let WorkerRequest::Work { shard, epoch, .. } = *work else {
            return Err(LdpError::invalid("request() only carries work units"));
        };
        let mut last_failure = String::new();
        for attempt in 0..=config.max_retries {
            if attempt > 0 {
                // Bounded linear backoff before the replay.
                std::thread::sleep(config.backoff * attempt as u32);
            }
            if self.process.is_none() {
                if let Err(e) = self.spawn() {
                    last_failure = e.to_string();
                    continue;
                }
            }
            let Some(process) = self.process.as_mut() else {
                continue;
            };
            if let Err(e) = transport::write_frame(&mut process.stdin, &work.to_json()) {
                last_failure = format!("send failed: {e}");
                self.kill();
                continue;
            }
            match process.frames.recv_timeout(config.timeout) {
                Ok(Ok(frame)) => match WorkerResponse::from_json(&frame, domain_size) {
                    Ok(WorkerResponse::Delta {
                        shard: got_shard,
                        epoch: got_epoch,
                        delta,
                    }) if got_shard == shard && got_epoch == epoch => return Ok(delta),
                    Ok(WorkerResponse::Delta {
                        shard: got_shard,
                        epoch: got_epoch,
                        ..
                    }) => {
                        last_failure = format!(
                            "answered unit ({got_shard}, {got_epoch}) instead of ({shard}, {epoch})"
                        );
                        self.kill();
                    }
                    Ok(WorkerResponse::Error { message }) => {
                        // Deterministic unit failure: a replay would fail
                        // identically, so abort the run instead.
                        return Err(LdpError::invalid(format!(
                            "worker {} reported unit ({shard}, {epoch}) failed: {message}",
                            self.index
                        )));
                    }
                    Err(e) => {
                        last_failure = format!("malformed response: {e}");
                        self.kill();
                    }
                },
                Ok(Err(e)) => {
                    last_failure = format!("read failed: {e}");
                    self.kill();
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    last_failure = format!("no reply within {:?}", config.timeout);
                    self.kill();
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    last_failure = "worker died (stdout closed)".to_string();
                    self.kill();
                }
            }
        }
        Err(LdpError::invalid(format!(
            "worker {}: unit ({shard}, {epoch}) failed after {} attempts; last failure: {}",
            self.index,
            config.max_retries + 1,
            last_failure
        )))
    }

    /// Orderly shutdown: a shutdown frame, then a bounded wait; workers
    /// that ignore it are killed.
    fn shutdown(&mut self) {
        if let Some(mut process) = self.process.take() {
            let polite =
                transport::write_frame(&mut process.stdin, &WorkerRequest::Shutdown.to_json())
                    .is_ok();
            drop(process.stdin);
            if polite {
                // EOF on the frame channel == worker exited its loop.
                while let Ok(frame) = process.frames.recv_timeout(Duration::from_secs(2)) {
                    drop(frame);
                }
            }
            let _ = process.child.kill();
            let _ = process.child.wait();
        }
    }
}

/// Reader-thread body: drain frames (or one terminal error) into `tx`.
fn drain_frames(stdout: &mut impl Read, tx: &mpsc::Sender<Result<Json>>) {
    loop {
        match transport::read_frame(stdout) {
            Ok(Some(frame)) => {
                if tx.send(Ok(frame)).is_err() {
                    return; // coordinator lost interest (slot killed)
                }
            }
            Ok(None) => return, // clean EOF
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

/// Drives `engine` to completion over `config.workers` worker processes.
///
/// Shards are assigned round-robin (`shard % workers`); each worker's
/// units run sequentially on its own coordinator thread, epochs complete
/// as a barrier (the engine advances only at epoch boundaries), and
/// deltas are folded in **arrival order** — bit-identical to shard order
/// by the merge monoid. Worker processes persist across epochs; faults
/// trigger kill → backoff → respawn → replay per `WorkerSlot::request`.
///
/// # Errors
/// [`LdpError::InvalidParameter`] for a zero worker count, a work unit
/// that exhausts its retries, or a deterministic worker-side failure;
/// otherwise propagates engine merge/recovery failures.
pub fn drive(
    engine: &mut StreamEngine,
    launcher: &WorkerLauncher,
    config: &CoordinatorConfig,
) -> Result<()> {
    let horizon = engine.spec().epochs;
    drive_with(engine, horizon, launcher, config, |_| Ok(()))
}

/// [`drive`] with a suspension horizon and a per-epoch-boundary hook
/// (the CLI checkpoints there) — the coordinator-side counterpart of the
/// in-process checkpoint-every-epoch loop.
///
/// # Errors
/// As [`drive`]; also propagates the first failing `after_epoch`.
pub fn drive_with<F>(
    engine: &mut StreamEngine,
    horizon: usize,
    launcher: &WorkerLauncher,
    config: &CoordinatorConfig,
    mut after_epoch: F,
) -> Result<()>
where
    F: FnMut(&StreamEngine) -> Result<()>,
{
    if config.workers == 0 {
        return Err(LdpError::invalid("coordinator needs ≥ 1 worker"));
    }
    let spec = *engine.spec();
    let domain_size = spec.domain().size();
    let horizon = horizon.min(spec.epochs);
    let mut slots: Vec<WorkerSlot> = (0..config.workers)
        .map(|index| WorkerSlot::new(launcher.clone(), index))
        .collect();

    let result = (|| {
        while engine.epochs_done() < horizon {
            let epoch = engine.epochs_done();
            // Round-robin unit assignment: slot w owns shards w, w+N, …
            let assignments: Vec<Vec<usize>> = (0..config.workers)
                .map(|w| (w..spec.shards).step_by(config.workers).collect())
                .collect();
            let (tx, rx) = mpsc::channel::<Result<(usize, ShardDelta)>>();
            std::thread::scope(|scope| {
                for (slot, shards) in slots.iter_mut().zip(&assignments) {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for &shard in shards {
                            let work = WorkerRequest::Work { spec, shard, epoch };
                            let sent = tx.send(
                                slot.request(&work, domain_size, config)
                                    .map(|delta| (shard, delta)),
                            );
                            if sent.is_err() {
                                return;
                            }
                        }
                    });
                }
                drop(tx);
            });
            // Fold in arrival order — the order the workers finished in,
            // not shard order; the merge monoid makes them bit-equal.
            let mut arrived: Vec<(usize, ShardDelta)> = Vec::with_capacity(spec.shards);
            for outcome in rx {
                arrived.push(outcome?);
            }
            engine.apply_epoch_deltas(epoch, &arrived)?;
            after_epoch(engine)?;
        }
        Ok(())
    })();

    for slot in &mut slots {
        if result.is_ok() {
            slot.shutdown();
        } else {
            slot.kill();
        }
    }
    result
}

/// Convenience wrapper: fresh engine, drive to completion, return it.
///
/// # Errors
/// Propagates [`StreamEngine::new`] and [`drive`].
pub fn run_stream(
    spec: super::StreamSpec,
    launcher: &WorkerLauncher,
    config: &CoordinatorConfig,
) -> Result<StreamEngine> {
    let mut engine = StreamEngine::new(spec)?;
    drive(&mut engine, launcher, config)?;
    Ok(engine)
}
