//! Sharded streaming ingestion with epoch-based online recovery.
//!
//! The paper's server is a one-shot batch estimator: aggregate every
//! report, then recover once. A production aggregator under an ongoing
//! poisoning campaign wants recovered frequencies *as the stream
//! progresses*. This module turns the existing building blocks into that
//! system:
//!
//! * **Shards** — synthetic genuine + malicious report traffic is fanned
//!   across `N` shards. Each shard owns a [`CountAccumulator`] and its own
//!   RNG stream, derived per `(shard, epoch)` from the master seed
//!   ([`ldp_common::rng::derive_seed2`]), so shards are independent,
//!   individually re-runnable, and mergeable in any order.
//! * **Epoch deltas** — a shard never materializes reports for genuine
//!   traffic: it samples its epoch's population histogram
//!   ([`DatasetKind::generate_user_counts`]) and feeds it to the protocol's
//!   count sampler (`batch_aggregate`, the PR 2 batched engine), `O(d)`
//!   per epoch for all five protocols regardless of traffic volume.
//!   Malicious
//!   reports are crafted individually — the attack decides their joint
//!   shape — and folded into a separate accumulator, exactly as the
//!   offline pipeline does.
//! * **Epoch boundaries** — after every epoch the shard deltas merge into
//!   the engine's cumulative state and the `recover` defense arm
//!   (`ldprecover::arm`) runs on the debiased merged counts, producing a
//!   recovery-accuracy-vs-reports-seen trajectory. Any *count-only* arm
//!   set can be evaluated on the same state via
//!   [`StreamEngine::arm_snapshot`]: an arm's
//!   [`ArmRequirements::needs_reports`](ldprecover::ArmRequirements)
//!   decides its eligibility — streaming never materializes per-user
//!   reports, so report-consuming arms (detection, k-means) are rejected
//!   with a clear error rather than silently skipped.
//! * **Checkpoints** — the whole engine state round-trips through the
//!   shared JSON value layer ([`ldp_common::json`], see
//!   [`checkpoint`](self)); because all randomness is derived per
//!   `(shard, epoch)`, no RNG state needs serializing and a suspended
//!   stream resumes **bit-identically**.
//!
//! Equivalence contracts (enforced by `tests/stream_equivalence.rs`):
//!
//! 1. A 1-shard single-epoch run consumes exactly the RNG call sequence of
//!    the offline batched pipeline (`run_aggregation` + recover), so its
//!    counts, estimates, and recovered frequencies are bit-identical to
//!    the one-shot path at the same derived seed.
//! 2. The merged final state of an `N`-shard run is bit-identical to
//!    re-running each of its shard/epoch cells standalone
//!    ([`shard_epoch_delta`]) and merging the deltas in any grouping —
//!    sharding is pure parallelization of a fixed randomness layout, which
//!    is what lets shards live on separate machines.
//! 3. Relative to a 1-shard run over the same traffic volume, an
//!    `N`-shard run re-rolls the sampling noise (different derived
//!    streams) but draws from the same distribution: estimates agree
//!    statistically, never bitwise.

pub mod checkpoint;
pub mod coordinator;
pub mod transport;
pub mod window;
pub mod worker;

pub use window::{EpochAggregate, WindowAggregate, WindowMode, WindowState};

use ldp_attacks::AttackKind;
use ldp_common::float::exactly_zero;
use ldp_common::rng::{derive_seed2, rng_from_seed};
use ldp_common::{Domain, Json, LdpError, Result};
use ldp_datasets::DatasetKind;
use ldp_protocols::{AnyProtocol, CountAccumulator, LdpFrequencyProtocol, ProtocolKind};
use ldprecover::arm::RecoverArm;
use ldprecover::{
    top_k_increase, ArmContext, ArmOutcome, ArmOutput, ArmSet, DefenseArm, KMeansDefense,
};

use crate::config::ExperimentConfig;
use crate::metrics::mse;
use crate::runner::{map_trials, thread_count};

/// Identified targets for partial-knowledge arms in streaming snapshots
/// (the paper's r/2 = 5 rule).
const STREAM_STAR_TOP_K: usize = 5;

/// Domain-separation salt for the (inert) RNG stream handed to snapshot
/// arms — count-only arms never draw, but the trait contract requires
/// one, and a derived stream keeps any future rng-consuming count-only
/// arm deterministic per `(seed, epoch)`.
const ARM_SNAPSHOT_SALT: u64 = 0xA4A5_AA77;

/// Declarative description of one streaming-ingestion run.
///
/// The population model matches the offline pipeline cell for cell: every
/// epoch, `users_per_epoch` genuine users (split as evenly as possible
/// across the shards) draw items from the dataset's distribution and run
/// the protocol, while each shard's attacker contributes
/// `round(β/(1−β) · genuine)` crafted reports — a sustained campaign at a
/// constant malicious fraction. The attack's randomized state (targets,
/// designed distributions) is re-instantiated per `(shard, epoch)` from
/// that cell's derived stream, mirroring how the offline harness
/// re-randomizes attacks across trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Which evaluation workload generates the genuine traffic.
    pub dataset: DatasetKind,
    /// Which LDP protocol the users run.
    pub protocol: ProtocolKind,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// The ongoing poisoning campaign, or `None` for clean traffic.
    pub attack: Option<AttackKind>,
    /// Malicious fraction β = m/(n+m), applied per shard per epoch.
    pub beta: f64,
    /// The recovery method's assumed ratio η = m/n.
    pub eta: f64,
    /// Number of ingestion shards.
    pub shards: usize,
    /// Planned stream length in epochs.
    pub epochs: usize,
    /// Genuine users arriving per epoch (across all shards).
    pub users_per_epoch: usize,
    /// Master seed; every `(shard, epoch)` cell derives its own stream.
    pub seed: u64,
    /// Which state the epoch-boundary recovery reads (see [`window`]).
    pub window: WindowMode,
}

impl StreamSpec {
    /// Builds a spec from an offline [`ExperimentConfig`], keeping the
    /// protocol/attack/parameter cell identical — the bridge the
    /// differential tests use to compare online against offline runs.
    pub fn from_experiment(
        config: &ExperimentConfig,
        shards: usize,
        epochs: usize,
        users_per_epoch: usize,
    ) -> Self {
        Self {
            dataset: config.dataset,
            protocol: config.protocol,
            epsilon: config.epsilon,
            attack: config.attack,
            beta: config.beta,
            eta: config.eta,
            shards,
            epochs,
            users_per_epoch,
            seed: config.seed,
            window: WindowMode::Cumulative,
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for out-of-range ε/β/η, zero shards
    /// or epochs, an epoch too small to give every shard a user, or
    /// β > 0 without an attack.
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(LdpError::invalid(format!("epsilon = {}", self.epsilon)));
        }
        if !(0.0..1.0).contains(&self.beta) {
            return Err(LdpError::invalid(format!(
                "beta must be in [0,1), got {}",
                self.beta
            )));
        }
        if !(self.eta.is_finite() && self.eta >= 0.0) {
            return Err(LdpError::invalid(format!("eta = {}", self.eta)));
        }
        if self.attack.is_none() && self.beta > 0.0 {
            return Err(LdpError::invalid(
                "beta > 0 requires an attack; set beta = 0 for a clean stream",
            ));
        }
        if self.shards == 0 {
            return Err(LdpError::invalid("shards must be ≥ 1"));
        }
        if self.epochs == 0 {
            return Err(LdpError::invalid("epochs must be ≥ 1"));
        }
        if self.users_per_epoch < self.shards {
            return Err(LdpError::invalid(format!(
                "users_per_epoch ({}) must cover every shard ({})",
                self.users_per_epoch, self.shards
            )));
        }
        self.window.validate()?;
        Ok(())
    }

    /// Genuine users shard `shard` ingests per epoch: an even split of
    /// [`StreamSpec::users_per_epoch`], remainder to the lowest shards.
    pub fn shard_users(&self, shard: usize) -> usize {
        debug_assert!(shard < self.shards);
        self.users_per_epoch / self.shards + usize::from(shard < self.users_per_epoch % self.shards)
    }

    /// Malicious reports accompanying `genuine` genuine users:
    /// `m = round(β/(1−β) · genuine)` (so that β = m/(n+m)), via the
    /// canonical [`ldp_common::population::malicious_count`]. Zero
    /// without an attack — β alone does not poison.
    pub fn malicious_count(&self, genuine: usize) -> usize {
        if self.attack.is_none() || exactly_zero(self.beta) {
            return 0;
        }
        ldp_common::population::malicious_count(self.beta, genuine)
    }

    /// The item domain of the spec's workload.
    pub fn domain(&self) -> Domain {
        self.dataset.domain()
    }
}

/// One shard's contribution to one epoch: population histogram, aggregated
/// genuine support counts, and malicious support counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDelta {
    /// The epoch's genuine population histogram (ground truth delta).
    pub population: Vec<u64>,
    /// Aggregated genuine support counts `C(v)`.
    pub genuine_counts: Vec<u64>,
    /// Genuine users in this delta.
    pub genuine_users: usize,
    /// Aggregated malicious support counts.
    pub malicious_counts: Vec<u64>,
    /// Malicious reports in this delta.
    pub malicious_users: usize,
}

/// Computes the delta of one `(shard, epoch)` cell from its derived RNG
/// stream — the unit of randomness of the whole engine.
///
/// The RNG call sequence deliberately mirrors the offline batched
/// aggregation path (`ldp_sim::pipeline::run_aggregation` in `Batched`
/// mode) step for step: population histogram, genuine count sampler, then
/// attack instantiation + crafting. That is what makes a 1-shard
/// single-epoch stream bit-identical to the one-shot pipeline.
///
/// # Errors
/// Propagates spec validation, dataset generation, and protocol
/// construction failures.
pub fn shard_epoch_delta(spec: &StreamSpec, shard: usize, epoch: usize) -> Result<ShardDelta> {
    if shard >= spec.shards {
        return Err(LdpError::invalid(format!(
            "shard {shard} out of range (spec has {})",
            spec.shards
        )));
    }
    let mut rng = rng_from_seed(derive_seed2(spec.seed, shard as u64, epoch as u64));
    let users = spec.shard_users(shard);

    // Genuine traffic: population histogram + batched count sampler —
    // nothing O(n) is ever materialized.
    let population = spec.dataset.generate_user_counts(users, &mut rng)?;
    let domain = population.domain();
    let protocol = spec.protocol.build(spec.epsilon, domain)?;
    let genuine_counts = protocol
        .batch_aggregate(population.counts(), &mut rng)
        .unwrap_or_else(|| {
            ldp_protocols::batch::grouped_support_counts(&protocol, population.counts(), &mut rng)
        });

    // Malicious traffic: crafted reports, the attack decides their shape.
    let m = spec.malicious_count(users);
    let mut malicious = CountAccumulator::new(domain);
    if m > 0 {
        let attack_kind = spec.attack.expect("validated: beta > 0 implies an attack");
        let attack = attack_kind.instantiate(domain, &mut rng);
        let crafted = attack.craft(&protocol, m, &mut rng);
        malicious.add_all(&protocol, &crafted);
    }

    Ok(ShardDelta {
        population: population.counts().to_vec(),
        genuine_counts,
        genuine_users: users,
        malicious_counts: malicious.counts().to_vec(),
        malicious_users: m,
    })
}

/// One point of the recovery-accuracy-vs-reports-seen trajectory,
/// captured at an epoch boundary over the *cumulative* merged state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochPoint {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Cumulative genuine users ingested.
    pub genuine_users: usize,
    /// Cumulative malicious reports ingested.
    pub malicious_users: usize,
    /// Cumulative reports seen (genuine + malicious).
    pub reports_seen: usize,
    /// MSE of the poisoned estimate vs the realized truth so far.
    pub mse_before: f64,
    /// MSE of the recovered estimate vs the realized truth so far.
    pub mse_recovered: f64,
    /// MSE of the genuine-only estimate (the LDP noise floor online).
    pub mse_genuine: f64,
}

/// Full frequency vectors of the engine's current merged state, computed
/// on demand (they are a pure function of the accumulated counts, so they
/// are never stored or checkpointed).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySnapshot {
    /// Realized ground-truth frequencies of the ingested population.
    pub truth: Vec<f64>,
    /// Genuine-only debiased estimate.
    pub genuine_estimate: Vec<f64>,
    /// Poisoned (genuine + malicious) debiased estimate.
    pub poisoned_estimate: Vec<f64>,
    /// LDPRecover output on the poisoned estimate.
    pub recovered: Vec<f64>,
}

/// The sharded streaming ingestion engine.
///
/// Holds the cumulative merged state (population truth, genuine and
/// malicious accumulators) plus the epoch trajectory. [`StreamEngine::step`]
/// ingests one epoch: shard deltas are computed in parallel (each from its
/// own derived stream), folded in shard order, and recovery runs on the
/// merged counts. Results are bit-identical for any worker count, and —
/// via [`checkpoint`](self) — across suspend/resume boundaries.
#[derive(Debug, Clone)]
pub struct StreamEngine {
    spec: StreamSpec,
    protocol: AnyProtocol,
    next_epoch: usize,
    true_counts: Vec<u64>,
    genuine: CountAccumulator,
    malicious: CountAccumulator,
    window: WindowState,
    trajectory: Vec<EpochPoint>,
}

impl PartialEq for StreamEngine {
    /// State equality. The protocol instance is excluded: it is rebuilt
    /// deterministically from `(spec.protocol, spec.epsilon, domain)`, so
    /// it carries no information beyond the spec.
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.next_epoch == other.next_epoch
            && self.true_counts == other.true_counts
            && self.genuine == other.genuine
            && self.malicious == other.malicious
            && self.window == other.window
            && self.trajectory == other.trajectory
    }
}

impl StreamEngine {
    /// Creates an engine at epoch 0 (nothing ingested yet).
    ///
    /// # Errors
    /// Propagates spec validation and protocol construction.
    pub fn new(spec: StreamSpec) -> Result<Self> {
        spec.validate()?;
        let domain = spec.domain();
        let protocol = spec.protocol.build(spec.epsilon, domain)?;
        Ok(Self {
            spec,
            protocol,
            next_epoch: 0,
            true_counts: vec![0; domain.size()],
            genuine: CountAccumulator::new(domain),
            malicious: CountAccumulator::new(domain),
            window: WindowState::new(spec.window, domain.size()),
            trajectory: Vec::new(),
        })
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// Epochs ingested so far.
    pub fn epochs_done(&self) -> usize {
        self.next_epoch
    }

    /// Whether the planned stream length has been reached.
    pub fn is_complete(&self) -> bool {
        self.next_epoch >= self.spec.epochs
    }

    /// The cumulative genuine accumulator.
    pub fn genuine(&self) -> &CountAccumulator {
        &self.genuine
    }

    /// The cumulative malicious accumulator.
    pub fn malicious(&self) -> &CountAccumulator {
        &self.malicious
    }

    /// The merged poisoned accumulator (genuine + malicious).
    pub fn poisoned(&self) -> CountAccumulator {
        let mut poisoned = self.genuine.clone();
        poisoned.merge(&self.malicious);
        poisoned
    }

    /// The cumulative realized population histogram (ground truth).
    pub fn true_counts(&self) -> &[u64] {
        &self.true_counts
    }

    /// The trajectory captured so far, one point per ingested epoch.
    pub fn trajectory(&self) -> &[EpochPoint] {
        &self.trajectory
    }

    /// Ingests one epoch: shard deltas in parallel, deterministic fold,
    /// recovery at the boundary. Returns the new trajectory point.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when the stream is already complete;
    /// otherwise propagates delta computation and recovery failures.
    pub fn step(&mut self) -> Result<EpochPoint> {
        if self.is_complete() {
            return Err(LdpError::invalid(format!(
                "stream is complete ({} epochs)",
                self.spec.epochs
            )));
        }
        let epoch = self.next_epoch;
        let spec = self.spec;
        let deltas = map_trials(spec.shards, thread_count(spec.shards), |shard| {
            shard_epoch_delta(&spec, shard, epoch)
        })?;
        let tagged: Vec<(usize, ShardDelta)> = deltas.into_iter().enumerate().collect();
        self.apply_epoch_deltas(epoch, &tagged)
    }

    /// Folds one complete epoch of shard deltas — however they were
    /// computed, in whatever order they arrived — into the engine and
    /// runs boundary recovery. This is the merge half of [`Self::step`],
    /// shared with the multi-process [`coordinator`]: because the fold is
    /// exact element-wise `u64` addition (the [`CountAccumulator`] merge
    /// monoid), any arrival order produces bit-identical state.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when the stream is complete,
    /// `epoch` is not the next epoch, or `deltas` is not exactly one
    /// delta per shard; otherwise propagates recovery failures.
    pub fn apply_epoch_deltas(
        &mut self,
        epoch: usize,
        deltas: &[(usize, ShardDelta)],
    ) -> Result<EpochPoint> {
        if self.is_complete() {
            return Err(LdpError::invalid(format!(
                "stream is complete ({} epochs)",
                self.spec.epochs
            )));
        }
        if epoch != self.next_epoch {
            return Err(LdpError::invalid(format!(
                "epoch {epoch} out of order (engine expects {})",
                self.next_epoch
            )));
        }
        let domain_size = self.spec.domain().size();
        let mut seen = vec![false; self.spec.shards];
        for (shard, delta) in deltas {
            if *shard >= self.spec.shards || seen[*shard] {
                return Err(LdpError::invalid(format!(
                    "epoch {epoch}: shard {shard} is out of range or duplicated"
                )));
            }
            if delta.population.len() != domain_size
                || delta.genuine_counts.len() != domain_size
                || delta.malicious_counts.len() != domain_size
            {
                return Err(LdpError::invalid(format!(
                    "epoch {epoch}: shard {shard} delta does not match domain size {domain_size}"
                )));
            }
            seen[*shard] = true;
        }
        if deltas.len() != self.spec.shards {
            return Err(LdpError::invalid(format!(
                "epoch {epoch}: got {} deltas for {} shards",
                deltas.len(),
                self.spec.shards
            )));
        }

        for (_, delta) in deltas {
            for (slot, &c) in self.true_counts.iter_mut().zip(&delta.population) {
                *slot += c;
            }
            self.genuine.merge(&CountAccumulator::from_parts(
                delta.genuine_counts.clone(),
                delta.genuine_users,
            ));
            self.malicious.merge(&CountAccumulator::from_parts(
                delta.malicious_counts.clone(),
                delta.malicious_users,
            ));
        }
        let epoch_agg = EpochAggregate::from_deltas(
            domain_size,
            &deltas.iter().map(|(_, d)| d).collect::<Vec<_>>(),
        );
        self.window.absorb(self.spec.window, epoch_agg)?;
        self.next_epoch += 1;

        let snapshot = self.recovery_snapshot()?;
        let point = EpochPoint {
            epoch,
            genuine_users: self.genuine.report_count(),
            malicious_users: self.malicious.report_count(),
            reports_seen: self.genuine.report_count() + self.malicious.report_count(),
            mse_before: mse(&snapshot.poisoned_estimate, &snapshot.truth),
            mse_recovered: mse(&snapshot.recovered, &snapshot.truth),
            mse_genuine: mse(&snapshot.genuine_estimate, &snapshot.truth),
        };
        self.trajectory.push(point);
        Ok(point)
    }

    /// Runs every remaining epoch.
    ///
    /// # Errors
    /// Propagates the first failing [`StreamEngine::step`].
    pub fn run_to_completion(&mut self) -> Result<()> {
        while !self.is_complete() {
            self.step()?;
        }
        Ok(())
    }

    /// Debiases and recovers the current merged state (on demand; pure in
    /// the accumulated counts). Recovery runs the `recover` defense arm
    /// on a count-only [`ArmContext`] — exactly debias-then-recover, the
    /// historical `recover_from_counts` path bit for bit. In a windowed
    /// mode ([`WindowMode::Sliding`] / [`WindowMode::Decay`]) every
    /// vector is computed over the windowed state instead of the
    /// cumulative one; the debias map is linear in `(count, reports)`,
    /// so the float-count path is the exact windowed estimator.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] before the first epoch (or when the
    /// window holds no genuine mass); otherwise propagates estimation /
    /// recovery failures.
    pub fn recovery_snapshot(&self) -> Result<RecoverySnapshot> {
        let (truth, genuine_estimate, poisoned_estimate) = self.current_estimates()?;
        let recovered = self.recover_estimate(&poisoned_estimate)?;
        Ok(RecoverySnapshot {
            truth,
            genuine_estimate,
            poisoned_estimate,
            recovered,
        })
    }

    /// `(truth, genuine_estimate, poisoned_estimate)` of the state the
    /// snapshot reads — cumulative integer path, or the windowed float
    /// path when the spec runs a window.
    fn current_estimates(&self) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>)> {
        let params = self.protocol.params();
        let Some(agg) = self.window.aggregate(self.spec.domain().size()) else {
            let total: u64 = self.true_counts.iter().sum();
            if total == 0 {
                return Err(LdpError::EmptyInput("stream state (no epochs ingested)"));
            }
            let truth: Vec<f64> = self
                .true_counts
                .iter()
                .map(|&c| c as f64 / total as f64)
                .collect();
            let genuine_estimate = self.genuine.frequencies(params)?;
            let poisoned = self.poisoned();
            let poisoned_estimate = poisoned.frequencies(params)?;
            return Ok((truth, genuine_estimate, poisoned_estimate));
        };
        let total: f64 = agg.truth.iter().sum();
        if total <= 0.0 || total.is_nan() {
            return Err(LdpError::EmptyInput("windowed stream state (empty window)"));
        }
        let truth: Vec<f64> = agg.truth.iter().map(|&c| c / total).collect();
        let genuine_estimate = debias_window(params, &agg.genuine_counts, agg.genuine_reports)?;
        let poisoned_counts: Vec<f64> = agg
            .genuine_counts
            .iter()
            .zip(&agg.malicious_counts)
            .map(|(&g, &m)| g + m)
            .collect();
        let poisoned_estimate = debias_window(
            params,
            &poisoned_counts,
            agg.genuine_reports + agg.malicious_reports,
        )?;
        Ok((truth, genuine_estimate, poisoned_estimate))
    }

    /// Runs the recover arm on a poisoned estimate (deterministic; the
    /// RNG stream handed to the arm is inert).
    fn recover_estimate(&self, poisoned_estimate: &[f64]) -> Result<Vec<f64>> {
        let params = self.protocol.params();
        let ctx = ArmContext::new(poisoned_estimate, params, self.spec.eta);
        let mut rng = rng_from_seed(derive_seed2(self.spec.seed, ARM_SNAPSHOT_SALT, 0));
        match RecoverArm.run(&ctx, &mut rng)? {
            ArmOutcome::Outputs(mut outputs) => Ok(outputs.swap_remove(0).1.frequencies),
            ArmOutcome::Degenerate { reason } => Err(LdpError::invalid(format!(
                "the recover arm cannot degenerate, but reported: {reason}"
            ))),
        }
    }

    /// The engine's windowed state (cumulative mode keeps none) — read
    /// by the checkpoint layer.
    pub fn window_state(&self) -> &WindowState {
        &self.window
    }

    /// Runs an arbitrary *count-only* arm set on the current merged state
    /// — the streaming face of the open defense-arm registry. Eligibility
    /// is decided by each arm's declared requirements: streaming never
    /// materializes per-user reports, so a set containing a
    /// report-consuming arm (detection, k-means) is rejected up front.
    /// Partial-knowledge arms get targets identified online via the
    /// paper's top-k-increase rule, with the cumulative genuine-only
    /// estimate standing in for historical data; arms that degenerate
    /// (e.g. the star arm on a clean stream) are skipped.
    ///
    /// Pure in the accumulated counts, so resumed and uninterrupted runs
    /// produce identical snapshots.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] before the first epoch;
    /// [`LdpError::InvalidParameter`] for report-consuming arms;
    /// otherwise propagates arm failures.
    pub fn arm_snapshot(&self, arms: &ArmSet) -> Result<Vec<(String, ArmOutput)>> {
        for &kind in arms.kinds() {
            if kind.requirements().needs_reports {
                return Err(LdpError::invalid(format!(
                    "arm '{kind}' consumes per-user reports; the streaming engine \
                     aggregates counts only (count-only arms: {})",
                    ldprecover::ArmKind::ALL
                        .into_iter()
                        .filter(|k| !k.requirements().needs_reports)
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        let params = self.protocol.params();
        let (_truth, genuine_estimate, poisoned_estimate) = self.current_estimates()?;
        let targets: Option<Vec<usize>> =
            if arms.needs_targets() && self.malicious.report_count() > 0 {
                top_k_increase(&poisoned_estimate, &genuine_estimate, STREAM_STAR_TOP_K).ok()
            } else {
                None
            };
        let mut ctx = ArmContext::new(&poisoned_estimate, params, self.spec.eta)
            .with_protocol(&self.protocol);
        if let Some(targets) = &targets {
            ctx = ctx.with_targets(targets);
        }
        let mut rng = rng_from_seed(derive_seed2(
            self.spec.seed,
            ARM_SNAPSHOT_SALT,
            self.next_epoch as u64,
        ));
        let mut outputs = Vec::new();
        for arm in arms.build(&KMeansDefense::default()) {
            match arm.run(&ctx, &mut rng)? {
                ArmOutcome::Outputs(named) => outputs.extend(named),
                ArmOutcome::Degenerate { .. } => {}
            }
        }
        Ok(outputs)
    }

    /// The run's JSON report: spec, trajectory, and the final recovery
    /// snapshot (`null` before the first epoch). A pure function of the
    /// engine state, so an uninterrupted run and a suspend/resume run emit
    /// byte-identical reports.
    ///
    /// # Errors
    /// Propagates [`StreamEngine::recovery_snapshot`] once epochs exist.
    pub fn report(&self) -> Result<Json> {
        // Before the first epoch there is no estimate to snapshot; the
        // report stays total (the CLI may emit it for a 0-epoch run) with
        // an explicit `null` final block.
        let final_block = if self.next_epoch == 0 {
            Json::Null
        } else {
            let snapshot = self.recovery_snapshot()?;
            let floats = |v: &[f64]| Json::Arr(v.iter().map(|&x| Json::Num(x)).collect());
            Json::Obj(vec![
                (
                    "reports_seen".into(),
                    Json::Num((self.genuine.report_count() + self.malicious.report_count()) as f64),
                ),
                ("recovered".into(), floats(&snapshot.recovered)),
                (
                    "poisoned_estimate".into(),
                    floats(&snapshot.poisoned_estimate),
                ),
            ])
        };
        let trajectory = self
            .trajectory
            .iter()
            .map(checkpoint::point_to_json)
            .collect();
        Ok(Json::Obj(vec![
            ("stream".into(), checkpoint::spec_to_json(&self.spec)),
            ("epochs_done".into(), Json::Num(self.next_epoch as f64)),
            ("trajectory".into(), Json::Arr(trajectory)),
            ("final".into(), final_block),
        ]))
    }
}

/// Debiases windowed float support counts into frequency estimates —
/// the [`PureParams::debias_frequencies`](ldp_protocols) map with the
/// integer counts generalized to window mass (exact for sliding windows,
/// the precise geometric mixture for decay).
fn debias_window(
    params: ldp_protocols::PureParams,
    counts: &[f64],
    reports: f64,
) -> Result<Vec<f64>> {
    if !(reports.is_finite() && reports > 0.0) {
        return Err(LdpError::EmptyInput("windowed reports (no report mass)"));
    }
    Ok(counts
        .iter()
        .map(|&c| params.debias_count(c, reports) / reports)
        .collect())
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// A fast-but-alive spec shared by the stream unit tests.
    pub(crate) fn tiny_spec() -> StreamSpec {
        StreamSpec {
            dataset: DatasetKind::Ipums,
            protocol: ProtocolKind::Grr,
            epsilon: 0.5,
            attack: Some(AttackKind::Adaptive),
            beta: 0.05,
            eta: 0.2,
            shards: 3,
            epochs: 2,
            users_per_epoch: 400,
            seed: 0xFEED,
            window: WindowMode::Cumulative,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::tiny_spec;
    use super::*;

    #[test]
    fn validation_rejects_malformed_specs() {
        assert!(tiny_spec().validate().is_ok());
        for mutate in [
            |s: &mut StreamSpec| s.epsilon = 0.0,
            |s: &mut StreamSpec| s.beta = 1.0,
            |s: &mut StreamSpec| s.eta = -0.1,
            |s: &mut StreamSpec| s.shards = 0,
            |s: &mut StreamSpec| s.epochs = 0,
            |s: &mut StreamSpec| s.users_per_epoch = 2, // < shards
            |s: &mut StreamSpec| s.attack = None,       // beta stays 0.05
        ] {
            let mut s = tiny_spec();
            mutate(&mut s);
            assert!(s.validate().is_err(), "{s:?}");
        }
        let mut clean = tiny_spec();
        clean.attack = None;
        clean.beta = 0.0;
        assert!(clean.validate().is_ok());
    }

    #[test]
    fn shard_split_covers_every_user_exactly_once() {
        for (users, shards) in [(400, 3), (7, 7), (100, 1), (11, 4)] {
            let mut spec = tiny_spec();
            spec.users_per_epoch = users;
            spec.shards = shards;
            let total: usize = (0..shards).map(|s| spec.shard_users(s)).sum();
            assert_eq!(total, users, "{users} users over {shards} shards");
            let min = (0..shards).map(|s| spec.shard_users(s)).min().unwrap();
            let max = (0..shards).map(|s| spec.shard_users(s)).max().unwrap();
            assert!(max - min <= 1, "split must be even");
            assert!(min >= 1, "every shard ingests at least one user");
        }
    }

    #[test]
    fn deltas_are_deterministic_and_distinct_across_the_grid() {
        let spec = tiny_spec();
        let a = shard_epoch_delta(&spec, 1, 0).unwrap();
        let b = shard_epoch_delta(&spec, 1, 0).unwrap();
        assert_eq!(a, b, "same cell, same delta");
        let other_shard = shard_epoch_delta(&spec, 2, 0).unwrap();
        let other_epoch = shard_epoch_delta(&spec, 1, 1).unwrap();
        assert_ne!(a.genuine_counts, other_shard.genuine_counts);
        assert_ne!(a.genuine_counts, other_epoch.genuine_counts);
        assert!(shard_epoch_delta(&spec, 99, 0).is_err(), "shard bounds");
    }

    #[test]
    fn engine_runs_and_tracks_the_trajectory() {
        let spec = tiny_spec();
        let mut engine = StreamEngine::new(spec).unwrap();
        assert!(engine.recovery_snapshot().is_err(), "nothing ingested yet");
        let empty_report = engine.report().unwrap();
        assert_eq!(
            empty_report.get("final"),
            Some(&ldp_common::Json::Null),
            "0-epoch report carries an explicit null final block"
        );
        let p0 = engine.step().unwrap();
        assert_eq!(p0.epoch, 0);
        assert_eq!(p0.genuine_users, 400);
        assert!(p0.malicious_users > 0);
        assert_eq!(p0.reports_seen, p0.genuine_users + p0.malicious_users);
        let p1 = engine.step().unwrap();
        assert_eq!(p1.genuine_users, 800);
        assert!(engine.is_complete());
        assert!(engine.step().is_err(), "stream horizon reached");
        assert_eq!(engine.trajectory().len(), 2);
        // Cumulative state is consistent.
        assert_eq!(
            engine.true_counts().iter().sum::<u64>(),
            engine.genuine().report_count() as u64
        );
        let snapshot = engine.recovery_snapshot().unwrap();
        assert_eq!(snapshot.recovered.len(), spec.domain().size());
        assert!(ldp_common::vecmath::is_probability_vector(
            &snapshot.recovered,
            1e-9
        ));
    }

    #[test]
    fn online_recovery_beats_the_poisoned_estimate() {
        // The headline claim, online: by the final epoch the recovered
        // trajectory sits below the poisoned one.
        let mut spec = tiny_spec();
        spec.users_per_epoch = 1500;
        spec.epochs = 3;
        let mut engine = StreamEngine::new(spec).unwrap();
        engine.run_to_completion().unwrap();
        let last = engine.trajectory().last().unwrap();
        assert!(
            last.mse_recovered < last.mse_before,
            "recovered {} vs poisoned {}",
            last.mse_recovered,
            last.mse_before
        );
    }

    #[test]
    fn clean_streams_carry_no_malicious_state() {
        let mut spec = tiny_spec();
        spec.attack = None;
        spec.beta = 0.0;
        spec.epochs = 1;
        let mut engine = StreamEngine::new(spec).unwrap();
        engine.step().unwrap();
        assert_eq!(engine.malicious().report_count(), 0);
        assert!(engine.malicious().counts().iter().all(|&c| c == 0));
        let snapshot = engine.recovery_snapshot().unwrap();
        assert_eq!(snapshot.genuine_estimate, snapshot.poisoned_estimate);
    }

    #[test]
    fn arm_snapshot_runs_count_only_arms_and_rejects_report_arms() {
        use ldprecover::ArmKind;
        let mut engine = StreamEngine::new(tiny_spec()).unwrap();
        assert!(
            engine.arm_snapshot(&ArmSet::default()).is_err(),
            "nothing ingested yet"
        );
        engine.run_to_completion().unwrap();

        // The recover arm through the snapshot API is bit-identical to the
        // trajectory's recovery path.
        let outputs = engine
            .arm_snapshot(&ArmSet::parse("recover,recover-star,norm-sub,base-cut").unwrap())
            .unwrap();
        let keys: Vec<&str> = outputs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["recover", "star", "norm_sub", "base_cut"]);
        let snapshot = engine.recovery_snapshot().unwrap();
        assert_eq!(outputs[0].1.frequencies, snapshot.recovered);
        for (key, output) in &outputs {
            assert!(
                ldp_common::vecmath::is_probability_vector(&output.frequencies, 1e-9),
                "{key}"
            );
        }

        // Report-consuming arms are ineligible by declared requirement.
        for arms in ["detection", "kmeans", "recover-km"] {
            let err = engine
                .arm_snapshot(&ArmSet::parse(arms).unwrap())
                .unwrap_err()
                .to_string();
            assert!(err.contains("counts only"), "{arms}: {err}");
        }

        // A clean stream degenerates (skips) the star arm instead of failing.
        let mut clean_spec = tiny_spec();
        clean_spec.attack = None;
        clean_spec.beta = 0.0;
        let mut clean = StreamEngine::new(clean_spec).unwrap();
        clean.run_to_completion().unwrap();
        let outputs = clean
            .arm_snapshot(&ArmSet::new([ArmKind::Recover, ArmKind::RecoverStar]))
            .unwrap();
        let keys: Vec<&str> = outputs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["recover"], "star skipped on a clean stream");
    }

    #[test]
    fn reports_are_a_pure_function_of_state() {
        let spec = tiny_spec();
        let mut a = StreamEngine::new(spec).unwrap();
        let mut b = StreamEngine::new(spec).unwrap();
        a.run_to_completion().unwrap();
        b.step().unwrap();
        b.step().unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.report().unwrap().render(),
            b.report().unwrap().render(),
            "identical state must emit identical bytes"
        );
    }

    #[test]
    fn out_of_order_delta_application_is_bit_identical() {
        // The distributed coordinator folds deltas in arrival order; the
        // merge monoid promises any permutation lands on the same bits.
        let spec = tiny_spec();
        let mut stepped = StreamEngine::new(spec).unwrap();
        stepped.run_to_completion().unwrap();

        let mut reordered = StreamEngine::new(spec).unwrap();
        for epoch in 0..spec.epochs {
            let mut tagged: Vec<(usize, ShardDelta)> = (0..spec.shards)
                .map(|s| (s, shard_epoch_delta(&spec, s, epoch).unwrap()))
                .collect();
            tagged.reverse();
            if epoch % 2 == 1 {
                tagged.swap(0, 1); // a second, different permutation
            }
            reordered.apply_epoch_deltas(epoch, &tagged).unwrap();
        }
        assert_eq!(stepped, reordered, "merged state is order-independent");
        assert_eq!(
            stepped.report().unwrap().render(),
            reordered.report().unwrap().render(),
            "and so are the emitted bytes"
        );
    }

    #[test]
    fn apply_epoch_deltas_rejects_malformed_batches() {
        let spec = tiny_spec();
        let deltas: Vec<(usize, ShardDelta)> = (0..spec.shards)
            .map(|s| (s, shard_epoch_delta(&spec, s, 0).unwrap()))
            .collect();
        // Wrong epoch cursor.
        let mut engine = StreamEngine::new(spec).unwrap();
        assert!(engine.apply_epoch_deltas(1, &deltas).is_err());
        // Missing shard.
        assert!(engine.apply_epoch_deltas(0, &deltas[..2]).is_err());
        // Duplicated shard.
        let mut dup = deltas.clone();
        dup[1] = dup[0].clone();
        assert!(engine.apply_epoch_deltas(0, &dup).is_err());
        // Out-of-range shard index.
        let mut oob = deltas.clone();
        oob[2].0 = spec.shards + 1;
        assert!(engine.apply_epoch_deltas(0, &oob).is_err());
        // Domain-size mismatch in a delta vector.
        let mut torn = deltas.clone();
        torn[0].1.genuine_counts.pop();
        assert!(engine.apply_epoch_deltas(0, &torn).is_err());
        // The engine did not advance through any of the rejections.
        assert_eq!(engine.epochs_done(), 0);
        assert!(engine.apply_epoch_deltas(0, &deltas).is_ok());
        assert_eq!(engine.epochs_done(), 1);
    }

    #[test]
    fn sliding_window_spanning_the_stream_matches_cumulative() {
        // A sliding window at least as long as the stream holds exactly
        // the cumulative counts (integer sums represented exactly in
        // f64), so the windowed float path must land on the same bits.
        let cumulative_spec = tiny_spec();
        let mut windowed_spec = cumulative_spec;
        windowed_spec.window = WindowMode::Sliding(cumulative_spec.epochs);
        let mut cumulative = StreamEngine::new(cumulative_spec).unwrap();
        let mut windowed = StreamEngine::new(windowed_spec).unwrap();
        cumulative.run_to_completion().unwrap();
        windowed.run_to_completion().unwrap();
        let a = cumulative.recovery_snapshot().unwrap();
        let b = windowed.recovery_snapshot().unwrap();
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.genuine_estimate, b.genuine_estimate);
        assert_eq!(a.poisoned_estimate, b.poisoned_estimate);
        assert_eq!(a.recovered, b.recovered);
        assert_eq!(cumulative.trajectory(), windowed.trajectory());
    }

    #[test]
    fn short_windows_forget_and_decay_discounts_old_epochs() {
        // sliding:1 reads only the newest epoch: its final snapshot is
        // the fresh single-epoch engine's, while the cumulative engine
        // (double the reports) disagrees.
        let mut spec = tiny_spec();
        spec.window = WindowMode::Sliding(1);
        let mut sliding = StreamEngine::new(spec).unwrap();
        sliding.run_to_completion().unwrap();
        let windowed = sliding.recovery_snapshot().unwrap();
        let mut cumulative_spec = spec;
        cumulative_spec.window = WindowMode::Cumulative;
        let mut cumulative = StreamEngine::new(cumulative_spec).unwrap();
        cumulative.run_to_completion().unwrap();
        assert_ne!(
            windowed.genuine_estimate,
            cumulative.recovery_snapshot().unwrap().genuine_estimate,
            "a 1-epoch window must not see epoch 0"
        );
        assert!(ldp_common::vecmath::is_probability_vector(
            &windowed.recovered,
            1e-9
        ));

        // Decay absorbs every epoch but discounts the old one.
        let mut decay_spec = spec;
        decay_spec.window = WindowMode::Decay(0.5);
        let mut decayed = StreamEngine::new(decay_spec).unwrap();
        decayed.run_to_completion().unwrap();
        let WindowState::Decay {
            genuine_reports, ..
        } = decayed.window_state()
        else {
            panic!("decay spec keeps decay state");
        };
        // Epoch reports are 400 genuine each: 0.5·400 + 400 = 600.
        assert_eq!(*genuine_reports, 600.0);
        assert!(ldp_common::vecmath::is_probability_vector(
            &decayed.recovery_snapshot().unwrap().recovered,
            1e-9
        ));
    }
}
