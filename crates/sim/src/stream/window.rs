//! Windowed recovery modes for the streaming engine.
//!
//! Cumulative recovery (the PR 4 default) answers "what happened since
//! the stream started"; a long-running aggregator usually wants "what is
//! happening *now*". Two windowed modes share the engine and the
//! distributed coordinator:
//!
//! * **Sliding** — the recovery state is the exact sum of the last `W`
//!   epoch aggregates. Integer counts, so the windowed estimate is
//!   bit-identical to running the batch estimator over those epochs.
//! * **Decay** — exponentially-decaying counts `S_t = λ·S_{t-1} + Δ_t`
//!   (for truth, genuine, and malicious state alike). The debias map
//!   `f̃(v) = (c − n·q)/((p−q)·n)` is linear in `(c, n)`, so running it
//!   on decayed float counts is the exact decayed mixture of the
//!   per-epoch estimates.
//!
//! Window state only affects what the recovery snapshot *reads*; shard
//! delta computation is untouched, so windowed runs remain bit-identical
//! between the in-process engine and the multi-process coordinator, and
//! across checkpoint/resume (decayed `f64` state round-trips bit-for-bit
//! through the shortest-roundtrip JSON layer).

use std::collections::VecDeque;

use ldp_common::{LdpError, Result};

use super::ShardDelta;

/// Which state the epoch-boundary recovery runs on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowMode {
    /// Everything since epoch 0 (the PR 4 behavior; the default).
    Cumulative,
    /// The exact sum of the last `W` epochs.
    Sliding(usize),
    /// Exponentially-decaying counts with per-epoch factor `λ ∈ (0,1)`.
    Decay(f64),
}

impl WindowMode {
    /// Parses the CLI/checkpoint surface form: `cumulative`,
    /// `sliding:<epochs>`, or `decay:<lambda>`.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] on unknown forms or out-of-range
    /// parameters.
    pub fn parse(text: &str) -> Result<Self> {
        let mode = match text.split_once(':') {
            None if text == "cumulative" => WindowMode::Cumulative,
            Some(("sliding", w)) => {
                let w: usize = w
                    .parse()
                    .map_err(|_| LdpError::invalid(format!("sliding window size: {w:?}")))?;
                WindowMode::Sliding(w)
            }
            Some(("decay", l)) => {
                let l: f64 = l
                    .parse()
                    .map_err(|_| LdpError::invalid(format!("decay factor: {l:?}")))?;
                WindowMode::Decay(l)
            }
            _ => {
                return Err(LdpError::invalid(format!(
                    "unknown window mode {text:?} (expected cumulative | sliding:<epochs> | decay:<lambda>)"
                )))
            }
        };
        mode.validate()?;
        Ok(mode)
    }

    /// The surface form [`WindowMode::parse`] accepts; `f64` renders in
    /// shortest-roundtrip decimal so parse(name()) is exact.
    pub fn name(&self) -> String {
        match self {
            WindowMode::Cumulative => "cumulative".to_string(),
            WindowMode::Sliding(w) => format!("sliding:{w}"),
            WindowMode::Decay(l) => format!("decay:{l}"),
        }
    }

    /// Validates the mode's parameter.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for a zero-width sliding window or
    /// a decay factor outside `(0, 1)`.
    pub fn validate(&self) -> Result<()> {
        match *self {
            WindowMode::Cumulative => Ok(()),
            WindowMode::Sliding(w) if w >= 1 => Ok(()),
            WindowMode::Sliding(w) => Err(LdpError::invalid(format!(
                "sliding window must span ≥ 1 epoch, got {w}"
            ))),
            WindowMode::Decay(l) if l.is_finite() && l > 0.0 && l < 1.0 => Ok(()),
            WindowMode::Decay(l) => Err(LdpError::invalid(format!(
                "decay factor must lie in (0, 1), got {l}"
            ))),
        }
    }

    /// Whether this mode is the cumulative default (checkpoint/report
    /// JSON omits the field in that case, keeping PR 4 artifacts stable).
    pub fn is_cumulative(&self) -> bool {
        matches!(self, WindowMode::Cumulative)
    }
}

/// One epoch's merged (all-shard) aggregate — the unit the sliding
/// window retains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochAggregate {
    /// Merged genuine population histogram of the epoch.
    pub truth: Vec<u64>,
    /// Merged genuine support counts.
    pub genuine_counts: Vec<u64>,
    /// Genuine reports in the epoch.
    pub genuine_reports: usize,
    /// Merged malicious support counts.
    pub malicious_counts: Vec<u64>,
    /// Malicious reports in the epoch.
    pub malicious_reports: usize,
}

impl EpochAggregate {
    /// Sums a full epoch's shard deltas (order-independent: exact `u64`
    /// element-wise addition).
    pub fn from_deltas(domain_size: usize, deltas: &[&ShardDelta]) -> Self {
        let mut agg = EpochAggregate {
            truth: vec![0; domain_size],
            genuine_counts: vec![0; domain_size],
            genuine_reports: 0,
            malicious_counts: vec![0; domain_size],
            malicious_reports: 0,
        };
        for delta in deltas {
            for (slot, &c) in agg.truth.iter_mut().zip(&delta.population) {
                *slot += c;
            }
            for (slot, &c) in agg.genuine_counts.iter_mut().zip(&delta.genuine_counts) {
                *slot += c;
            }
            for (slot, &c) in agg.malicious_counts.iter_mut().zip(&delta.malicious_counts) {
                *slot += c;
            }
            agg.genuine_reports += delta.genuine_users;
            agg.malicious_reports += delta.malicious_users;
        }
        agg
    }
}

/// The windowed counterpart of the engine's cumulative accumulators.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowState {
    /// Cumulative mode keeps no extra state.
    Cumulative,
    /// The last (up to) `W` epoch aggregates, oldest first.
    Sliding {
        /// Retained epochs, oldest first; capped at the window span.
        history: VecDeque<EpochAggregate>,
    },
    /// Exponentially-decayed float state `S_t = λ·S_{t-1} + Δ_t`.
    Decay {
        /// Decayed genuine population histogram.
        truth: Vec<f64>,
        /// Decayed genuine support counts.
        genuine_counts: Vec<f64>,
        /// Decayed genuine report mass.
        genuine_reports: f64,
        /// Decayed malicious support counts.
        malicious_counts: Vec<f64>,
        /// Decayed malicious report mass.
        malicious_reports: f64,
    },
}

impl WindowState {
    /// Fresh (nothing-ingested) state for `mode` over a `domain_size`
    /// item domain.
    pub fn new(mode: WindowMode, domain_size: usize) -> Self {
        match mode {
            WindowMode::Cumulative => WindowState::Cumulative,
            WindowMode::Sliding(_) => WindowState::Sliding {
                history: VecDeque::new(),
            },
            WindowMode::Decay(_) => WindowState::Decay {
                truth: vec![0.0; domain_size],
                genuine_counts: vec![0.0; domain_size],
                genuine_reports: 0.0,
                malicious_counts: vec![0.0; domain_size],
                malicious_reports: 0.0,
            },
        }
    }

    /// Folds one finished epoch into the window.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when the state variant disagrees
    /// with `mode` (a corrupt checkpoint would be the only way there).
    pub fn absorb(&mut self, mode: WindowMode, epoch: EpochAggregate) -> Result<()> {
        match (self, mode) {
            (WindowState::Cumulative, WindowMode::Cumulative) => Ok(()),
            (WindowState::Sliding { history }, WindowMode::Sliding(span)) => {
                history.push_back(epoch);
                while history.len() > span {
                    history.pop_front();
                }
                Ok(())
            }
            (
                WindowState::Decay {
                    truth,
                    genuine_counts,
                    genuine_reports,
                    malicious_counts,
                    malicious_reports,
                },
                WindowMode::Decay(lambda),
            ) => {
                let decay_into = |state: &mut [f64], fresh: &[u64]| {
                    for (slot, &c) in state.iter_mut().zip(fresh) {
                        *slot = lambda * *slot + c as f64;
                    }
                };
                decay_into(truth, &epoch.truth);
                decay_into(genuine_counts, &epoch.genuine_counts);
                decay_into(malicious_counts, &epoch.malicious_counts);
                *genuine_reports = lambda * *genuine_reports + epoch.genuine_reports as f64;
                *malicious_reports = lambda * *malicious_reports + epoch.malicious_reports as f64;
                Ok(())
            }
            (state, mode) => Err(LdpError::invalid(format!(
                "window state {state:?} does not match window mode {mode:?}"
            ))),
        }
    }

    /// The windowed float aggregate the recovery snapshot reads, or
    /// `None` in cumulative mode (which keeps the exact integer path).
    pub fn aggregate(&self, domain_size: usize) -> Option<WindowAggregate> {
        match self {
            WindowState::Cumulative => None,
            WindowState::Sliding { history } => {
                let mut agg = WindowAggregate::zero(domain_size);
                for epoch in history {
                    for (slot, &c) in agg.truth.iter_mut().zip(&epoch.truth) {
                        *slot += c as f64;
                    }
                    for (slot, &c) in agg.genuine_counts.iter_mut().zip(&epoch.genuine_counts) {
                        *slot += c as f64;
                    }
                    for (slot, &c) in agg.malicious_counts.iter_mut().zip(&epoch.malicious_counts) {
                        *slot += c as f64;
                    }
                    agg.genuine_reports += epoch.genuine_reports as f64;
                    agg.malicious_reports += epoch.malicious_reports as f64;
                }
                Some(agg)
            }
            WindowState::Decay {
                truth,
                genuine_counts,
                genuine_reports,
                malicious_counts,
                malicious_reports,
            } => Some(WindowAggregate {
                truth: truth.clone(),
                genuine_counts: genuine_counts.clone(),
                genuine_reports: *genuine_reports,
                malicious_counts: malicious_counts.clone(),
                malicious_reports: *malicious_reports,
            }),
        }
    }
}

/// Float view of the windowed state a snapshot debiases.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAggregate {
    /// Windowed genuine population histogram.
    pub truth: Vec<f64>,
    /// Windowed genuine support counts.
    pub genuine_counts: Vec<f64>,
    /// Windowed genuine report mass.
    pub genuine_reports: f64,
    /// Windowed malicious support counts.
    pub malicious_counts: Vec<f64>,
    /// Windowed malicious report mass.
    pub malicious_reports: f64,
}

impl WindowAggregate {
    fn zero(domain_size: usize) -> Self {
        WindowAggregate {
            truth: vec![0.0; domain_size],
            genuine_counts: vec![0.0; domain_size],
            genuine_reports: 0.0,
            malicious_counts: vec![0.0; domain_size],
            malicious_reports: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_name_roundtrip() {
        for text in ["cumulative", "sliding:4", "decay:0.875"] {
            let mode = WindowMode::parse(text).unwrap();
            assert_eq!(mode.name(), text);
            assert_eq!(WindowMode::parse(&mode.name()).unwrap(), mode);
        }
        for bad in [
            "",
            "window",
            "sliding",
            "sliding:0",
            "sliding:x",
            "decay:0",
            "decay:1",
            "decay:nan",
            "decay:-0.5",
            "cumulative:1",
        ] {
            assert!(WindowMode::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    fn fake_epoch(fill: u64, reports: usize) -> EpochAggregate {
        EpochAggregate {
            truth: vec![fill; 3],
            genuine_counts: vec![fill + 1; 3],
            genuine_reports: reports,
            malicious_counts: vec![fill / 2; 3],
            malicious_reports: reports / 4,
        }
    }

    #[test]
    fn sliding_window_retains_exactly_the_span() {
        let mode = WindowMode::Sliding(2);
        let mut state = WindowState::new(mode, 3);
        for fill in 1..=4u64 {
            state
                .absorb(mode, fake_epoch(fill, fill as usize * 10))
                .unwrap();
        }
        let agg = state.aggregate(3).unwrap();
        // Epochs 3 and 4 survive: truth 3+4, reports 30+40.
        assert_eq!(agg.truth, vec![7.0; 3]);
        assert_eq!(agg.genuine_reports, 70.0);
    }

    #[test]
    fn decay_state_is_the_exact_geometric_mixture() {
        let mode = WindowMode::Decay(0.5);
        let mut state = WindowState::new(mode, 3);
        state.absorb(mode, fake_epoch(8, 80)).unwrap();
        state.absorb(mode, fake_epoch(2, 20)).unwrap();
        let agg = state.aggregate(3).unwrap();
        // 0.5·8 + 2 = 6 exactly (powers of two: no rounding).
        assert_eq!(agg.truth, vec![6.0; 3]);
        assert_eq!(agg.genuine_reports, 60.0);
    }

    #[test]
    fn mismatched_state_and_mode_is_rejected() {
        let mut state = WindowState::new(WindowMode::Cumulative, 3);
        assert!(state
            .absorb(WindowMode::Sliding(2), fake_epoch(1, 10))
            .is_err());
        assert!(state.aggregate(3).is_none());
    }
}
