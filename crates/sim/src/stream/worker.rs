//! The shard worker's request loop — the body of the hidden
//! `ldp stream-worker` subcommand.
//!
//! A worker is deliberately stateless between work units: every
//! [`WorkerRequest::Work`] carries the full spec, and the unit's output
//! is a pure function of `(spec, shard, epoch)` via the derived RNG
//! stream layout. That purity is what makes coordinator-side failover
//! trivial — killing a worker loses nothing that a replay of its
//! assigned units cannot reproduce bit-for-bit.
//!
//! The fault-injection harness lives here too: a [`FaultPlan`] makes the
//! worker misbehave on one specific work unit (crash before replying,
//! stall past the coordinator's timeout, or emit a deliberately
//! unparsable frame), so CI exercises every failover path
//! deterministically.

use std::io::{Read, Write};

use ldp_common::{LdpError, Result};

use super::shard_epoch_delta;
use super::transport::{self, WorkerRequest, WorkerResponse};

/// How long a stalled worker sleeps — far past any sane coordinator
/// timeout, so the coordinator's kill-and-replay path is what ends the
/// wait, not the stall.
const STALL_MS: u64 = 30_000;

/// The misbehavior kinds the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Exit without replying (the process dies mid-epoch).
    WorkerCrash,
    /// Sleep past the coordinator's reply timeout before answering.
    Stall,
    /// Reply with a length-prefixed frame whose payload is not JSON.
    CorruptFrame,
}

/// One injected fault: `kind` fires on the `at_unit`-th work unit this
/// worker process receives (0-based), exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Which work unit it happens on.
    pub at_unit: usize,
}

impl FaultPlan {
    /// Parses the CLI surface form: `worker-crash`, `stall`,
    /// `corrupt-frame`, each optionally suffixed `@<unit>` (default
    /// unit 0, the first work unit).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] on unknown kinds or a malformed
    /// unit suffix.
    pub fn parse(text: &str) -> Result<Self> {
        let (kind_text, at_unit) = match text.split_once('@') {
            None => (text, 0),
            Some((k, unit)) => (
                k,
                unit.parse()
                    .map_err(|_| LdpError::invalid(format!("fault unit index: {unit:?}")))?,
            ),
        };
        let kind = match kind_text {
            "worker-crash" => FaultKind::WorkerCrash,
            "stall" => FaultKind::Stall,
            "corrupt-frame" => FaultKind::CorruptFrame,
            other => {
                return Err(LdpError::invalid(format!(
                    "unknown fault {other:?} (expected worker-crash | stall | corrupt-frame, \
                     optionally @<unit>)"
                )))
            }
        };
        Ok(FaultPlan { kind, at_unit })
    }
}

/// Serves work requests until a shutdown frame or a clean EOF.
///
/// Each [`WorkerRequest::Work`] is answered with one response frame: a
/// checkpoint-format delta, or a [`WorkerResponse::Error`] when the unit
/// fails deterministically (so the coordinator aborts instead of
/// retrying a hopeless unit).
///
/// # Errors
/// [`LdpError::InvalidParameter`] on torn/malformed input frames, I/O
/// failure, or an injected crash — the CLI turns any of these into a
/// nonzero exit, which the coordinator observes as worker death.
pub fn run_worker(
    input: &mut impl Read,
    output: &mut impl Write,
    fault: Option<FaultPlan>,
) -> Result<()> {
    let mut units_seen = 0usize;
    loop {
        let Some(frame) = transport::read_frame(input)? else {
            return Ok(());
        };
        match WorkerRequest::from_json(&frame)? {
            WorkerRequest::Shutdown => return Ok(()),
            WorkerRequest::Work { spec, shard, epoch } => {
                let unit = units_seen;
                units_seen += 1;
                if let Some(plan) = fault.filter(|p| p.at_unit == unit) {
                    match plan.kind {
                        FaultKind::WorkerCrash => {
                            return Err(LdpError::invalid(
                                "injected fault: worker-crash (dying without a reply)",
                            ));
                        }
                        FaultKind::Stall => {
                            std::thread::sleep(std::time::Duration::from_millis(STALL_MS));
                        }
                        FaultKind::CorruptFrame => {
                            transport::write_raw_frame(output, b"this is not json {{{")?;
                            continue;
                        }
                    }
                }
                let response = match shard_epoch_delta(&spec, shard, epoch) {
                    Ok(delta) => WorkerResponse::Delta {
                        shard,
                        epoch,
                        delta,
                    },
                    Err(e) => WorkerResponse::Error {
                        message: e.to_string(),
                    },
                };
                transport::write_frame(output, &response.to_json())?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::tests_support::tiny_spec;

    fn wire_with(requests: &[WorkerRequest]) -> Vec<u8> {
        let mut wire = Vec::new();
        for r in requests {
            transport::write_frame(&mut wire, &r.to_json()).unwrap();
        }
        wire
    }

    #[test]
    fn fault_plans_parse_their_surface_forms() {
        assert_eq!(
            FaultPlan::parse("worker-crash").unwrap(),
            FaultPlan {
                kind: FaultKind::WorkerCrash,
                at_unit: 0
            }
        );
        assert_eq!(
            FaultPlan::parse("corrupt-frame@3").unwrap(),
            FaultPlan {
                kind: FaultKind::CorruptFrame,
                at_unit: 3
            }
        );
        for bad in ["", "crash", "stall@x", "worker-crash@-1"] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn worker_answers_work_units_and_honors_shutdown() {
        let spec = tiny_spec();
        let wire = wire_with(&[
            WorkerRequest::Work {
                spec,
                shard: 0,
                epoch: 0,
            },
            WorkerRequest::Shutdown,
            // Anything after shutdown must never be read.
            WorkerRequest::Work {
                spec,
                shard: 1,
                epoch: 0,
            },
        ]);
        let mut out = Vec::new();
        run_worker(&mut wire.as_slice(), &mut out, None).unwrap();
        let mut reader = out.as_slice();
        let reply = transport::read_frame(&mut reader).unwrap().unwrap();
        let parsed = WorkerResponse::from_json(&reply, spec.domain().size()).unwrap();
        let expected = crate::stream::shard_epoch_delta(&spec, 0, 0).unwrap();
        assert_eq!(
            parsed,
            WorkerResponse::Delta {
                shard: 0,
                epoch: 0,
                delta: expected
            },
            "the wire reply is the bit-exact in-process delta"
        );
        assert_eq!(
            transport::read_frame(&mut reader).unwrap(),
            None,
            "exactly one reply; nothing served past shutdown"
        );
    }

    #[test]
    fn worker_reports_deterministic_failures_as_error_frames() {
        let spec = tiny_spec();
        let wire = wire_with(&[WorkerRequest::Work {
            spec,
            shard: spec.shards + 10, // out of range: deterministic failure
            epoch: 0,
        }]);
        let mut out = Vec::new();
        run_worker(&mut wire.as_slice(), &mut out, None).unwrap();
        let reply = transport::read_frame(&mut out.as_slice()).unwrap().unwrap();
        match WorkerResponse::from_json(&reply, spec.domain().size()).unwrap() {
            WorkerResponse::Error { message } => {
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    #[test]
    fn injected_crash_kills_the_loop_before_the_reply() {
        let spec = tiny_spec();
        let wire = wire_with(&[WorkerRequest::Work {
            spec,
            shard: 0,
            epoch: 0,
        }]);
        let mut out = Vec::new();
        let err = run_worker(
            &mut wire.as_slice(),
            &mut out,
            Some(FaultPlan {
                kind: FaultKind::WorkerCrash,
                at_unit: 0,
            }),
        )
        .unwrap_err();
        assert!(err.to_string().contains("worker-crash"));
        assert!(out.is_empty(), "no reply frame before the crash");
    }

    #[test]
    fn injected_corrupt_frame_is_unparsable_then_service_resumes() {
        let spec = tiny_spec();
        let wire = wire_with(&[
            WorkerRequest::Work {
                spec,
                shard: 0,
                epoch: 0,
            },
            WorkerRequest::Work {
                spec,
                shard: 1,
                epoch: 0,
            },
        ]);
        let mut out = Vec::new();
        run_worker(
            &mut wire.as_slice(),
            &mut out,
            Some(FaultPlan {
                kind: FaultKind::CorruptFrame,
                at_unit: 0,
            }),
        )
        .unwrap();
        let mut reader = out.as_slice();
        assert!(
            transport::read_frame(&mut reader).is_err(),
            "first reply is garbage under a valid length prefix"
        );
        // The corrupt frame is length-delimited, so skipping it by hand
        // exposes the healthy second reply (a real coordinator instead
        // kills the worker and replays).
        let skip = 4 + u32::from_be_bytes([out[0], out[1], out[2], out[3]]) as usize;
        let mut rest = &out[skip..];
        let reply = transport::read_frame(&mut rest).unwrap().unwrap();
        assert!(matches!(
            WorkerResponse::from_json(&reply, spec.domain().size()).unwrap(),
            WorkerResponse::Delta { shard: 1, .. }
        ));
    }
}
