//! Checkpoint / restore for the streaming ingestion engine.
//!
//! The engine's randomness is derived per `(shard, epoch)` from the master
//! seed, so a checkpoint never has to serialize RNG state: the complete
//! resumable state is the spec, the epoch cursor, the cumulative count
//! accumulators, and the trajectory. Everything round-trips through the
//! shared JSON value layer ([`ldp_common::json`]) — floats in their
//! shortest round-tripping decimal form (bit-exact on re-parse), the
//! full-width `u64` master seed as a decimal string (JSON numbers are
//! `f64` and lose integers beyond 2⁵³).
//!
//! Restores are strict: the format tag, version, spec ranges, vector
//! shapes, and cross-field invariants (epoch cursor vs trajectory length,
//! population conservation) are all validated, so a truncated or
//! hand-edited checkpoint fails loudly instead of resuming a corrupt
//! stream.

use ldp_attacks::AttackKind;
use ldp_common::float::exactly_zero;
use ldp_common::{Json, LdpError, Result};
use ldp_datasets::DatasetKind;
use ldp_protocols::{CountAccumulator, ProtocolKind};

use super::window::{EpochAggregate, WindowMode, WindowState};
use super::{EpochPoint, ShardDelta, StreamEngine, StreamSpec};

/// Format tag guarding against feeding scenario reports (or arbitrary
/// JSON) to the restore path.
const FORMAT: &str = "ldp-stream-checkpoint";
/// Current checkpoint schema version.
const VERSION: f64 = 1.0;

/// Largest integer a JSON number can carry exactly.
const MAX_SAFE_INT: f64 = 9_007_199_254_740_992.0; // 2^53

pub(crate) fn field<'a>(json: &'a Json, key: &str) -> Result<&'a Json> {
    json.get(key)
        .ok_or_else(|| LdpError::invalid(format!("checkpoint: missing '{key}'")))
}

pub(crate) fn usize_field(json: &Json, key: &str) -> Result<usize> {
    let v = field(json, key)?
        .as_f64()
        .ok_or_else(|| LdpError::invalid(format!("checkpoint: '{key}' not a number")))?;
    if !(v.is_finite() && (0.0..=MAX_SAFE_INT).contains(&v) && exactly_zero(v.fract())) {
        return Err(LdpError::invalid(format!(
            "checkpoint: '{key}' = {v} is not a non-negative integer"
        )));
    }
    Ok(v as usize)
}

pub(crate) fn f64_field(json: &Json, key: &str) -> Result<f64> {
    field(json, key)?
        .as_f64()
        .ok_or_else(|| LdpError::invalid(format!("checkpoint: '{key}' not a number")))
}

pub(crate) fn str_field<'a>(json: &'a Json, key: &str) -> Result<&'a str> {
    field(json, key)?
        .as_str()
        .ok_or_else(|| LdpError::invalid(format!("checkpoint: '{key}' not a string")))
}

pub(crate) fn counts_field(json: &Json, key: &str, len: usize) -> Result<Vec<u64>> {
    let arr = field(json, key)?
        .as_array()
        .ok_or_else(|| LdpError::invalid(format!("checkpoint: '{key}' not an array")))?;
    if arr.len() != len {
        return Err(LdpError::invalid(format!(
            "checkpoint: '{key}' has {} entries, domain needs {len}",
            arr.len()
        )));
    }
    arr.iter()
        .map(|v| {
            let x = v.as_f64().ok_or_else(|| {
                LdpError::invalid(format!("checkpoint: '{key}' entry not a number"))
            })?;
            if !(x.is_finite() && (0.0..=MAX_SAFE_INT).contains(&x) && exactly_zero(x.fract())) {
                return Err(LdpError::invalid(format!(
                    "checkpoint: '{key}' entry {x} is not a count"
                )));
            }
            Ok(x as u64)
        })
        .collect()
}

/// Serializes an attack kind (`None` → `null`).
pub fn attack_to_json(attack: Option<AttackKind>) -> Json {
    let obj = |kind: &str, param: Option<(&str, usize)>| {
        let mut members = vec![("kind".to_string(), Json::Str(kind.to_string()))];
        if let Some((name, value)) = param {
            members.push((name.to_string(), Json::Num(value as f64)));
        }
        Json::Obj(members)
    };
    match attack {
        None => Json::Null,
        Some(AttackKind::Manip { h }) => obj("manip", Some(("h", h))),
        Some(AttackKind::Mga { r }) => obj("mga", Some(("r", r))),
        Some(AttackKind::MgaSampled { r }) => obj("mga-sampled", Some(("r", r))),
        Some(AttackKind::Adaptive) => obj("aa", None),
        Some(AttackKind::AdaptiveCamouflaged) => obj("aa-camo", None),
        Some(AttackKind::MgaIpa { r }) => obj("mga-ipa", Some(("r", r))),
        Some(AttackKind::MultiAdaptive { attackers }) => {
            obj("multi", Some(("attackers", attackers)))
        }
    }
}

/// Parses an attack kind serialized by [`attack_to_json`].
///
/// # Errors
/// [`LdpError::InvalidParameter`] for unknown kinds or missing parameters.
pub fn attack_from_json(json: &Json) -> Result<Option<AttackKind>> {
    if *json == Json::Null {
        return Ok(None);
    }
    let kind = str_field(json, "kind")?;
    let attack = match kind {
        "manip" => AttackKind::Manip {
            h: usize_field(json, "h")?,
        },
        "mga" => AttackKind::Mga {
            r: usize_field(json, "r")?,
        },
        "mga-sampled" => AttackKind::MgaSampled {
            r: usize_field(json, "r")?,
        },
        "aa" => AttackKind::Adaptive,
        "aa-camo" => AttackKind::AdaptiveCamouflaged,
        "mga-ipa" => AttackKind::MgaIpa {
            r: usize_field(json, "r")?,
        },
        "multi" => AttackKind::MultiAdaptive {
            attackers: usize_field(json, "attackers")?,
        },
        other => {
            return Err(LdpError::invalid(format!(
                "checkpoint: unknown attack kind '{other}'"
            )))
        }
    };
    Ok(Some(attack))
}

/// Serializes a stream spec. The `window` member is only emitted for
/// non-cumulative modes, so cumulative checkpoints/reports stay
/// byte-identical to the pre-window (PR 4) schema and old checkpoints
/// keep restoring.
pub fn spec_to_json(spec: &StreamSpec) -> Json {
    let mut members = vec![
        ("dataset".into(), Json::Str(spec.dataset.name().into())),
        ("protocol".into(), Json::Str(spec.protocol.name().into())),
        ("attack".into(), attack_to_json(spec.attack)),
        ("epsilon".into(), Json::Num(spec.epsilon)),
        ("beta".into(), Json::Num(spec.beta)),
        ("eta".into(), Json::Num(spec.eta)),
        ("shards".into(), Json::Num(spec.shards as f64)),
        ("epochs".into(), Json::Num(spec.epochs as f64)),
        (
            "users_per_epoch".into(),
            Json::Num(spec.users_per_epoch as f64),
        ),
        // Full-width u64: decimal string, not a (lossy) JSON number.
        ("seed".into(), Json::Str(spec.seed.to_string())),
    ];
    if !spec.window.is_cumulative() {
        members.push(("window".into(), Json::Str(spec.window.name())));
    }
    Json::Obj(members)
}

/// Parses a stream spec serialized by [`spec_to_json`], then validates it.
///
/// # Errors
/// [`LdpError::InvalidParameter`] for malformed fields or a spec that
/// fails [`StreamSpec::validate`].
pub fn spec_from_json(json: &Json) -> Result<StreamSpec> {
    let seed_text = str_field(json, "seed")?;
    let seed: u64 = seed_text
        .parse()
        .map_err(|_| LdpError::invalid(format!("checkpoint: seed '{seed_text}' not a u64")))?;
    let spec = StreamSpec {
        dataset: DatasetKind::parse(str_field(json, "dataset")?)?,
        protocol: ProtocolKind::parse(str_field(json, "protocol")?)?,
        attack: attack_from_json(field(json, "attack")?)?,
        epsilon: f64_field(json, "epsilon")?,
        beta: f64_field(json, "beta")?,
        eta: f64_field(json, "eta")?,
        shards: usize_field(json, "shards")?,
        epochs: usize_field(json, "epochs")?,
        users_per_epoch: usize_field(json, "users_per_epoch")?,
        seed,
        window: match json.get("window") {
            None => WindowMode::Cumulative,
            Some(_) => WindowMode::parse(str_field(json, "window")?)?,
        },
    };
    spec.validate()?;
    Ok(spec)
}

fn accumulator_to_json(acc: &CountAccumulator) -> Json {
    Json::Obj(vec![
        (
            "counts".into(),
            Json::Arr(acc.counts().iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
        ("reports".into(), Json::Num(acc.report_count() as f64)),
    ])
}

fn accumulator_from_json(json: &Json, len: usize) -> Result<CountAccumulator> {
    let counts = counts_field(json, "counts", len)?;
    let reports = usize_field(json, "reports")?;
    // Zero reports can only ever have accumulated zero support.
    if reports == 0 && counts.iter().any(|&c| c != 0) {
        return Err(LdpError::invalid(
            "checkpoint: accumulator has support counts but zero reports",
        ));
    }
    Ok(CountAccumulator::from_parts(counts, reports))
}

/// Serializes a shard delta — the payload format of the multi-process
/// wire protocol ([`super::transport`]), deliberately identical in shape
/// to the checkpoint's accumulator members so a delta on the wire is a
/// checkpoint fragment.
pub fn delta_to_json(delta: &ShardDelta) -> Json {
    let counts = |v: &[u64]| Json::Arr(v.iter().map(|&c| Json::Num(c as f64)).collect());
    Json::Obj(vec![
        ("population".into(), counts(&delta.population)),
        ("genuine_counts".into(), counts(&delta.genuine_counts)),
        (
            "genuine_users".into(),
            Json::Num(delta.genuine_users as f64),
        ),
        ("malicious_counts".into(), counts(&delta.malicious_counts)),
        (
            "malicious_users".into(),
            Json::Num(delta.malicious_users as f64),
        ),
    ])
}

/// Parses a shard delta serialized by [`delta_to_json`], re-validating
/// shapes against the domain size.
///
/// # Errors
/// [`LdpError::InvalidParameter`] for malformed fields or wrong-length
/// count vectors.
pub fn delta_from_json(json: &Json, domain_size: usize) -> Result<ShardDelta> {
    Ok(ShardDelta {
        population: counts_field(json, "population", domain_size)?,
        genuine_counts: counts_field(json, "genuine_counts", domain_size)?,
        genuine_users: usize_field(json, "genuine_users")?,
        malicious_counts: counts_field(json, "malicious_counts", domain_size)?,
        malicious_users: usize_field(json, "malicious_users")?,
    })
}

fn floats_field(json: &Json, key: &str, len: usize) -> Result<Vec<f64>> {
    let arr = field(json, key)?
        .as_array()
        .ok_or_else(|| LdpError::invalid(format!("checkpoint: '{key}' not an array")))?;
    if arr.len() != len {
        return Err(LdpError::invalid(format!(
            "checkpoint: '{key}' has {} entries, domain needs {len}",
            arr.len()
        )));
    }
    arr.iter()
        .map(|v| {
            let x = v.as_f64().ok_or_else(|| {
                LdpError::invalid(format!("checkpoint: '{key}' entry not a number"))
            })?;
            if !(x.is_finite() && x >= 0.0) {
                return Err(LdpError::invalid(format!(
                    "checkpoint: '{key}' entry {x} is not a non-negative mass"
                )));
            }
            Ok(x)
        })
        .collect()
}

fn nonneg_f64_field(json: &Json, key: &str) -> Result<f64> {
    let x = f64_field(json, key)?;
    if !(x.is_finite() && x >= 0.0) {
        return Err(LdpError::invalid(format!(
            "checkpoint: '{key}' = {x} is not a non-negative mass"
        )));
    }
    Ok(x)
}

fn epoch_aggregate_to_json(epoch: &EpochAggregate) -> Json {
    let counts = |v: &[u64]| Json::Arr(v.iter().map(|&c| Json::Num(c as f64)).collect());
    Json::Obj(vec![
        ("truth".into(), counts(&epoch.truth)),
        ("genuine_counts".into(), counts(&epoch.genuine_counts)),
        (
            "genuine_reports".into(),
            Json::Num(epoch.genuine_reports as f64),
        ),
        ("malicious_counts".into(), counts(&epoch.malicious_counts)),
        (
            "malicious_reports".into(),
            Json::Num(epoch.malicious_reports as f64),
        ),
    ])
}

fn epoch_aggregate_from_json(json: &Json, d: usize) -> Result<EpochAggregate> {
    Ok(EpochAggregate {
        truth: counts_field(json, "truth", d)?,
        genuine_counts: counts_field(json, "genuine_counts", d)?,
        genuine_reports: usize_field(json, "genuine_reports")?,
        malicious_counts: counts_field(json, "malicious_counts", d)?,
        malicious_reports: usize_field(json, "malicious_reports")?,
    })
}

/// Serializes the windowed state (`None` for cumulative mode, which
/// keeps no window state — and no checkpoint member).
fn window_state_to_json(state: &WindowState) -> Option<Json> {
    let floats = |v: &[f64]| Json::Arr(v.iter().map(|&x| Json::Num(x)).collect());
    match state {
        WindowState::Cumulative => None,
        WindowState::Sliding { history } => Some(Json::Obj(vec![
            ("kind".into(), Json::Str("sliding".into())),
            (
                "epochs".into(),
                Json::Arr(history.iter().map(epoch_aggregate_to_json).collect()),
            ),
        ])),
        WindowState::Decay {
            truth,
            genuine_counts,
            genuine_reports,
            malicious_counts,
            malicious_reports,
        } => Some(Json::Obj(vec![
            ("kind".into(), Json::Str("decay".into())),
            ("truth".into(), floats(truth)),
            ("genuine_counts".into(), floats(genuine_counts)),
            ("genuine_reports".into(), Json::Num(*genuine_reports)),
            ("malicious_counts".into(), floats(malicious_counts)),
            ("malicious_reports".into(), Json::Num(*malicious_reports)),
        ])),
    }
}

fn window_state_from_json(
    json: Option<&Json>,
    mode: WindowMode,
    d: usize,
    next_epoch: usize,
) -> Result<WindowState> {
    match (mode, json) {
        (WindowMode::Cumulative, None) => Ok(WindowState::Cumulative),
        (WindowMode::Cumulative, Some(_)) => Err(LdpError::invalid(
            "checkpoint: window_state present but the spec is cumulative",
        )),
        (_, None) => Err(LdpError::invalid(format!(
            "checkpoint: spec window '{}' but no window_state",
            mode.name()
        ))),
        (WindowMode::Sliding(span), Some(json)) => {
            if str_field(json, "kind")? != "sliding" {
                return Err(LdpError::invalid(
                    "checkpoint: window_state kind disagrees with the spec window",
                ));
            }
            let epochs = field(json, "epochs")?
                .as_array()
                .ok_or_else(|| LdpError::invalid("checkpoint: 'epochs' not an array"))?;
            if epochs.len() > span.min(next_epoch) {
                return Err(LdpError::invalid(format!(
                    "checkpoint: sliding window holds {} epochs, at most {} possible",
                    epochs.len(),
                    span.min(next_epoch)
                )));
            }
            let history = epochs
                .iter()
                .map(|e| epoch_aggregate_from_json(e, d))
                .collect::<Result<_>>()?;
            Ok(WindowState::Sliding { history })
        }
        (WindowMode::Decay(_), Some(json)) => {
            if str_field(json, "kind")? != "decay" {
                return Err(LdpError::invalid(
                    "checkpoint: window_state kind disagrees with the spec window",
                ));
            }
            Ok(WindowState::Decay {
                truth: floats_field(json, "truth", d)?,
                genuine_counts: floats_field(json, "genuine_counts", d)?,
                genuine_reports: nonneg_f64_field(json, "genuine_reports")?,
                malicious_counts: floats_field(json, "malicious_counts", d)?,
                malicious_reports: nonneg_f64_field(json, "malicious_reports")?,
            })
        }
    }
}

/// Serializes one trajectory point — shared by the checkpoint and by
/// [`StreamEngine::report`] so the two emits can never drift apart.
pub(super) fn point_to_json(p: &EpochPoint) -> Json {
    Json::Obj(vec![
        ("epoch".into(), Json::Num(p.epoch as f64)),
        ("genuine_users".into(), Json::Num(p.genuine_users as f64)),
        (
            "malicious_users".into(),
            Json::Num(p.malicious_users as f64),
        ),
        ("reports_seen".into(), Json::Num(p.reports_seen as f64)),
        ("mse_before".into(), Json::Num(p.mse_before)),
        ("mse_recovered".into(), Json::Num(p.mse_recovered)),
        ("mse_genuine".into(), Json::Num(p.mse_genuine)),
    ])
}

impl StreamEngine {
    /// Serializes the full resumable state.
    pub fn to_checkpoint(&self) -> Json {
        let trajectory = self.trajectory.iter().map(point_to_json).collect();
        let mut members = vec![
            ("format".into(), Json::Str(FORMAT.into())),
            ("version".into(), Json::Num(VERSION)),
            ("spec".into(), spec_to_json(&self.spec)),
            ("next_epoch".into(), Json::Num(self.next_epoch as f64)),
            (
                "true_counts".into(),
                Json::Arr(
                    self.true_counts
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ),
            ("genuine".into(), accumulator_to_json(&self.genuine)),
            ("malicious".into(), accumulator_to_json(&self.malicious)),
            ("trajectory".into(), Json::Arr(trajectory)),
        ];
        if let Some(window_state) = window_state_to_json(&self.window) {
            members.push(("window_state".into(), window_state));
        }
        Json::Obj(members)
    }

    /// Restores an engine from a checkpoint, re-validating everything.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for wrong format tags, unsupported
    /// versions, malformed fields, shape mismatches, or inconsistent
    /// cross-field state.
    pub fn from_checkpoint(json: &Json) -> Result<StreamEngine> {
        if str_field(json, "format")? != FORMAT {
            return Err(LdpError::invalid(format!(
                "checkpoint: format tag is not '{FORMAT}'"
            )));
        }
        if f64_field(json, "version")? != VERSION {
            return Err(LdpError::invalid(format!(
                "checkpoint: unsupported version (expected {VERSION})"
            )));
        }
        let spec = spec_from_json(field(json, "spec")?)?;
        let d = spec.domain().size();
        let next_epoch = usize_field(json, "next_epoch")?;
        if next_epoch > spec.epochs {
            return Err(LdpError::invalid(format!(
                "checkpoint: next_epoch {next_epoch} beyond the {}-epoch horizon",
                spec.epochs
            )));
        }
        let true_counts = counts_field(json, "true_counts", d)?;
        let genuine = accumulator_from_json(field(json, "genuine")?, d)?;
        let malicious = accumulator_from_json(field(json, "malicious")?, d)?;

        let trajectory_json = field(json, "trajectory")?
            .as_array()
            .ok_or_else(|| LdpError::invalid("checkpoint: 'trajectory' not an array"))?;
        if trajectory_json.len() != next_epoch {
            return Err(LdpError::invalid(format!(
                "checkpoint: {} trajectory points for {next_epoch} ingested epochs",
                trajectory_json.len()
            )));
        }
        let trajectory: Vec<EpochPoint> = trajectory_json
            .iter()
            .map(|p| {
                Ok(EpochPoint {
                    epoch: usize_field(p, "epoch")?,
                    genuine_users: usize_field(p, "genuine_users")?,
                    malicious_users: usize_field(p, "malicious_users")?,
                    reports_seen: usize_field(p, "reports_seen")?,
                    mse_before: f64_field(p, "mse_before")?,
                    mse_recovered: f64_field(p, "mse_recovered")?,
                    mse_genuine: f64_field(p, "mse_genuine")?,
                })
            })
            .collect::<Result<_>>()?;

        // Cross-field invariants: every genuine report corresponds to one
        // population member, and the trajectory's tail matches the
        // accumulated state.
        if true_counts.iter().sum::<u64>() != genuine.report_count() as u64 {
            return Err(LdpError::invalid(
                "checkpoint: population total disagrees with genuine report count",
            ));
        }
        if let Some(last) = trajectory.last() {
            if last.epoch + 1 != next_epoch
                || last.genuine_users != genuine.report_count()
                || last.malicious_users != malicious.report_count()
            {
                return Err(LdpError::invalid(
                    "checkpoint: trajectory tail disagrees with accumulated state",
                ));
            }
        } else if genuine.report_count() != 0 || malicious.report_count() != 0 {
            return Err(LdpError::invalid(
                "checkpoint: reports accumulated but trajectory is empty",
            ));
        }

        let window = window_state_from_json(json.get("window_state"), spec.window, d, next_epoch)?;

        let protocol = spec.protocol.build(spec.epsilon, spec.domain())?;
        Ok(StreamEngine {
            spec,
            protocol,
            next_epoch,
            true_counts,
            genuine,
            malicious,
            window,
            trajectory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::tests_support::tiny_spec;

    #[test]
    fn attack_kinds_roundtrip() {
        for attack in [
            None,
            Some(AttackKind::Manip { h: 4 }),
            Some(AttackKind::Mga { r: 10 }),
            Some(AttackKind::MgaSampled { r: 3 }),
            Some(AttackKind::Adaptive),
            Some(AttackKind::AdaptiveCamouflaged),
            Some(AttackKind::MgaIpa { r: 7 }),
            Some(AttackKind::MultiAdaptive { attackers: 5 }),
        ] {
            let json = attack_to_json(attack);
            let reparsed = Json::parse(&json.render()).unwrap();
            assert_eq!(attack_from_json(&reparsed).unwrap(), attack, "{attack:?}");
        }
        assert!(
            attack_from_json(&Json::Obj(vec![("kind".into(), Json::Str("ddos".into()))])).is_err()
        );
        assert!(
            attack_from_json(&Json::Obj(vec![("kind".into(), Json::Str("mga".into()))])).is_err(),
            "mga without r"
        );
    }

    #[test]
    fn specs_roundtrip_including_full_width_seeds() {
        let mut spec = tiny_spec();
        spec.seed = u64::MAX - 12345; // beyond 2^53: must survive as a string
        let json = Json::parse(&spec_to_json(&spec).render()).unwrap();
        assert_eq!(spec_from_json(&json).unwrap(), spec);
    }

    #[test]
    fn fresh_and_mid_run_engines_roundtrip() {
        let spec = tiny_spec();
        for steps in [0usize, 1, 2] {
            let mut engine = StreamEngine::new(spec).unwrap();
            for _ in 0..steps {
                engine.step().unwrap();
            }
            let json = Json::parse(&engine.to_checkpoint().render()).unwrap();
            let restored = StreamEngine::from_checkpoint(&json).unwrap();
            assert_eq!(restored, engine, "after {steps} steps");
        }
    }

    #[test]
    fn cumulative_checkpoints_omit_window_members_for_compatibility() {
        // PR 4 checkpoints carried no window members; cumulative engines
        // must keep emitting that exact shape so old artifacts and new
        // ones stay interchangeable.
        let engine = StreamEngine::new(tiny_spec()).unwrap();
        let checkpoint = engine.to_checkpoint();
        assert!(checkpoint.get("window_state").is_none());
        assert!(
            spec_to_json(&tiny_spec()).get("window").is_none(),
            "cumulative specs omit the window member"
        );
        // And a windowed spec round-trips through its named member.
        let mut windowed = tiny_spec();
        windowed.window = WindowMode::Decay(0.75);
        let json = Json::parse(&spec_to_json(&windowed).render()).unwrap();
        assert_eq!(json.get("window"), Some(&Json::Str("decay:0.75".into())));
        assert_eq!(spec_from_json(&json).unwrap(), windowed);
    }

    #[test]
    fn windowed_engines_roundtrip_and_resume_bit_identically() {
        for window in [WindowMode::Sliding(1), WindowMode::Decay(0.625)] {
            let mut spec = tiny_spec();
            spec.window = window;
            // Run one epoch, checkpoint, restore, run the second epoch on
            // both; a resumed run must be indistinguishable.
            let mut engine = StreamEngine::new(spec).unwrap();
            engine.step().unwrap();
            let json = Json::parse(&engine.to_checkpoint().render()).unwrap();
            let mut restored = StreamEngine::from_checkpoint(&json).unwrap();
            assert_eq!(restored, engine, "{window:?} state roundtrips");
            engine.step().unwrap();
            restored.step().unwrap();
            assert_eq!(restored, engine, "{window:?} resume is bit-identical");
            assert_eq!(
                restored.report().unwrap().render(),
                engine.report().unwrap().render()
            );
        }
    }

    #[test]
    fn window_state_and_mode_must_agree_on_restore() {
        let mut sliding_spec = tiny_spec();
        sliding_spec.window = WindowMode::Sliding(2);
        let mut sliding = StreamEngine::new(sliding_spec).unwrap();
        sliding.step().unwrap();
        let windowed_json = Json::parse(&sliding.to_checkpoint().render()).unwrap();

        let mut cumulative = StreamEngine::new(tiny_spec()).unwrap();
        cumulative.step().unwrap();
        let cumulative_json = Json::parse(&cumulative.to_checkpoint().render()).unwrap();

        let transplant = |base: &Json, window_state: Option<&Json>, spec_window: Option<&str>| {
            let Json::Obj(members) = base else {
                unreachable!()
            };
            let mut members: Vec<(String, Json)> = members
                .iter()
                .filter(|(k, _)| k != "window_state")
                .cloned()
                .collect();
            if let Some(state) = window_state {
                members.push(("window_state".into(), state.clone()));
            }
            if let Some(mode) = spec_window {
                for (key, value) in &mut members {
                    if key == "spec" {
                        let Json::Obj(spec_members) = value else {
                            unreachable!()
                        };
                        spec_members.retain(|(k, _)| k != "window");
                        spec_members.push(("window".into(), Json::Str(mode.into())));
                    }
                }
            }
            Json::Obj(members)
        };

        // A windowed spec without its state is torn.
        assert!(
            StreamEngine::from_checkpoint(&transplant(&windowed_json, None, None)).is_err(),
            "sliding spec requires window_state"
        );
        // A cumulative spec carrying window state is just as corrupt.
        let state = windowed_json.get("window_state").unwrap();
        assert!(
            StreamEngine::from_checkpoint(&transplant(&cumulative_json, Some(state), None))
                .is_err(),
            "cumulative spec must not carry window_state"
        );
        // Sliding state under a decay spec is a kind mismatch.
        assert!(
            StreamEngine::from_checkpoint(&transplant(
                &windowed_json,
                Some(state),
                Some("decay:0.5")
            ))
            .is_err(),
            "window kind must match the spec's mode"
        );
    }

    #[test]
    fn restore_rejects_corrupted_checkpoints() {
        let mut engine = StreamEngine::new(tiny_spec()).unwrap();
        engine.step().unwrap();
        let good = engine.to_checkpoint();
        assert!(StreamEngine::from_checkpoint(&good).is_ok());

        type Members = Vec<(String, Json)>;
        let corrupt = |f: &dyn Fn(&mut Members)| {
            let Json::Obj(mut members) = good.clone() else {
                unreachable!()
            };
            f(&mut members);
            Json::Obj(members)
        };
        let set = |members: &mut Members, key: &str, value: Json| {
            members
                .iter_mut()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v = value)
                .expect("key present");
        };

        for (label, bad) in [
            (
                "wrong format tag",
                corrupt(&|m| set(m, "format", Json::Str("scenario-report".into()))),
            ),
            (
                "future version",
                corrupt(&|m| set(m, "version", Json::Num(99.0))),
            ),
            ("missing spec", corrupt(&|m| m.retain(|(k, _)| k != "spec"))),
            (
                "cursor beyond horizon",
                corrupt(&|m| set(m, "next_epoch", Json::Num(1e6))),
            ),
            (
                "fractional count",
                corrupt(&|m| set(m, "next_epoch", Json::Num(1.5))),
            ),
            (
                "truncated domain",
                corrupt(&|m| set(m, "true_counts", Json::Arr(vec![Json::Num(1.0)]))),
            ),
            (
                "trajectory length mismatch",
                corrupt(&|m| set(m, "trajectory", Json::Arr(vec![]))),
            ),
        ] {
            assert!(
                StreamEngine::from_checkpoint(&bad).is_err(),
                "accepted checkpoint with {label}"
            );
        }
        assert!(StreamEngine::from_checkpoint(&Json::Num(1.0)).is_err());
    }

    #[test]
    fn phantom_state_without_trajectory_is_rejected() {
        // A fresh-looking checkpoint (next_epoch = 0, empty trajectory)
        // smuggling in accumulated reports or support counts must fail —
        // for the malicious accumulator just like the genuine one.
        let fresh = StreamEngine::new(tiny_spec()).unwrap().to_checkpoint();
        let d = tiny_spec().domain().size();
        for (label, key, value) in [
            (
                "phantom malicious reports",
                "malicious",
                Json::Obj(vec![
                    ("counts".into(), Json::Arr(vec![Json::Num(0.0); d])),
                    ("reports".into(), Json::Num(5.0)),
                ]),
            ),
            (
                "support counts with zero reports",
                "genuine",
                Json::Obj(vec![
                    (
                        "counts".into(),
                        Json::Arr(
                            std::iter::once(Json::Num(3.0))
                                .chain(vec![Json::Num(0.0); d - 1])
                                .collect(),
                        ),
                    ),
                    ("reports".into(), Json::Num(0.0)),
                ]),
            ),
        ] {
            let Json::Obj(mut members) = fresh.clone() else {
                unreachable!()
            };
            members
                .iter_mut()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v = value)
                .expect("key present");
            assert!(
                StreamEngine::from_checkpoint(&Json::Obj(members)).is_err(),
                "accepted checkpoint with {label}"
            );
        }
    }

    #[test]
    fn population_conservation_is_enforced() {
        let mut engine = StreamEngine::new(tiny_spec()).unwrap();
        engine.step().unwrap();
        let Json::Obj(mut members) = engine.to_checkpoint() else {
            unreachable!()
        };
        // Inflate one population cell without touching the report count.
        if let Some((_, Json::Arr(counts))) = members.iter_mut().find(|(k, _)| k == "true_counts") {
            counts[0] = Json::Num(counts[0].as_f64().unwrap() + 1.0);
        }
        assert!(StreamEngine::from_checkpoint(&Json::Obj(members)).is_err());
    }
}
