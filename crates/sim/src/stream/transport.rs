//! Length-prefixed JSON framing — the wire protocol between the
//! streaming [`coordinator`](super::coordinator) and its shard worker
//! processes ([`worker`](super::worker)).
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. The payloads are the checkpoint-format values
//! from [`super::checkpoint`] — a shard delta on the wire is
//! byte-for-byte a checkpoint fragment, so the protocol inherits the
//! checkpoint layer's strict validation and shortest-roundtrip float
//! encoding (the property that makes multi-process runs bit-identical
//! to in-process ones).
//!
//! The reader is deliberately paranoid: a clean EOF *between* frames is
//! an orderly end-of-stream (`Ok(None)`), but EOF inside a prefix or
//! payload, an oversized length, or an unparsable payload are hard
//! errors — the coordinator treats any of them as a worker failure and
//! triggers failover replay.

use std::io::{Read, Write};

use ldp_common::{Json, LdpError, Result};

use super::checkpoint::{self, str_field, usize_field};
use super::{ShardDelta, StreamSpec};

/// Hard ceiling on a frame payload (bytes). Generous for any real delta
/// (a 2¹⁰-item domain delta is a few tens of KiB) while bounding the
/// allocation a corrupt length prefix can demand.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Writes one frame: 4-byte big-endian length, then the rendered JSON.
///
/// # Errors
/// [`LdpError::InvalidParameter`] on oversized payloads or I/O failure.
pub fn write_frame(writer: &mut impl Write, payload: &Json) -> Result<()> {
    let body = payload.render();
    write_raw_frame(writer, body.as_bytes())
}

/// Writes raw bytes under a length prefix — the escape hatch the fault
/// harness uses to put deliberately unparsable payloads on the wire.
///
/// # Errors
/// [`LdpError::InvalidParameter`] on oversized payloads or I/O failure.
pub fn write_raw_frame(writer: &mut impl Write, body: &[u8]) -> Result<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(LdpError::invalid(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte ceiling",
            body.len()
        )));
    }
    let io = |e: std::io::Error| LdpError::invalid(format!("frame write: {e}"));
    writer
        .write_all(&(body.len() as u32).to_be_bytes())
        .map_err(io)?;
    writer.write_all(body).map_err(io)?;
    writer.flush().map_err(io)?;
    Ok(())
}

/// Reads one frame. `Ok(None)` on a clean EOF at a frame boundary;
/// everything else — truncated prefix or payload, oversized length,
/// non-UTF-8 or non-JSON payload — is an error.
///
/// # Errors
/// [`LdpError::InvalidParameter`] for every torn or malformed frame.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Json>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match reader.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(LdpError::invalid(format!(
                    "frame read: EOF inside the length prefix ({got}/4 bytes)"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(LdpError::invalid(format!("frame read: {e}"))),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(LdpError::invalid(format!(
            "frame read: length prefix {len} exceeds the {MAX_FRAME_LEN}-byte ceiling"
        )));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(LdpError::invalid(format!(
                    "frame read: EOF inside the payload ({filled}/{len} bytes)"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(LdpError::invalid(format!("frame read: {e}"))),
        }
    }
    let text = std::str::from_utf8(&body)
        .map_err(|e| LdpError::invalid(format!("frame read: payload not UTF-8: {e}")))?;
    Json::parse(text).map(Some)
}

/// Coordinator → worker message.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerRequest {
    /// Compute the delta of one `(shard, epoch)` cell of `spec`.
    Work {
        /// The full stream spec (the work unit is a pure function of it).
        spec: StreamSpec,
        /// Shard index.
        shard: usize,
        /// Epoch index.
        epoch: usize,
    },
    /// Orderly end of the worker's stream.
    Shutdown,
}

impl WorkerRequest {
    /// Serializes to the wire form.
    pub fn to_json(&self) -> Json {
        match self {
            WorkerRequest::Work { spec, shard, epoch } => Json::Obj(vec![
                ("type".into(), Json::Str("work".into())),
                ("spec".into(), checkpoint::spec_to_json(spec)),
                ("shard".into(), Json::Num(*shard as f64)),
                ("epoch".into(), Json::Num(*epoch as f64)),
            ]),
            WorkerRequest::Shutdown => {
                Json::Obj(vec![("type".into(), Json::Str("shutdown".into()))])
            }
        }
    }

    /// Parses the wire form, re-validating the embedded spec.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for unknown types or malformed
    /// members.
    pub fn from_json(json: &Json) -> Result<Self> {
        match str_field(json, "type")? {
            "work" => Ok(WorkerRequest::Work {
                spec: checkpoint::spec_from_json(checkpoint::field(json, "spec")?)?,
                shard: usize_field(json, "shard")?,
                epoch: usize_field(json, "epoch")?,
            }),
            "shutdown" => Ok(WorkerRequest::Shutdown),
            other => Err(LdpError::invalid(format!(
                "unknown worker request type '{other}'"
            ))),
        }
    }
}

/// Worker → coordinator message.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerResponse {
    /// A finished work unit's delta (checkpoint-format payload).
    Delta {
        /// Shard the delta belongs to.
        shard: usize,
        /// Epoch the delta belongs to.
        epoch: usize,
        /// The shard's epoch contribution.
        delta: ShardDelta,
    },
    /// The work unit failed deterministically (e.g. a spec the worker
    /// rejects); retrying would fail identically, so the coordinator
    /// aborts instead of respawning.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

impl WorkerResponse {
    /// Serializes to the wire form.
    pub fn to_json(&self) -> Json {
        match self {
            WorkerResponse::Delta {
                shard,
                epoch,
                delta,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("delta".into())),
                ("shard".into(), Json::Num(*shard as f64)),
                ("epoch".into(), Json::Num(*epoch as f64)),
                ("delta".into(), checkpoint::delta_to_json(delta)),
            ]),
            WorkerResponse::Error { message } => Json::Obj(vec![
                ("type".into(), Json::Str("error".into())),
                ("message".into(), Json::Str(message.clone())),
            ]),
        }
    }

    /// Parses the wire form; delta shapes are validated against
    /// `domain_size`.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for unknown types or malformed
    /// members.
    pub fn from_json(json: &Json, domain_size: usize) -> Result<Self> {
        match str_field(json, "type")? {
            "delta" => Ok(WorkerResponse::Delta {
                shard: usize_field(json, "shard")?,
                epoch: usize_field(json, "epoch")?,
                delta: checkpoint::delta_from_json(checkpoint::field(json, "delta")?, domain_size)?,
            }),
            "error" => Ok(WorkerResponse::Error {
                message: str_field(json, "message")?.to_string(),
            }),
            other => Err(LdpError::invalid(format!(
                "unknown worker response type '{other}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::shard_epoch_delta;
    use crate::stream::tests_support::tiny_spec;

    #[test]
    fn frames_roundtrip_and_eof_between_frames_is_clean() {
        let mut wire = Vec::new();
        let a = WorkerRequest::Shutdown.to_json();
        let b = WorkerRequest::Work {
            spec: tiny_spec(),
            shard: 1,
            epoch: 0,
        }
        .to_json();
        write_frame(&mut wire, &a).unwrap();
        write_frame(&mut wire, &b).unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(read_frame(&mut reader).unwrap(), Some(a));
        assert_eq!(read_frame(&mut reader).unwrap(), Some(b));
        assert_eq!(read_frame(&mut reader).unwrap(), None, "clean EOF");
    }

    #[test]
    fn torn_and_oversized_frames_are_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Json::Num(1.0)).unwrap();
        for cut in 1..wire.len() {
            let mut reader = &wire[..cut];
            assert!(read_frame(&mut reader).is_err(), "cut at {cut}");
        }
        let mut oversized = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes().to_vec();
        oversized.extend_from_slice(b"x");
        assert!(read_frame(&mut oversized.as_slice()).is_err());
        let mut garbage = 4u32.to_be_bytes().to_vec();
        garbage.extend_from_slice(&[0xff, 0xfe, 0x00, 0x01]);
        assert!(read_frame(&mut garbage.as_slice()).is_err(), "non-UTF-8");
    }

    #[test]
    fn requests_and_responses_roundtrip_the_wire() {
        let spec = tiny_spec();
        let delta = shard_epoch_delta(&spec, 0, 0).unwrap();
        let messages = [
            WorkerRequest::Work {
                spec,
                shard: 2,
                epoch: 1,
            },
            WorkerRequest::Shutdown,
        ];
        for msg in &messages {
            let reparsed = Json::parse(&msg.to_json().render()).unwrap();
            assert_eq!(&WorkerRequest::from_json(&reparsed).unwrap(), msg);
        }
        let d = spec.domain().size();
        for msg in [
            WorkerResponse::Delta {
                shard: 2,
                epoch: 1,
                delta,
            },
            WorkerResponse::Error {
                message: "boom".into(),
            },
        ] {
            let reparsed = Json::parse(&msg.to_json().render()).unwrap();
            assert_eq!(WorkerResponse::from_json(&reparsed, d).unwrap(), msg);
        }
        assert!(WorkerRequest::from_json(&Json::Num(3.0)).is_err());
        assert!(WorkerResponse::from_json(&Json::Num(3.0), d).is_err());
    }
}
