//! Declarative experiment configuration.

use ldp_attacks::AttackKind;
use ldp_common::float::exactly_zero;
use ldp_common::{LdpError, Result};
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldprecover::{ArmKind, ArmSet, KMeansDefense, MaliciousSumModel, PostProcess};
use serde::{Deserialize, Serialize};

/// The workspace-wide default master seed (`0x1DB05EED`, "LDP seed").
pub const DEFAULT_SEED: u64 = 0x1DB0_5EED;

/// One cell of the paper's evaluation grid.
///
/// Defaults mirror §VI-A: ε = 0.5, β = 0.05, η = 0.2, 10 trials,
/// full-scale population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Which evaluation workload.
    pub dataset: DatasetKind,
    /// Which LDP protocol.
    pub protocol: ProtocolKind,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// The poisoning attack, or `None` for the unpoisoned baseline
    /// (Table I).
    pub attack: Option<AttackKind>,
    /// Fraction of malicious users β = m/(n+m).
    pub beta: f64,
    /// The recovery methods' assumed ratio η = m/n.
    pub eta: f64,
    /// Number of independent trials to average over.
    pub trials: usize,
    /// Population scale factor in (0, 1] (see `Dataset::subsample`).
    pub scale: f64,
    /// Master seed; per-trial streams are derived from it.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's default cell for a given dataset/protocol/attack.
    pub fn paper_default(
        dataset: DatasetKind,
        protocol: ProtocolKind,
        attack: Option<AttackKind>,
    ) -> Self {
        Self {
            dataset,
            protocol,
            epsilon: 0.5,
            attack,
            beta: 0.05,
            eta: 0.2,
            trials: 10,
            scale: 1.0,
            seed: DEFAULT_SEED,
        }
    }

    /// Validates the numeric ranges.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for out-of-range ε, β, η, scale, or a
    /// zero trial count.
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(LdpError::invalid(format!("epsilon = {}", self.epsilon)));
        }
        if !(0.0..1.0).contains(&self.beta) {
            return Err(LdpError::invalid(format!(
                "beta must be in [0,1), got {}",
                self.beta
            )));
        }
        if !(self.eta.is_finite() && self.eta >= 0.0) {
            return Err(LdpError::invalid(format!("eta = {}", self.eta)));
        }
        if self.trials == 0 {
            return Err(LdpError::invalid("trials must be ≥ 1"));
        }
        if !(self.scale > 0.0 && self.scale <= 1.0) {
            return Err(LdpError::invalid(format!(
                "scale must be in (0,1], got {}",
                self.scale
            )));
        }
        if self.attack.is_none() && self.beta > 0.0 {
            return Err(LdpError::invalid(
                "beta > 0 requires an attack; set beta = 0 for the unpoisoned baseline",
            ));
        }
        Ok(())
    }

    /// Number of malicious users for `n` genuine ones:
    /// `m = round(β/(1−β)·n)` (so that β = m/(n+m)), via the canonical
    /// [`ldp_common::population::malicious_count`]. Zero without an
    /// attack — β alone does not poison.
    pub fn malicious_count(&self, genuine: usize) -> usize {
        if self.attack.is_none() || exactly_zero(self.beta) {
            return 0;
        }
        ldp_common::population::malicious_count(self.beta, genuine)
    }

    /// Human-readable cell label, e.g. `"MGA-GRR"` (the paper's x-axis
    /// naming) or `"unpoisoned-GRR"`.
    pub fn label(&self) -> String {
        match &self.attack {
            Some(attack) => format!("{}-{}", attack.label(), self.protocol),
            None => format!("unpoisoned-{}", self.protocol),
        }
    }
}

/// How the genuine population is aggregated into support counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AggregationMode {
    /// Simulate each user individually (`perturb` + `accumulate` per
    /// report): `O(n·d)`, required whenever an arm consumes raw reports.
    PerUser,
    /// Sample the aggregate support-count vector directly
    /// (`batch_aggregate`): `O(d)`–`O(d·log n)` closed-form for all five
    /// protocols (GRR/OUE/SUE/HR/OLH). Statistically equivalent to
    /// `PerUser` (exact per-item marginals) but consumes different RNG
    /// draws, so the two modes are not bitwise interchangeable.
    /// Incompatible with arms that need per-user reports (Detection,
    /// k-means).
    Batched,
    /// `Batched` whenever no configured arm retains reports, `PerUser`
    /// otherwise — the default, and what the sweep binaries run.
    #[default]
    Auto,
}

impl AggregationMode {
    /// Resolves the mode against the pipeline's report-retention needs.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when `Batched` is forced while an
    /// arm needs raw reports — batched aggregation never materializes
    /// them, so the combination cannot be honored.
    pub fn use_batched(self, needs_reports: bool) -> Result<bool> {
        match self {
            AggregationMode::PerUser => Ok(false),
            AggregationMode::Auto => Ok(!needs_reports),
            AggregationMode::Batched if needs_reports => Err(LdpError::invalid(
                "Batched aggregation retains no per-user reports; \
                 the Detection / k-means arms need PerUser (or Auto)",
            )),
            AggregationMode::Batched => Ok(true),
        }
    }

    /// Parses `"per-user" | "batched" | "auto"` (case-insensitive).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for unknown names.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "per-user" | "peruser" | "per_user" => Ok(AggregationMode::PerUser),
            "batched" | "batch" => Ok(AggregationMode::Batched),
            "auto" => Ok(AggregationMode::Auto),
            other => Err(LdpError::invalid(format!(
                "unknown aggregation mode '{other}' (per-user|batched|auto)"
            ))),
        }
    }
}

impl std::fmt::Display for AggregationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AggregationMode::PerUser => "per-user",
            AggregationMode::Batched => "batched",
            AggregationMode::Auto => "auto",
        })
    }
}

/// Which defense arms a pipeline run executes, plus the knobs they share.
///
/// The arm selection is an open, registry-driven [`ArmSet`] — adding a
/// defense to the comparison is a registry name, never a new boolean
/// field (see `ldprecover::arm`).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOptions {
    /// The defense arms to run, in canonical registry order.
    pub arms: ArmSet,
    /// Clustering configuration for the k-means arms (ignored unless
    /// [`ArmKind::Kmeans`] / [`ArmKind::RecoverKm`] is selected).
    pub kmeans: KMeansDefense,
    /// Number of identified targets for untargeted attacks in the
    /// partial-knowledge arms (the paper uses r/2 = 5).
    pub star_top_k: usize,
    /// Malicious-sum model ablation (default: the paper's Eq. 21).
    pub sum_model: MaliciousSumModel,
    /// Refinement ablation (default: norm-sub, the paper's Algorithm 1).
    pub post_process: PostProcess,
    /// How to aggregate the genuine population (default: [`AggregationMode::Auto`]).
    pub aggregation: AggregationMode,
}

impl Default for PipelineOptions {
    /// Plain LDPRecover only — the arm every historical run included.
    fn default() -> Self {
        Self {
            arms: ArmSet::default(),
            kmeans: KMeansDefense::default(),
            star_top_k: 5,
            sum_model: MaliciousSumModel::default(),
            post_process: PostProcess::default(),
            aggregation: AggregationMode::default(),
        }
    }
}

impl PipelineOptions {
    /// The full method set of the paper's Fig. 3/4: before + Detection +
    /// LDPRecover + LDPRecover\*.
    pub fn full_comparison() -> Self {
        Self {
            arms: ArmSet::new([ArmKind::Recover, ArmKind::RecoverStar, ArmKind::Detection]),
            ..Self::default()
        }
    }

    /// Recovery-only (the Fig. 5/6 parameter sweeps).
    pub fn recovery_only() -> Self {
        Self {
            arms: ArmSet::new([ArmKind::Recover, ArmKind::RecoverStar]),
            ..Self::default()
        }
    }

    /// An explicit arm selection with every other knob at its default.
    pub fn with_arms(arms: ArmSet) -> Self {
        Self {
            arms,
            ..Self::default()
        }
    }

    /// Whether any selected arm needs per-report retention.
    pub fn needs_reports(&self) -> bool {
        self.arms.needs_reports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ExperimentConfig {
        ExperimentConfig::paper_default(
            DatasetKind::Ipums,
            ProtocolKind::Grr,
            Some(AttackKind::Adaptive),
        )
    }

    #[test]
    fn paper_defaults_match_section_vi() {
        let c = base();
        assert_eq!(c.epsilon, 0.5);
        assert_eq!(c.beta, 0.05);
        assert_eq!(c.eta, 0.2);
        assert_eq!(c.trials, 10);
        assert_eq!(c.scale, 1.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_ranges() {
        for mutate in [
            |c: &mut ExperimentConfig| c.epsilon = 0.0,
            |c: &mut ExperimentConfig| c.beta = 1.0,
            |c: &mut ExperimentConfig| c.beta = -0.1,
            |c: &mut ExperimentConfig| c.eta = -1.0,
            |c: &mut ExperimentConfig| c.trials = 0,
            |c: &mut ExperimentConfig| c.scale = 0.0,
            |c: &mut ExperimentConfig| c.scale = 1.2,
            |c: &mut ExperimentConfig| c.attack = None, // beta stays 0.05
        ] {
            let mut c = base();
            mutate(&mut c);
            assert!(c.validate().is_err(), "{c:?}");
        }
    }

    #[test]
    fn unpoisoned_baseline_is_legal() {
        let mut c = base();
        c.attack = None;
        c.beta = 0.0;
        assert!(c.validate().is_ok());
        assert_eq!(c.malicious_count(1000), 0);
        assert_eq!(c.label(), "unpoisoned-GRR");
    }

    #[test]
    fn malicious_count_inverts_beta() {
        let mut c = base();
        c.beta = 0.05;
        let n = 389_894usize;
        let m = c.malicious_count(n);
        let beta_realized = m as f64 / (n + m) as f64;
        assert!((beta_realized - 0.05).abs() < 1e-6, "beta={beta_realized}");
    }

    #[test]
    fn labels_match_figure_axes() {
        let c = base();
        assert_eq!(c.label(), "AA-GRR");
        let mut c2 = base();
        c2.attack = Some(AttackKind::Mga { r: 10 });
        c2.protocol = ProtocolKind::Oue;
        assert_eq!(c2.label(), "MGA-OUE");
    }

    #[test]
    fn options_report_retention() {
        assert!(!PipelineOptions::recovery_only().needs_reports());
        assert!(PipelineOptions::full_comparison().needs_reports());
        let km = PipelineOptions::with_arms(ArmSet::new([ArmKind::Recover, ArmKind::Kmeans]));
        assert!(km.needs_reports());
    }

    #[test]
    fn preset_arm_sets_mirror_the_paper() {
        assert_eq!(PipelineOptions::default().arms.kinds(), &[ArmKind::Recover]);
        assert_eq!(
            PipelineOptions::recovery_only().arms.kinds(),
            &[ArmKind::Recover, ArmKind::RecoverStar]
        );
        assert_eq!(
            PipelineOptions::full_comparison().arms.kinds(),
            &[ArmKind::Recover, ArmKind::RecoverStar, ArmKind::Detection]
        );
        assert_eq!(PipelineOptions::default().star_top_k, 5);
    }

    #[test]
    fn aggregation_mode_resolution() {
        // Auto switches on report retention.
        assert!(AggregationMode::Auto.use_batched(false).unwrap());
        assert!(!AggregationMode::Auto.use_batched(true).unwrap());
        // Explicit modes are honored…
        assert!(!AggregationMode::PerUser.use_batched(false).unwrap());
        assert!(!AggregationMode::PerUser.use_batched(true).unwrap());
        assert!(AggregationMode::Batched.use_batched(false).unwrap());
        // …except the impossible combination, which errors loudly.
        assert!(AggregationMode::Batched.use_batched(true).is_err());
        // Auto is the default everywhere.
        assert_eq!(
            PipelineOptions::default().aggregation,
            AggregationMode::Auto
        );
        assert_eq!(
            PipelineOptions::full_comparison().aggregation,
            AggregationMode::Auto
        );
    }

    #[test]
    fn aggregation_mode_parse_and_display() {
        for (name, mode) in [
            ("per-user", AggregationMode::PerUser),
            ("PerUser", AggregationMode::PerUser),
            ("batched", AggregationMode::Batched),
            ("BATCH", AggregationMode::Batched),
            ("auto", AggregationMode::Auto),
        ] {
            assert_eq!(AggregationMode::parse(name).unwrap(), mode);
        }
        assert!(AggregationMode::parse("vectorized").is_err());
        assert_eq!(
            AggregationMode::parse(&AggregationMode::Batched.to_string()).unwrap(),
            AggregationMode::Batched
        );
    }
}
