#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Simulation pipeline for the LDPRecover reproduction.
//!
//! Orchestrates one full evaluation trial exactly as the paper's §VI does:
//!
//! 1. materialize a dataset (genuine users' items),
//! 2. aggregate the genuine population with the configured LDP protocol —
//!    per-user perturbation, or the count-based batched engine
//!    ([`config::AggregationMode`]) that samples support counts directly,
//! 3. craft malicious reports with the configured poisoning attack,
//! 4. aggregate genuine / malicious / poisoned frequency estimates,
//! 5. run the selected defense arms through the open
//!    [`ldprecover::DefenseArm`] registry (`recover`, `recover-star`,
//!    `detection`, `kmeans`, `recover-km`, `norm-sub`, `base-cut`, and
//!    anything added to it — arms are data, never hard-coded fields),
//! 6. score everything with the paper's metrics (MSE, Eq. 36; FG, Eq. 37),
//!    with per-arm statistics derived generically (`mse_{arm}`,
//!    `fg_{arm}`, `malicious_mse_{arm}`).
//!
//! * [`config::ExperimentConfig`] — declarative experiment description
//!   (dataset, protocol, ε, attack, β, η, trials, scale, master seed).
//! * [`pipeline`] — a single trial, split into the expensive aggregation
//!   half ([`pipeline::TrialAggregates`]) and the cheap recovery half so
//!   parameter sweeps (e.g. over η) can reuse aggregations.
//! * [`runner`] — multi-trial execution with derived per-trial seeds and
//!   [`metrics::Stats`] summaries.
//! * [`table`] — fixed-width / CSV rendering for the experiment binaries.
//! * [`scenario`] — the declarative scenario-matrix subsystem: the
//!   paper's figures as data (cells × grids), one engine executing them,
//!   JSON reports, and golden statistical regression gates.
//! * [`stream`] — sharded streaming ingestion with epoch-based online
//!   recovery: per-`(shard, epoch)` derived RNG streams, batched epoch
//!   deltas, exact shard merges, recovery trajectories, and bit-identical
//!   JSON checkpoint/resume.

pub mod config;
pub mod metrics;
pub mod pipeline;
pub mod runner;
pub mod scenario;
pub mod stream;
pub mod table;

pub use config::{AggregationMode, ExperimentConfig, PipelineOptions, DEFAULT_SEED};
pub use ldprecover::{ArmKind, ArmSet, DefenseArm};
pub use metrics::{frequency_gain, top_k_recall, Stats};
pub use pipeline::{TrialAggregates, TrialArena, TrialResult};
pub use runner::{run_eta_sweep, run_experiment, ArmStats, ExperimentResult};
pub use scenario::{run_scenario, RunScale, ScaleSpec, Scenario, ScenarioReport};
pub use stream::{shard_epoch_delta, EpochPoint, ShardDelta, StreamEngine, StreamSpec};
pub use table::Table;
