//! The paper's evaluation metrics and trial-summary statistics.

use ldp_common::{LdpError, Result};

/// Mean squared error between two frequency vectors (paper Eq. 36).
///
/// Re-exported from `ldp_common::vecmath` for a single import site in the
/// experiment binaries.
pub use ldp_common::vecmath::mse;

/// Frequency gain (paper Eq. 37): the summed increase of the target items'
/// frequencies in `observed` relative to the genuine aggregated baseline.
///
/// Note the paper's Eq. (37) prints the operands as `f̃_X̃(t) − f̃*_Z(t)`,
/// which would be negative for frequency-*boosting* attacks; its prose and
/// reported magnitudes ("FG denotes the increase…") correspond to
/// `observed − genuine`, which is what we compute.
///
/// # Errors
/// [`LdpError::DomainMismatch`] on vector-length mismatch or out-of-range
/// targets; [`LdpError::EmptyInput`] for an empty target set.
pub fn frequency_gain(observed: &[f64], genuine: &[f64], targets: &[usize]) -> Result<f64> {
    if observed.len() != genuine.len() {
        return Err(LdpError::DomainMismatch {
            expected: genuine.len(),
            got: observed.len(),
            context: "frequency gain",
        });
    }
    if targets.is_empty() {
        return Err(LdpError::EmptyInput("frequency-gain targets"));
    }
    let mut gain = 0.0;
    for &t in targets {
        if t >= observed.len() {
            return Err(LdpError::DomainMismatch {
                expected: observed.len(),
                got: t,
                context: "frequency-gain target index",
            });
        }
        gain += observed[t] - genuine[t];
    }
    Ok(gain)
}

/// Top-k heavy-hitter identification quality: the fraction of the true
/// top-k items that also appear in the estimate's top-k (recall == precision
/// at equal k).
///
/// This is the downstream statistic the paper's introduction motivates:
/// targeted poisoning "promotes items as popular items", i.e. corrupts
/// exactly this set; recovery should restore it.
///
/// # Errors
/// [`LdpError::DomainMismatch`] on length mismatch;
/// [`LdpError::InvalidParameter`] when `k` is 0 or exceeds the domain.
pub fn top_k_recall(estimate: &[f64], truth: &[f64], k: usize) -> Result<f64> {
    if estimate.len() != truth.len() {
        return Err(LdpError::DomainMismatch {
            expected: truth.len(),
            got: estimate.len(),
            context: "top-k recall",
        });
    }
    if k == 0 || k > truth.len() {
        return Err(LdpError::invalid(format!(
            "k must be in 1..={}, got {k}",
            truth.len()
        )));
    }
    let top_est = ldp_common::vecmath::top_k_indices(estimate, k);
    let top_true = ldp_common::vecmath::top_k_indices(truth, k);
    let true_set: std::collections::HashSet<usize> = top_true.into_iter().collect();
    let hits = top_est.iter().filter(|v| true_set.contains(v)).count();
    Ok(hits as f64 / k as f64)
}

/// Mean ± std summary over trials.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single trial).
    pub std: f64,
    /// Number of trials folded in.
    pub count: usize,
}

impl Stats {
    /// Summarizes a slice of per-trial values.
    ///
    /// # Panics
    /// Panics on an empty slice (harness bug).
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "no trial values to summarize");
        let mut rm = ldp_common::stats::RunningMoments::new();
        for &v in values {
            rm.push(v);
        }
        Self {
            mean: rm.mean(),
            std: rm.std_dev(),
            count: values.len(),
        }
    }

    /// Standard error of the mean (`std / √count`; 0 for a single trial).
    pub fn sem(&self) -> f64 {
        if self.count > 1 {
            self.std / (self.count as f64).sqrt()
        } else {
            0.0
        }
    }

    /// Summarizes an optional metric: `None` when no trial produced it.
    pub fn from_optional(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            None
        } else {
            Some(Self::from_values(values))
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3e} ±{:.1e}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_gain_sums_target_increases() {
        let genuine = [0.1, 0.2, 0.3, 0.4];
        let observed = [0.15, 0.25, 0.28, 0.4];
        let fg = frequency_gain(&observed, &genuine, &[0, 1]).unwrap();
        assert!((fg - 0.1).abs() < 1e-12);
        // A recovered vector *below* genuine yields negative FG
        // (the LDPRecover* phenomenon in Fig. 4).
        let fg = frequency_gain(&observed, &genuine, &[2]).unwrap();
        assert!(fg < 0.0);
    }

    #[test]
    fn frequency_gain_validation() {
        assert!(frequency_gain(&[0.1], &[0.1, 0.2], &[0]).is_err());
        assert!(frequency_gain(&[0.1, 0.2], &[0.1, 0.2], &[]).is_err());
        assert!(frequency_gain(&[0.1, 0.2], &[0.1, 0.2], &[2]).is_err());
    }

    #[test]
    fn top_k_recall_counts_overlap() {
        let truth = [0.4, 0.3, 0.2, 0.1];
        // Estimate swaps ranks 2 and 3.
        let estimate = [0.4, 0.3, 0.1, 0.2];
        assert_eq!(top_k_recall(&estimate, &truth, 2).unwrap(), 1.0);
        assert_eq!(top_k_recall(&estimate, &truth, 3).unwrap(), 2.0 / 3.0);
        assert_eq!(top_k_recall(&estimate, &truth, 4).unwrap(), 1.0);
    }

    #[test]
    fn top_k_recall_validation() {
        assert!(top_k_recall(&[0.1], &[0.1, 0.2], 1).is_err());
        assert!(top_k_recall(&[0.1, 0.2], &[0.1, 0.2], 0).is_err());
        assert!(top_k_recall(&[0.1, 0.2], &[0.1, 0.2], 3).is_err());
    }

    #[test]
    fn stats_summary() {
        let s = Stats::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert!(Stats::from_optional(&[]).is_none());
        assert!(Stats::from_optional(&[1.0]).is_some());
        // Display renders scientific notation.
        assert!(format!("{s}").contains('e'));
    }
}
