//! `ldp` — run a single LDPRecover experiment cell from the command
//! line, or reproduce whole paper figures via the `repro` subcommand.
//!
//! ```text
//! cargo run --release -p ldp-sim --bin ldp -- \
//!     --dataset ipums --protocol oue --attack mga --targets 10 \
//!     --beta 0.05 --eta 0.2 --epsilon 0.5 --trials 5 --scale 0.1
//!
//! cargo run --release -p ldp-sim --bin ldp -- \
//!     repro --figure fig3 --scale small --json fig3.json
//! ```
//!
//! The default mode prints MSE (and FG for targeted attacks) for every
//! recovery arm — the full method comparison of the paper's Fig. 3/4 for
//! any parameter combination. `repro` drives the scenario catalog
//! (`ldp_sim::scenario::catalog`): one figure id or `all`, at a named
//! scale preset or an explicit fraction.

use ldp_attacks::AttackKind;
use ldp_common::json::write_atomic;
use ldp_common::{Json, LdpError, Result};
use ldp_datasets::{DatasetKind, ScalePreset};
use ldp_protocols::ProtocolKind;
use ldp_sim::scenario::{catalog, run_scenario, RunScale, ScaleSpec};
use ldp_sim::stream::coordinator::{self, CoordinatorConfig, WorkerLauncher};
use ldp_sim::stream::worker::{run_worker, FaultPlan};
use ldp_sim::stream::{StreamEngine, StreamSpec, WindowMode};
use ldp_sim::table::{fmt_mean, fmt_stat};
use ldp_sim::{
    run_experiment, AggregationMode, ExperimentConfig, PipelineOptions, Table, DEFAULT_SEED,
};
use ldprecover::{ArmKind, ArmSet};

const USAGE: &str = "\
ldp — run one LDPRecover experiment cell
ldp repro — reproduce whole paper figures (see `ldp repro --help`)
ldp stream — sharded streaming ingestion with per-epoch recovery
             (see `ldp stream --help`)

options:
  --dataset ipums|fire          workload                [ipums]
  --protocol grr|oue|olh|sue|hr LDP protocol            [grr]
  --attack manip|mga|mga-sampled|aa|aa-camo|mga-ipa|multi|none
                                poisoning attack        [aa]
  --targets N                   r for targeted attacks / |H| for manip [10]
  --attackers N                 attackers for `multi`   [5]
  --beta F                      malicious fraction      [0.05]
  --eta F                       recovery's assumed m/n  [0.2]
  --epsilon F                   privacy budget          [0.5]
  --trials N                    trials to average       [5]
  --scale F                     population scale (0,1]  [0.1]
  --seed N                      master seed             [0x1db05eed]
  --aggregation per-user|batched|auto
                                genuine-user aggregation [auto]
  --arms a,b,c                  defense arms to run, from the registry:
                                recover, recover-star, detection, kmeans,
                                recover-km, norm-sub, base-cut
                                [default: full comparison when attacked]
  --csv                         CSV output
  --help                        this text";

struct Args {
    dataset: DatasetKind,
    protocol: ProtocolKind,
    attack: Option<AttackKind>,
    targets: usize,
    attackers: usize,
    beta: f64,
    eta: f64,
    epsilon: f64,
    trials: usize,
    scale: f64,
    seed: u64,
    aggregation: AggregationMode,
    arms: Option<ArmSet>,
    csv: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            dataset: DatasetKind::Ipums,
            protocol: ProtocolKind::Grr,
            attack: Some(AttackKind::Adaptive),
            targets: 10,
            attackers: 5,
            beta: 0.05,
            eta: 0.2,
            epsilon: 0.5,
            trials: 5,
            scale: 0.1,
            seed: 0x1DB0_5EED,
            aggregation: AggregationMode::Auto,
            arms: None,
            csv: false,
        }
    }
}

fn parse_args<I: Iterator<Item = String>>(mut iter: I) -> Result<Args> {
    let mut args = Args::default();
    let mut attack_name = "aa".to_string();
    let mut explicit_none = false;
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String> {
            iter.next()
                .ok_or_else(|| LdpError::invalid(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--dataset" => {
                args.dataset = match value("--dataset")?.to_ascii_lowercase().as_str() {
                    "ipums" => DatasetKind::Ipums,
                    "fire" => DatasetKind::Fire,
                    other => return Err(LdpError::invalid(format!("unknown dataset '{other}'"))),
                };
            }
            "--protocol" => args.protocol = ProtocolKind::parse(&value("--protocol")?)?,
            "--attack" => {
                attack_name = value("--attack")?.to_ascii_lowercase();
                explicit_none = attack_name == "none";
            }
            "--targets" => args.targets = parse_num(&value("--targets")?, "--targets")?,
            "--attackers" => args.attackers = parse_num(&value("--attackers")?, "--attackers")?,
            "--beta" => args.beta = parse_f64(&value("--beta")?, "--beta")?,
            "--eta" => args.eta = parse_f64(&value("--eta")?, "--eta")?,
            "--epsilon" => args.epsilon = parse_f64(&value("--epsilon")?, "--epsilon")?,
            "--trials" => args.trials = parse_num(&value("--trials")?, "--trials")?,
            "--scale" => args.scale = parse_f64(&value("--scale")?, "--scale")?,
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")? as u64,
            "--aggregation" => {
                args.aggregation = AggregationMode::parse(&value("--aggregation")?)?;
            }
            "--arms" => args.arms = Some(ArmSet::parse(&value("--arms")?)?),
            "--csv" => args.csv = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(LdpError::invalid(format!("unknown flag '{other}'"))),
        }
    }
    args.attack = resolve_attack(&attack_name, args.targets, args.attackers)?;
    if explicit_none {
        args.beta = 0.0;
    }
    Ok(args)
}

/// Maps a CLI attack name (plus the `--targets` / `--attackers`
/// parameters) to an [`AttackKind`]; `"none"` disables the attack.
fn resolve_attack(name: &str, targets: usize, attackers: usize) -> Result<Option<AttackKind>> {
    match name {
        "manip" => Ok(Some(AttackKind::Manip { h: targets })),
        "mga" => Ok(Some(AttackKind::Mga { r: targets })),
        "mga-sampled" => Ok(Some(AttackKind::MgaSampled { r: targets })),
        "aa" => Ok(Some(AttackKind::Adaptive)),
        "aa-camo" => Ok(Some(AttackKind::AdaptiveCamouflaged)),
        "mga-ipa" => Ok(Some(AttackKind::MgaIpa { r: targets })),
        "multi" => Ok(Some(AttackKind::MultiAdaptive { attackers })),
        "none" => Ok(None),
        other => Err(LdpError::invalid(format!("unknown attack '{other}'"))),
    }
}

fn parse_num(s: &str, flag: &str) -> Result<usize> {
    s.parse()
        .map_err(|e| LdpError::invalid(format!("{flag}: {e}")))
}

fn parse_f64(s: &str, flag: &str) -> Result<f64> {
    s.parse()
        .map_err(|e| LdpError::invalid(format!("{flag}: {e}")))
}

const REPRO_USAGE: &str = "\
ldp repro — reproduce the paper's figures from the scenario catalog

options:
  --figure ID|all               which figure (fig3..fig10, table1,
                                ablations, kv_extension, stream_online,
                                stream_windowed, defense_arms) [all]
  --scale small|paper|F         scale preset or fraction       [small]
  --trials N                    trials per cell    [preset default: 5/10]
  --seed N                      master seed              [0x1db05eed]
  --json PATH                   write JSON report(s); a directory when
                                several figures run
  --csv                         CSV tables
  --help                        this text";

/// Parsed `ldp repro` options.
struct ReproArgs {
    figure: String,
    scale: ScaleSpec,
    trials: Option<usize>,
    seed: u64,
    json: Option<std::path::PathBuf>,
    csv: bool,
}

fn parse_repro_args<I: Iterator<Item = String>>(mut iter: I) -> Result<ReproArgs> {
    let mut args = ReproArgs {
        figure: "all".to_string(),
        scale: ScaleSpec::Preset(ScalePreset::Small),
        trials: None,
        seed: DEFAULT_SEED,
        json: None,
        csv: false,
    };
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String> {
            iter.next()
                .ok_or_else(|| LdpError::invalid(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--figure" => args.figure = value("--figure")?.to_ascii_lowercase(),
            "--scale" => args.scale = ScaleSpec::parse(&value("--scale")?)?,
            "--trials" => args.trials = Some(parse_num(&value("--trials")?, "--trials")?),
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")? as u64,
            "--json" => args.json = Some(value("--json")?.into()),
            "--csv" => args.csv = true,
            "--help" | "-h" => {
                println!("{REPRO_USAGE}");
                std::process::exit(0);
            }
            other => return Err(LdpError::invalid(format!("unknown flag '{other}'"))),
        }
    }
    Ok(args)
}

impl ReproArgs {
    /// The engine scale: explicit `--trials` wins, otherwise the preset's
    /// default (5 for `small`, the paper's 10 otherwise).
    fn run_scale(&self) -> RunScale {
        let trials = self.trials.unwrap_or(match self.scale {
            ScaleSpec::Preset(preset) => preset.trials(),
            ScaleSpec::Fraction(_) => 10,
        });
        RunScale {
            trials,
            seed: self.seed,
            scale: self.scale,
        }
    }
}

/// Fail fast — before any simulation work — when an output flag points
/// into a directory that does not exist, instead of surfacing a bare io
/// error (or losing a long run's output) at write time.
fn validate_output_parent(flag: &str, path: &std::path::Path) -> Result<()> {
    let parent = match path.parent() {
        // A bare filename resolves against the current directory.
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => return Ok(()),
    };
    if parent.is_dir() {
        Ok(())
    } else {
        Err(LdpError::invalid(format!(
            "{flag} {}: parent directory {} does not exist (create it first)",
            path.display(),
            parent.display()
        )))
    }
}

fn repro_main<I: Iterator<Item = String>>(iter: I) -> Result<()> {
    let args = parse_repro_args(iter)?;
    if let Some(path) = &args.json {
        validate_output_parent("--json", path)?;
    }
    let ids: Vec<&str> = if args.figure == "all" {
        catalog::FIGURE_IDS.to_vec()
    } else {
        // Resolve eagerly so an unknown figure fails before any work.
        catalog::scenario(&args.figure)?;
        vec![catalog::FIGURE_IDS
            .iter()
            .find(|id| **id == args.figure)
            .expect("scenario() accepted the id")]
    };
    let scale = args.run_scale();
    for id in &ids {
        let scenario = catalog::scenario(id)?;
        let report = run_scenario(&scenario, &scale)?;
        print!("{}", report.render_text(args.csv));
        if let Some(path) = &args.json {
            let written = report.write_json(path, ids.len() > 1)?;
            eprintln!("wrote {}", written.display());
        }
    }
    Ok(())
}

const STREAM_USAGE: &str = "\
ldp stream — sharded streaming ingestion with epoch-based online recovery

Synthetic genuine+malicious traffic is fanned across shards (each with its
own derived RNG stream), merged at every epoch boundary, and re-recovered,
producing a recovery-accuracy-vs-reports-seen trajectory. With
--checkpoint the full engine state is written (atomically) after every
epoch; --resume continues a suspended run bit-identically (same bytes as
uninterrupted). With --workers N the shards are computed by N separate
worker processes with failover replay — still byte-identical.

options:
  --dataset ipums|fire          workload                [ipums]
  --protocol grr|oue|olh|sue|hr LDP protocol            [grr]
  --attack manip|mga|mga-sampled|aa|aa-camo|mga-ipa|multi|none
                                poisoning campaign      [aa]
  --targets N                   r for targeted attacks / |H| for manip [10]
  --attackers N                 attackers for `multi`   [5]
  --beta F                      malicious fraction      [0.05]
  --eta F                       recovery's assumed m/n  [0.2]
  --epsilon F                   privacy budget          [0.5]
  --shards N                    ingestion shards        [4]
  --epochs N                    stream length           [8]
  --users-per-epoch N           genuine users per epoch [5000]
  --seed N                      master seed             [0x1db05eed]
  --window cumulative|sliding:N|decay:L
                                recovery window over epochs: all epochs,
                                the last N, or exponential decay with
                                factor L in (0,1)       [cumulative]
  --workers N                   distribute shards over N worker processes
                                (byte-identical to the in-process engine)
  --worker-timeout-ms N         per-work-unit reply timeout before a
                                worker is killed and replayed   [10000]
  --inject-fault K[@U]          test-only: worker 0's first process
                                misbehaves on its U-th unit; K is
                                worker-crash|stall|corrupt-frame
  --checkpoint PATH             write the engine state after every epoch
  --resume PATH                 restore from a checkpoint (spec flags, if
                                repeated, must match the checkpoint spec)
  --suspend-after N             stop once N epochs are done (for --resume)
  --arms a,b,c                  also evaluate these count-only defense arms
                                on the final merged state (recover,
                                recover-star, norm-sub, base-cut)
  --json PATH                   write the JSON report (spec + trajectory)
  --csv                         CSV trajectory table
  --help                        this text";

/// Parsed `ldp stream` options.
struct StreamArgs {
    spec: StreamSpec,
    /// The spec-shaping flags that were explicitly given — with --resume
    /// each is diffed field-by-field against the checkpoint's spec.
    spec_flags: Vec<&'static str>,
    workers: Option<usize>,
    worker_timeout_ms: u64,
    inject_fault: Option<String>,
    checkpoint: Option<std::path::PathBuf>,
    resume: Option<std::path::PathBuf>,
    suspend_after: Option<usize>,
    arms: Option<ArmSet>,
    json: Option<std::path::PathBuf>,
    csv: bool,
}

fn parse_stream_args<I: Iterator<Item = String>>(mut iter: I) -> Result<StreamArgs> {
    let mut spec = StreamSpec {
        dataset: DatasetKind::Ipums,
        protocol: ProtocolKind::Grr,
        attack: Some(AttackKind::Adaptive),
        epsilon: 0.5,
        beta: 0.05,
        eta: 0.2,
        shards: 4,
        epochs: 8,
        users_per_epoch: 5000,
        seed: DEFAULT_SEED,
        window: WindowMode::Cumulative,
    };
    let mut attack_name = "aa".to_string();
    let mut targets = 10usize;
    let mut attackers = 5usize;
    let mut args = StreamArgs {
        spec,
        spec_flags: Vec::new(),
        workers: None,
        worker_timeout_ms: 10_000,
        inject_fault: None,
        checkpoint: None,
        resume: None,
        suspend_after: None,
        arms: None,
        json: None,
        csv: false,
    };
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String> {
            iter.next()
                .ok_or_else(|| LdpError::invalid(format!("{name} requires a value")))
        };
        // Spec-shaping flags record their name for the --resume diff.
        let mut spec_flag: Option<&'static str> = None;
        match flag.as_str() {
            "--dataset" => {
                spec.dataset = DatasetKind::parse(&value("--dataset")?)?;
                spec_flag = Some("--dataset");
            }
            "--protocol" => {
                spec.protocol = ProtocolKind::parse(&value("--protocol")?)?;
                spec_flag = Some("--protocol");
            }
            "--attack" => {
                attack_name = value("--attack")?.to_ascii_lowercase();
                spec_flag = Some("--attack");
            }
            "--targets" => {
                targets = parse_num(&value("--targets")?, "--targets")?;
                spec_flag = Some("--attack");
            }
            "--attackers" => {
                attackers = parse_num(&value("--attackers")?, "--attackers")?;
                spec_flag = Some("--attack");
            }
            "--beta" => {
                spec.beta = parse_f64(&value("--beta")?, "--beta")?;
                spec_flag = Some("--beta");
            }
            "--eta" => {
                spec.eta = parse_f64(&value("--eta")?, "--eta")?;
                spec_flag = Some("--eta");
            }
            "--epsilon" => {
                spec.epsilon = parse_f64(&value("--epsilon")?, "--epsilon")?;
                spec_flag = Some("--epsilon");
            }
            "--shards" => {
                spec.shards = parse_num(&value("--shards")?, "--shards")?;
                spec_flag = Some("--shards");
            }
            "--epochs" => {
                spec.epochs = parse_num(&value("--epochs")?, "--epochs")?;
                spec_flag = Some("--epochs");
            }
            "--users-per-epoch" => {
                spec.users_per_epoch =
                    parse_num(&value("--users-per-epoch")?, "--users-per-epoch")?;
                spec_flag = Some("--users-per-epoch");
            }
            "--seed" => {
                spec.seed = parse_num(&value("--seed")?, "--seed")? as u64;
                spec_flag = Some("--seed");
            }
            "--window" => {
                spec.window = WindowMode::parse(&value("--window")?)?;
                spec_flag = Some("--window");
            }
            "--workers" => {
                let n = parse_num(&value("--workers")?, "--workers")?;
                if n == 0 {
                    return Err(LdpError::invalid("--workers must be ≥ 1"));
                }
                args.workers = Some(n);
            }
            "--worker-timeout-ms" => {
                args.worker_timeout_ms =
                    parse_num(&value("--worker-timeout-ms")?, "--worker-timeout-ms")? as u64;
            }
            "--inject-fault" => {
                let fault = value("--inject-fault")?;
                FaultPlan::parse(&fault)?; // validate eagerly; workers re-parse
                args.inject_fault = Some(fault);
            }
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?.into()),
            "--resume" => args.resume = Some(value("--resume")?.into()),
            "--suspend-after" => {
                args.suspend_after =
                    Some(parse_num(&value("--suspend-after")?, "--suspend-after")?);
            }
            "--arms" => args.arms = Some(ArmSet::parse(&value("--arms")?)?),
            "--json" => args.json = Some(value("--json")?.into()),
            "--csv" => args.csv = true,
            "--help" | "-h" => {
                println!("{STREAM_USAGE}");
                std::process::exit(0);
            }
            other => return Err(LdpError::invalid(format!("unknown flag '{other}'"))),
        }
        if let Some(name) = spec_flag {
            if !args.spec_flags.contains(&name) {
                args.spec_flags.push(name);
            }
        }
    }
    spec.attack = resolve_attack(&attack_name, targets, attackers)?;
    if spec.attack.is_none() {
        spec.beta = 0.0;
    }
    args.spec = spec;
    if args.inject_fault.is_some() && args.workers.is_none() {
        return Err(LdpError::invalid(
            "--inject-fault targets worker processes; it requires --workers",
        ));
    }
    Ok(args)
}

/// The CLI surface form of an attack spec, for --resume diff messages.
fn attack_cli_form(attack: Option<AttackKind>) -> String {
    match attack {
        None => "none".into(),
        Some(AttackKind::Manip { h }) => format!("manip (targets {h})"),
        Some(AttackKind::Mga { r }) => format!("mga (targets {r})"),
        Some(AttackKind::MgaSampled { r }) => format!("mga-sampled (targets {r})"),
        Some(AttackKind::Adaptive) => "aa".into(),
        Some(AttackKind::AdaptiveCamouflaged) => "aa-camo".into(),
        Some(AttackKind::MgaIpa { r }) => format!("mga-ipa (targets {r})"),
        Some(AttackKind::MultiAdaptive { attackers }) => format!("multi (attackers {attackers})"),
    }
}

/// Field-by-field diff of the explicitly given spec flags against a
/// checkpoint's restored spec. Empty when every given flag agrees — such
/// a resume is allowed; any disagreement makes `ldp stream` fail fast
/// with one line per conflicting field.
///
/// Values are compared via their rendered forms; f64's Display is
/// shortest-roundtrip, so equal strings means bit-equal floats.
fn resume_spec_conflicts(
    flags: &[&'static str],
    cli: &StreamSpec,
    checkpoint: &StreamSpec,
) -> Vec<String> {
    let mut lines = Vec::new();
    for &flag in flags {
        let (given, stored) = match flag {
            "--dataset" => (cli.dataset.to_string(), checkpoint.dataset.to_string()),
            "--protocol" => (cli.protocol.to_string(), checkpoint.protocol.to_string()),
            "--attack" => (
                attack_cli_form(cli.attack),
                attack_cli_form(checkpoint.attack),
            ),
            "--beta" => (cli.beta.to_string(), checkpoint.beta.to_string()),
            "--eta" => (cli.eta.to_string(), checkpoint.eta.to_string()),
            "--epsilon" => (cli.epsilon.to_string(), checkpoint.epsilon.to_string()),
            "--shards" => (cli.shards.to_string(), checkpoint.shards.to_string()),
            "--epochs" => (cli.epochs.to_string(), checkpoint.epochs.to_string()),
            "--users-per-epoch" => (
                cli.users_per_epoch.to_string(),
                checkpoint.users_per_epoch.to_string(),
            ),
            "--seed" => (
                format!("{:#x}", cli.seed),
                format!("{:#x}", checkpoint.seed),
            ),
            "--window" => (cli.window.name(), checkpoint.window.name()),
            other => (format!("unknown spec flag {other}"), String::new()),
        };
        if given != stored {
            lines.push(format!("  {flag}: flag {given} != checkpoint {stored}"));
        }
    }
    lines
}

fn stream_main<I: Iterator<Item = String>>(iter: I) -> Result<()> {
    let args = parse_stream_args(iter)?;
    if let Some(path) = &args.json {
        validate_output_parent("--json", path)?;
    }
    if let Some(path) = &args.checkpoint {
        validate_output_parent("--checkpoint", path)?;
    }
    let mut engine = match &args.resume {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            let engine = StreamEngine::from_checkpoint(&Json::parse(&text)?)?;
            let conflicts = resume_spec_conflicts(&args.spec_flags, &args.spec, engine.spec());
            if !conflicts.is_empty() {
                return Err(LdpError::invalid(format!(
                    "--resume {}: the checkpoint's spec disagrees with the given spec flags:\n\
                     {}\n(drop the conflicting flags, or start a fresh run without --resume)",
                    path.display(),
                    conflicts.join("\n")
                )));
            }
            engine
        }
        None => StreamEngine::new(args.spec)?,
    };
    let horizon = args
        .suspend_after
        .map_or(engine.spec().epochs, |e| e.min(engine.spec().epochs));
    let checkpoint_after = |engine: &StreamEngine| -> Result<()> {
        if let Some(path) = &args.checkpoint {
            write_atomic(path, &engine.to_checkpoint().render())?;
        }
        Ok(())
    };
    // Dump the starting state too, so the checkpoint file exists (and the
    // resume hint below holds) even if no epoch runs before suspension.
    checkpoint_after(&engine)?;
    match args.workers {
        Some(workers) => {
            let program = std::env::current_exe().map_err(|e| {
                LdpError::invalid(format!("locating the ldp binary for workers: {e}"))
            })?;
            let mut launcher = WorkerLauncher::for_binary(program);
            if let Some(fault) = &args.inject_fault {
                launcher.first_spawn_extra_args = vec!["--inject-fault".into(), fault.clone()];
            }
            let config = CoordinatorConfig {
                workers,
                timeout: std::time::Duration::from_millis(args.worker_timeout_ms),
                ..CoordinatorConfig::default()
            };
            coordinator::drive_with(&mut engine, horizon, &launcher, &config, &checkpoint_after)?;
        }
        None => {
            while engine.epochs_done() < horizon {
                engine.step()?;
                checkpoint_after(&engine)?;
            }
        }
    }

    let spec = *engine.spec();
    println!(
        "stream {}  (dataset={}, eps={}, beta={}, eta={}, shards={}, epochs={}/{}, \
         users/epoch={}, seed={:#x})\n",
        match spec.attack {
            Some(attack) => format!("{}-{}", attack.label(), spec.protocol),
            None => format!("unpoisoned-{}", spec.protocol),
        },
        spec.dataset,
        spec.epsilon,
        spec.beta,
        spec.eta,
        spec.shards,
        engine.epochs_done(),
        spec.epochs,
        spec.users_per_epoch,
        spec.seed
    );
    let mut table = Table::new([
        "epoch",
        "reports",
        "MSE before",
        "MSE LDPRecover",
        "noise floor",
    ]);
    for point in engine.trajectory() {
        table.push_row([
            format!("{}", point.epoch + 1),
            format!("{}", point.reports_seen),
            format!("{:.3e}", point.mse_before),
            format!("{:.3e}", point.mse_recovered),
            format!("{:.3e}", point.mse_genuine),
        ]);
    }
    if args.csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
    if engine.epochs_done() < spec.epochs {
        println!(
            "\nsuspended after {} of {} epochs{}",
            engine.epochs_done(),
            spec.epochs,
            args.checkpoint
                .as_deref()
                .map(|p| format!(" (resume with --resume {})", p.display()))
                .unwrap_or_default()
        );
    }

    // Optional open-registry evaluation of the final merged state: any
    // count-only arm set, eligibility decided by declared requirements.
    let arm_outputs = match &args.arms {
        Some(arms) if engine.epochs_done() > 0 => Some(engine.arm_snapshot(arms)?),
        Some(_) => {
            eprintln!("note: --arms skipped (no epochs ingested, nothing to evaluate)");
            None
        }
        None => None,
    };
    // Realized ground-truth frequencies of the ingested population, for
    // the arm MSE labels (cheap: no recovery solve involved).
    let truth: Option<Vec<f64>> = arm_outputs.as_ref().map(|_| {
        let total: u64 = engine.true_counts().iter().sum();
        engine
            .true_counts()
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    });
    if let (Some(outputs), Some(truth)) = (&arm_outputs, &truth) {
        let mut arm_table = Table::new(["arm", "MSE (final state)"]);
        for (key, output) in outputs {
            arm_table.push_row([
                arm_column_label(key),
                format!("{:.3e}", ldp_sim::metrics::mse(&output.frequencies, truth)),
            ]);
        }
        println!("\narms on the final merged state:");
        if args.csv {
            print!("{}", arm_table.render_csv());
        } else {
            print!("{}", arm_table.render());
        }
    }

    if let Some(path) = &args.json {
        let mut report = engine.report()?;
        // The arms block is additive and only present when requested, so
        // default reports stay byte-identical across resume boundaries.
        if let (Some(outputs), Some(truth), Json::Obj(fields)) = (&arm_outputs, &truth, &mut report)
        {
            let arms_json = outputs
                .iter()
                .map(|(key, output)| {
                    (
                        key.clone(),
                        Json::Obj(vec![
                            (
                                "mse".into(),
                                Json::Num(ldp_sim::metrics::mse(&output.frequencies, truth)),
                            ),
                            (
                                "frequencies".into(),
                                Json::Arr(
                                    output.frequencies.iter().map(|&x| Json::Num(x)).collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect();
            fields.push(("arms".into(), Json::Obj(arms_json)));
        }
        write_atomic(path, &report.render())?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// The hidden `ldp stream-worker` subcommand: serve length-prefixed work
/// frames on stdio until shutdown/EOF. Spawned by the stream
/// coordinator; not part of the user-facing CLI surface.
fn stream_worker_main<I: Iterator<Item = String>>(mut iter: I) -> Result<()> {
    let mut fault = None;
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--inject-fault" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| LdpError::invalid("--inject-fault requires a value"))?;
                fault = Some(FaultPlan::parse(&spec)?);
            }
            other => {
                return Err(LdpError::invalid(format!(
                    "unknown stream-worker flag '{other}'"
                )))
            }
        }
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    run_worker(&mut stdin.lock(), &mut stdout.lock(), fault)
}

fn main() -> Result<()> {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("repro") {
        raw.next();
        return repro_main(raw);
    }
    if raw.peek().map(String::as_str) == Some("stream") {
        raw.next();
        return stream_main(raw);
    }
    if raw.peek().map(String::as_str) == Some("stream-worker") {
        raw.next();
        return stream_worker_main(raw);
    }
    let args = parse_args(raw)?;
    let mut config = ExperimentConfig::paper_default(args.dataset, args.protocol, args.attack);
    config.beta = if args.attack.is_some() {
        args.beta
    } else {
        0.0
    };
    config.eta = args.eta;
    config.epsilon = args.epsilon;
    config.trials = args.trials;
    config.scale = args.scale;
    config.seed = args.seed;
    config.validate()?;

    // Arm selection: an explicit --arms list wins (and is validated
    // against the aggregation mode by the pipeline); otherwise the
    // historical defaults apply. Forcing batched aggregation is
    // incompatible with report-consuming arms, so the *default* arm set
    // degrades to recovery-only there instead of erroring.
    let mut options = match (&args.arms, args.attack.is_some(), args.aggregation) {
        (Some(arms), _, _) => PipelineOptions::with_arms(arms.clone()),
        (None, true, AggregationMode::Batched) => {
            eprintln!("note: --aggregation batched retains no reports; skipping Detection");
            PipelineOptions::recovery_only()
        }
        (None, true, _) => PipelineOptions::full_comparison(),
        (None, false, _) => PipelineOptions::default(),
    };
    options.aggregation = args.aggregation;
    let result = run_experiment(&config, &options)?;

    println!(
        "cell {}  (dataset={}, eps={}, beta={}, eta={}, trials={}, scale={}, arms={})\n",
        config.label(),
        args.dataset,
        args.epsilon,
        config.beta,
        args.eta,
        args.trials,
        args.scale,
        options.arms
    );

    // One column per arm that ran, derived from the open result surface —
    // the table grows with `--arms`, no per-defense code here.
    let mut header = vec!["metric".to_string(), "before".to_string()];
    header.extend(result.arms.iter().map(|(key, _)| arm_column_label(key)));
    let mut table = Table::new(header);
    let mut mse_row = vec!["MSE".to_string(), fmt_mean(&result.mse_before)];
    mse_row.extend(result.arms.iter().map(|(_, arm)| fmt_stat(&arm.mse)));
    table.push_row(mse_row);
    if result.fg_before.is_some() {
        let mut fg_row = vec!["FG".to_string(), fmt_stat(&result.fg_before)];
        fg_row.extend(result.arms.iter().map(|(_, arm)| fmt_stat(&arm.fg)));
        table.push_row(fg_row);
    }
    if args.csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
    println!(
        "\nnoise floor (genuine estimate MSE): {}",
        fmt_mean(&result.mse_genuine)
    );
    Ok(())
}

/// Column label for an arm's metric key: the registry's display label
/// (`LDPRecover*`), falling back to the key for out-of-registry arms.
fn arm_column_label(metric_key: &str) -> String {
    ArmKind::ALL
        .into_iter()
        .find(|kind| kind.metric_key() == metric_key)
        .map(|kind| kind.label().to_string())
        .unwrap_or_else(|| metric_key.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.dataset, DatasetKind::Ipums);
        assert_eq!(a.protocol, ProtocolKind::Grr);
        assert_eq!(a.attack, Some(AttackKind::Adaptive));
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "--dataset",
            "fire",
            "--protocol",
            "oue",
            "--attack",
            "mga",
            "--targets",
            "7",
            "--beta",
            "0.1",
            "--eta",
            "0.3",
            "--epsilon",
            "1.0",
            "--trials",
            "2",
            "--scale",
            "0.05",
            "--seed",
            "9",
            "--csv",
        ])
        .unwrap();
        assert_eq!(a.dataset, DatasetKind::Fire);
        assert_eq!(a.protocol, ProtocolKind::Oue);
        assert_eq!(a.attack, Some(AttackKind::Mga { r: 7 }));
        assert_eq!(a.beta, 0.1);
        assert!(a.csv);
    }

    #[test]
    fn attack_none_zeroes_beta() {
        let a = parse(&["--attack", "none"]).unwrap();
        assert!(a.attack.is_none());
        assert_eq!(a.beta, 0.0);
    }

    #[test]
    fn targets_apply_regardless_of_flag_order() {
        let a = parse(&["--attack", "mga", "--targets", "3"]).unwrap();
        assert_eq!(a.attack, Some(AttackKind::Mga { r: 3 }));
        let b = parse(&["--targets", "3", "--attack", "manip"]).unwrap();
        assert_eq!(b.attack, Some(AttackKind::Manip { h: 3 }));
    }

    #[test]
    fn rejects_unknown_inputs() {
        assert!(parse(&["--dataset", "census"]).is_err());
        assert!(parse(&["--attack", "ddos"]).is_err());
        assert!(parse(&["--beta"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--aggregation", "vectorized"]).is_err());
    }

    fn parse_repro(args: &[&str]) -> Result<ReproArgs> {
        parse_repro_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn repro_defaults_to_all_figures_at_small_scale() {
        let a = parse_repro(&[]).unwrap();
        assert_eq!(a.figure, "all");
        assert_eq!(a.scale, ScaleSpec::Preset(ScalePreset::Small));
        assert_eq!(a.run_scale().trials, ScalePreset::Small.trials());
        assert_eq!(a.run_scale().seed, DEFAULT_SEED);
    }

    #[test]
    fn repro_flags_parse() {
        let a = parse_repro(&[
            "--figure", "FIG3", "--scale", "paper", "--seed", "9", "--json", "out", "--csv",
        ])
        .unwrap();
        assert_eq!(a.figure, "fig3");
        assert_eq!(a.scale, ScaleSpec::Preset(ScalePreset::Paper));
        assert_eq!(a.run_scale().trials, 10, "paper preset default");
        assert_eq!(a.seed, 9);
        assert!(a.csv);
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("out")));
        // Explicit trials beat the preset default; fractions default to 10.
        let a = parse_repro(&["--trials", "2", "--scale", "0.1"]).unwrap();
        assert_eq!(a.run_scale().trials, 2);
        assert_eq!(
            parse_repro(&["--scale", "0.1"]).unwrap().run_scale().trials,
            10
        );
    }

    #[test]
    fn repro_rejects_bad_flags() {
        assert!(parse_repro(&["--scale", "huge"]).is_err());
        assert!(parse_repro(&["--figure"]).is_err());
        assert!(parse_repro(&["--frobnicate"]).is_err());
    }

    fn parse_stream(args: &[&str]) -> Result<StreamArgs> {
        parse_stream_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn stream_defaults() {
        let a = parse_stream(&[]).unwrap();
        assert_eq!(a.spec.shards, 4);
        assert_eq!(a.spec.epochs, 8);
        assert_eq!(a.spec.users_per_epoch, 5000);
        assert_eq!(a.spec.attack, Some(AttackKind::Adaptive));
        assert_eq!(a.spec.seed, DEFAULT_SEED);
        assert_eq!(a.spec.window, WindowMode::Cumulative);
        assert!(a.workers.is_none(), "in-process engine by default");
        assert_eq!(a.worker_timeout_ms, 10_000);
        assert!(a.checkpoint.is_none() && a.resume.is_none());
        assert!(a.spec_flags.is_empty(), "no spec flags recorded");
        assert!(a.spec.validate().is_ok());
    }

    #[test]
    fn stream_flags_parse() {
        let a = parse_stream(&[
            "--protocol",
            "oue",
            "--attack",
            "mga",
            "--targets",
            "7",
            "--shards",
            "16",
            "--epochs",
            "3",
            "--users-per-epoch",
            "1200",
            "--checkpoint",
            "c.json",
            "--suspend-after",
            "2",
            "--json",
            "out.json",
            "--csv",
        ])
        .unwrap();
        assert_eq!(a.spec.protocol, ProtocolKind::Oue);
        assert_eq!(a.spec.attack, Some(AttackKind::Mga { r: 7 }));
        assert_eq!(a.spec.shards, 16);
        assert_eq!(a.spec.epochs, 3);
        assert_eq!(a.spec.users_per_epoch, 1200);
        assert_eq!(
            a.checkpoint.as_deref(),
            Some(std::path::Path::new("c.json"))
        );
        assert_eq!(a.suspend_after, Some(2));
        assert!(a.csv);
        // Spec flags are recorded once each; --targets folds into --attack.
        assert_eq!(
            a.spec_flags,
            [
                "--protocol",
                "--attack",
                "--shards",
                "--epochs",
                "--users-per-epoch"
            ]
        );
        // `none` zeroes beta, like the cell runner.
        let clean = parse_stream(&["--attack", "none"]).unwrap();
        assert!(clean.spec.attack.is_none());
        assert_eq!(clean.spec.beta, 0.0);
    }

    #[test]
    fn stream_worker_flags_parse() {
        let a = parse_stream(&[
            "--workers",
            "4",
            "--worker-timeout-ms",
            "2500",
            "--inject-fault",
            "corrupt-frame@1",
            "--window",
            "sliding:3",
        ])
        .unwrap();
        assert_eq!(a.workers, Some(4));
        assert_eq!(a.worker_timeout_ms, 2500);
        assert_eq!(a.inject_fault.as_deref(), Some("corrupt-frame@1"));
        assert_eq!(a.spec.window, WindowMode::Sliding(3));
        assert_eq!(
            a.spec_flags,
            ["--window"],
            "worker knobs are not spec flags"
        );
        // Rejections: zero workers, malformed faults, faults without
        // workers, malformed windows.
        assert!(parse_stream(&["--workers", "0"]).is_err());
        assert!(parse_stream(&["--workers", "2", "--inject-fault", "explode"]).is_err());
        assert!(parse_stream(&["--inject-fault", "stall"]).is_err());
        assert!(parse_stream(&["--window", "sliding:0"]).is_err());
        assert!(parse_stream(&["--window", "decay:1.5"]).is_err());
    }

    #[test]
    fn stream_resume_diffs_spec_flags_against_the_checkpoint() {
        // Parsing no longer rejects spec flags next to --resume; the
        // conflict check happens against the restored spec instead.
        let ok = parse_stream(&["--resume", "c.json", "--shards", "2"]).unwrap();
        assert!(ok.resume.is_some());
        assert_eq!(ok.spec_flags, ["--shards"]);
        assert!(parse_stream(&["--frobnicate"]).is_err());
        assert!(parse_stream(&["--shards"]).is_err());

        let cli = parse_stream(&[
            "--shards",
            "2",
            "--protocol",
            "oue",
            "--eta",
            "0.2",
            "--seed",
            "9",
        ])
        .unwrap();
        let mut checkpoint = cli.spec;
        // Matching flags produce no conflicts: resuming is allowed.
        assert!(resume_spec_conflicts(&cli.spec_flags, &cli.spec, &checkpoint).is_empty());
        // Each mismatching field yields one labeled diff line.
        checkpoint.shards = 4;
        checkpoint.protocol = ProtocolKind::Grr;
        let lines = resume_spec_conflicts(&cli.spec_flags, &cli.spec, &checkpoint);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert_eq!(lines[0], "  --shards: flag 2 != checkpoint 4");
        assert_eq!(lines[1], "  --protocol: flag OUE != checkpoint GRR");
        // Fields never given on the CLI are not diffed, even if different.
        checkpoint.epochs = 99;
        assert_eq!(
            resume_spec_conflicts(&cli.spec_flags, &cli.spec, &checkpoint).len(),
            2
        );
        // Attack and window diffs render their CLI surface forms.
        let cli =
            parse_stream(&["--attack", "mga", "--targets", "7", "--window", "decay:0.5"]).unwrap();
        let mut checkpoint = cli.spec;
        checkpoint.attack = Some(AttackKind::Mga { r: 9 });
        checkpoint.window = WindowMode::Sliding(4);
        let lines = resume_spec_conflicts(&cli.spec_flags, &cli.spec, &checkpoint);
        assert_eq!(
            lines,
            [
                "  --attack: flag mga (targets 7) != checkpoint mga (targets 9)",
                "  --window: flag decay:0.5 != checkpoint sliding:4",
            ]
        );
    }

    #[test]
    fn arms_flag_parses_registry_names() {
        assert!(parse(&[]).unwrap().arms.is_none(), "default: auto-select");
        let a = parse(&["--arms", "recover,norm-sub,base-cut"]).unwrap();
        let arms = a.arms.expect("explicit arm set");
        assert_eq!(
            arms.kinds(),
            &[ArmKind::Recover, ArmKind::NormSub, ArmKind::BaseCut]
        );
        assert!(parse(&["--arms", "recover,frobnicate"]).is_err());
        assert!(parse(&["--arms", ""]).is_err());
        // The stream subcommand takes the same flag, orthogonal to specs.
        let s = parse_stream(&["--arms", "recover,recover-star"]).unwrap();
        assert_eq!(
            s.arms.unwrap().kinds(),
            &[ArmKind::Recover, ArmKind::RecoverStar]
        );
        let resumed = parse_stream(&["--resume", "c.json", "--arms", "recover"]).unwrap();
        assert!(resumed.arms.is_some(), "--arms is not a spec flag");
    }

    #[test]
    fn arm_column_labels_fall_back_to_the_key() {
        assert_eq!(arm_column_label("star"), "LDPRecover*");
        assert_eq!(arm_column_label("recover_km"), "LDPRecover-KM");
        assert_eq!(arm_column_label("my_custom_arm"), "my_custom_arm");
    }

    #[test]
    fn aggregation_flag_defaults_to_auto() {
        assert_eq!(parse(&[]).unwrap().aggregation, AggregationMode::Auto);
        assert_eq!(
            parse(&["--aggregation", "batched"]).unwrap().aggregation,
            AggregationMode::Batched
        );
        assert_eq!(
            parse(&["--aggregation", "per-user"]).unwrap().aggregation,
            AggregationMode::PerUser
        );
    }

    #[test]
    fn output_parent_validation() {
        use std::path::Path;
        // Bare filenames and existing directories pass.
        assert!(validate_output_parent("--json", Path::new("out.json")).is_ok());
        assert!(validate_output_parent("--json", Path::new("./out.json")).is_ok());
        let tmp = std::env::temp_dir();
        assert!(validate_output_parent("--json", &tmp.join("out.json")).is_ok());
        // A missing directory fails with the flag and both paths named.
        let missing = tmp.join("ldp-no-such-dir-ever").join("out.json");
        let err = validate_output_parent("--checkpoint", &missing)
            .unwrap_err()
            .to_string();
        assert!(err.contains("--checkpoint"), "{err}");
        assert!(err.contains("ldp-no-such-dir-ever"), "{err}");
        assert!(err.contains("does not exist"), "{err}");
        // A parent that exists but is a file is just as unwritable.
        let file_parent = tmp.join("ldp-parent-is-a-file");
        std::fs::write(&file_parent, "x").unwrap();
        assert!(validate_output_parent("--json", &file_parent.join("out.json")).is_err());
        std::fs::remove_file(&file_parent).unwrap();
    }
}
