//! `ldp` — run a single LDPRecover experiment cell from the command
//! line, or reproduce whole paper figures via the `repro` subcommand.
//!
//! ```text
//! cargo run --release -p ldp-sim --bin ldp -- \
//!     --dataset ipums --protocol oue --attack mga --targets 10 \
//!     --beta 0.05 --eta 0.2 --epsilon 0.5 --trials 5 --scale 0.1
//!
//! cargo run --release -p ldp-sim --bin ldp -- \
//!     repro --figure fig3 --scale small --json fig3.json
//! ```
//!
//! The default mode prints MSE (and FG for targeted attacks) for every
//! recovery arm — the full method comparison of the paper's Fig. 3/4 for
//! any parameter combination. `repro` drives the scenario catalog
//! (`ldp_sim::scenario::catalog`): one figure id or `all`, at a named
//! scale preset or an explicit fraction.

use ldp_attacks::AttackKind;
use ldp_common::{LdpError, Result};
use ldp_datasets::{DatasetKind, ScalePreset};
use ldp_protocols::ProtocolKind;
use ldp_sim::scenario::{catalog, run_scenario, RunScale, ScaleSpec};
use ldp_sim::table::{fmt_mean, fmt_stat};
use ldp_sim::{
    run_experiment, AggregationMode, ExperimentConfig, PipelineOptions, Table, DEFAULT_SEED,
};

const USAGE: &str = "\
ldp — run one LDPRecover experiment cell
ldp repro — reproduce whole paper figures (see `ldp repro --help`)

options:
  --dataset ipums|fire          workload                [ipums]
  --protocol grr|oue|olh|sue|hr LDP protocol            [grr]
  --attack manip|mga|mga-sampled|aa|aa-camo|mga-ipa|multi|none
                                poisoning attack        [aa]
  --targets N                   r for targeted attacks / |H| for manip [10]
  --attackers N                 attackers for `multi`   [5]
  --beta F                      malicious fraction      [0.05]
  --eta F                       recovery's assumed m/n  [0.2]
  --epsilon F                   privacy budget          [0.5]
  --trials N                    trials to average       [5]
  --scale F                     population scale (0,1]  [0.1]
  --seed N                      master seed             [0x1db05eed]
  --aggregation per-user|batched|auto
                                genuine-user aggregation [auto]
  --csv                         CSV output
  --help                        this text";

struct Args {
    dataset: DatasetKind,
    protocol: ProtocolKind,
    attack: Option<AttackKind>,
    targets: usize,
    attackers: usize,
    beta: f64,
    eta: f64,
    epsilon: f64,
    trials: usize,
    scale: f64,
    seed: u64,
    aggregation: AggregationMode,
    csv: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            dataset: DatasetKind::Ipums,
            protocol: ProtocolKind::Grr,
            attack: Some(AttackKind::Adaptive),
            targets: 10,
            attackers: 5,
            beta: 0.05,
            eta: 0.2,
            epsilon: 0.5,
            trials: 5,
            scale: 0.1,
            seed: 0x1DB0_5EED,
            aggregation: AggregationMode::Auto,
            csv: false,
        }
    }
}

fn parse_args<I: Iterator<Item = String>>(mut iter: I) -> Result<Args> {
    let mut args = Args::default();
    let mut attack_name = "aa".to_string();
    let mut explicit_none = false;
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String> {
            iter.next()
                .ok_or_else(|| LdpError::invalid(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--dataset" => {
                args.dataset = match value("--dataset")?.to_ascii_lowercase().as_str() {
                    "ipums" => DatasetKind::Ipums,
                    "fire" => DatasetKind::Fire,
                    other => return Err(LdpError::invalid(format!("unknown dataset '{other}'"))),
                };
            }
            "--protocol" => args.protocol = ProtocolKind::parse(&value("--protocol")?)?,
            "--attack" => {
                attack_name = value("--attack")?.to_ascii_lowercase();
                explicit_none = attack_name == "none";
            }
            "--targets" => args.targets = parse_num(&value("--targets")?, "--targets")?,
            "--attackers" => args.attackers = parse_num(&value("--attackers")?, "--attackers")?,
            "--beta" => args.beta = parse_f64(&value("--beta")?, "--beta")?,
            "--eta" => args.eta = parse_f64(&value("--eta")?, "--eta")?,
            "--epsilon" => args.epsilon = parse_f64(&value("--epsilon")?, "--epsilon")?,
            "--trials" => args.trials = parse_num(&value("--trials")?, "--trials")?,
            "--scale" => args.scale = parse_f64(&value("--scale")?, "--scale")?,
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")? as u64,
            "--aggregation" => {
                args.aggregation = AggregationMode::parse(&value("--aggregation")?)?;
            }
            "--csv" => args.csv = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(LdpError::invalid(format!("unknown flag '{other}'"))),
        }
    }
    args.attack = match attack_name.as_str() {
        "manip" => Some(AttackKind::Manip { h: args.targets }),
        "mga" => Some(AttackKind::Mga { r: args.targets }),
        "mga-sampled" => Some(AttackKind::MgaSampled { r: args.targets }),
        "aa" => Some(AttackKind::Adaptive),
        "aa-camo" => Some(AttackKind::AdaptiveCamouflaged),
        "mga-ipa" => Some(AttackKind::MgaIpa { r: args.targets }),
        "multi" => Some(AttackKind::MultiAdaptive {
            attackers: args.attackers,
        }),
        "none" => None,
        other => return Err(LdpError::invalid(format!("unknown attack '{other}'"))),
    };
    if explicit_none {
        args.beta = 0.0;
    }
    Ok(args)
}

fn parse_num(s: &str, flag: &str) -> Result<usize> {
    s.parse()
        .map_err(|e| LdpError::invalid(format!("{flag}: {e}")))
}

fn parse_f64(s: &str, flag: &str) -> Result<f64> {
    s.parse()
        .map_err(|e| LdpError::invalid(format!("{flag}: {e}")))
}

const REPRO_USAGE: &str = "\
ldp repro — reproduce the paper's figures from the scenario catalog

options:
  --figure ID|all               which figure (fig3..fig10, table1,
                                ablations, kv_extension)       [all]
  --scale small|paper|F         scale preset or fraction       [small]
  --trials N                    trials per cell    [preset default: 5/10]
  --seed N                      master seed              [0x1db05eed]
  --json PATH                   write JSON report(s); a directory when
                                several figures run
  --csv                         CSV tables
  --help                        this text";

/// Parsed `ldp repro` options.
struct ReproArgs {
    figure: String,
    scale: ScaleSpec,
    trials: Option<usize>,
    seed: u64,
    json: Option<std::path::PathBuf>,
    csv: bool,
}

fn parse_repro_args<I: Iterator<Item = String>>(mut iter: I) -> Result<ReproArgs> {
    let mut args = ReproArgs {
        figure: "all".to_string(),
        scale: ScaleSpec::Preset(ScalePreset::Small),
        trials: None,
        seed: DEFAULT_SEED,
        json: None,
        csv: false,
    };
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String> {
            iter.next()
                .ok_or_else(|| LdpError::invalid(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--figure" => args.figure = value("--figure")?.to_ascii_lowercase(),
            "--scale" => args.scale = ScaleSpec::parse(&value("--scale")?)?,
            "--trials" => args.trials = Some(parse_num(&value("--trials")?, "--trials")?),
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")? as u64,
            "--json" => args.json = Some(value("--json")?.into()),
            "--csv" => args.csv = true,
            "--help" | "-h" => {
                println!("{REPRO_USAGE}");
                std::process::exit(0);
            }
            other => return Err(LdpError::invalid(format!("unknown flag '{other}'"))),
        }
    }
    Ok(args)
}

impl ReproArgs {
    /// The engine scale: explicit `--trials` wins, otherwise the preset's
    /// default (5 for `small`, the paper's 10 otherwise).
    fn run_scale(&self) -> RunScale {
        let trials = self.trials.unwrap_or(match self.scale {
            ScaleSpec::Preset(preset) => preset.trials(),
            ScaleSpec::Fraction(_) => 10,
        });
        RunScale {
            trials,
            seed: self.seed,
            scale: self.scale,
        }
    }
}

fn repro_main<I: Iterator<Item = String>>(iter: I) -> Result<()> {
    let args = parse_repro_args(iter)?;
    let ids: Vec<&str> = if args.figure == "all" {
        catalog::FIGURE_IDS.to_vec()
    } else {
        // Resolve eagerly so an unknown figure fails before any work.
        catalog::scenario(&args.figure)?;
        vec![catalog::FIGURE_IDS
            .iter()
            .find(|id| **id == args.figure)
            .expect("scenario() accepted the id")]
    };
    let scale = args.run_scale();
    for id in &ids {
        let scenario = catalog::scenario(id)?;
        let report = run_scenario(&scenario, &scale)?;
        report.print(args.csv);
        if let Some(path) = &args.json {
            let written = report.write_json(path, ids.len() > 1)?;
            eprintln!("wrote {}", written.display());
        }
    }
    Ok(())
}

fn main() -> Result<()> {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("repro") {
        raw.next();
        return repro_main(raw);
    }
    let args = parse_args(raw)?;
    let mut config = ExperimentConfig::paper_default(args.dataset, args.protocol, args.attack);
    config.beta = if args.attack.is_some() {
        args.beta
    } else {
        0.0
    };
    config.eta = args.eta;
    config.epsilon = args.epsilon;
    config.trials = args.trials;
    config.scale = args.scale;
    config.seed = args.seed;
    config.validate()?;

    // Forcing batched aggregation is incompatible with the Detection arm
    // (it consumes raw reports), so that combination degrades to the
    // recovery-only arm set instead of erroring.
    let mut options = match (args.attack.is_some(), args.aggregation) {
        (true, AggregationMode::Batched) => {
            eprintln!("note: --aggregation batched retains no reports; skipping Detection");
            PipelineOptions::recovery_only()
        }
        (true, _) => PipelineOptions::full_comparison(),
        (false, _) => PipelineOptions::default(),
    };
    options.aggregation = args.aggregation;
    let result = run_experiment(&config, &options)?;

    println!(
        "cell {}  (dataset={}, eps={}, beta={}, eta={}, trials={}, scale={})\n",
        config.label(),
        args.dataset,
        args.epsilon,
        config.beta,
        args.eta,
        args.trials,
        args.scale
    );

    let mut table = Table::new(["metric", "before", "Detection", "LDPRecover", "LDPRecover*"]);
    table.push_row([
        "MSE".to_string(),
        fmt_mean(&result.mse_before),
        fmt_stat(&result.mse_detection),
        fmt_mean(&result.mse_recover),
        fmt_stat(&result.mse_star),
    ]);
    if result.fg_before.is_some() {
        table.push_row([
            "FG".to_string(),
            fmt_stat(&result.fg_before),
            fmt_stat(&result.fg_detection),
            fmt_stat(&result.fg_recover),
            fmt_stat(&result.fg_star),
        ]);
    }
    if args.csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
    println!(
        "\nnoise floor (genuine estimate MSE): {}",
        fmt_mean(&result.mse_genuine)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.dataset, DatasetKind::Ipums);
        assert_eq!(a.protocol, ProtocolKind::Grr);
        assert_eq!(a.attack, Some(AttackKind::Adaptive));
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "--dataset",
            "fire",
            "--protocol",
            "oue",
            "--attack",
            "mga",
            "--targets",
            "7",
            "--beta",
            "0.1",
            "--eta",
            "0.3",
            "--epsilon",
            "1.0",
            "--trials",
            "2",
            "--scale",
            "0.05",
            "--seed",
            "9",
            "--csv",
        ])
        .unwrap();
        assert_eq!(a.dataset, DatasetKind::Fire);
        assert_eq!(a.protocol, ProtocolKind::Oue);
        assert_eq!(a.attack, Some(AttackKind::Mga { r: 7 }));
        assert_eq!(a.beta, 0.1);
        assert!(a.csv);
    }

    #[test]
    fn attack_none_zeroes_beta() {
        let a = parse(&["--attack", "none"]).unwrap();
        assert!(a.attack.is_none());
        assert_eq!(a.beta, 0.0);
    }

    #[test]
    fn targets_apply_regardless_of_flag_order() {
        let a = parse(&["--attack", "mga", "--targets", "3"]).unwrap();
        assert_eq!(a.attack, Some(AttackKind::Mga { r: 3 }));
        let b = parse(&["--targets", "3", "--attack", "manip"]).unwrap();
        assert_eq!(b.attack, Some(AttackKind::Manip { h: 3 }));
    }

    #[test]
    fn rejects_unknown_inputs() {
        assert!(parse(&["--dataset", "census"]).is_err());
        assert!(parse(&["--attack", "ddos"]).is_err());
        assert!(parse(&["--beta"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--aggregation", "vectorized"]).is_err());
    }

    fn parse_repro(args: &[&str]) -> Result<ReproArgs> {
        parse_repro_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn repro_defaults_to_all_figures_at_small_scale() {
        let a = parse_repro(&[]).unwrap();
        assert_eq!(a.figure, "all");
        assert_eq!(a.scale, ScaleSpec::Preset(ScalePreset::Small));
        assert_eq!(a.run_scale().trials, ScalePreset::Small.trials());
        assert_eq!(a.run_scale().seed, DEFAULT_SEED);
    }

    #[test]
    fn repro_flags_parse() {
        let a = parse_repro(&[
            "--figure", "FIG3", "--scale", "paper", "--seed", "9", "--json", "out", "--csv",
        ])
        .unwrap();
        assert_eq!(a.figure, "fig3");
        assert_eq!(a.scale, ScaleSpec::Preset(ScalePreset::Paper));
        assert_eq!(a.run_scale().trials, 10, "paper preset default");
        assert_eq!(a.seed, 9);
        assert!(a.csv);
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("out")));
        // Explicit trials beat the preset default; fractions default to 10.
        let a = parse_repro(&["--trials", "2", "--scale", "0.1"]).unwrap();
        assert_eq!(a.run_scale().trials, 2);
        assert_eq!(
            parse_repro(&["--scale", "0.1"]).unwrap().run_scale().trials,
            10
        );
    }

    #[test]
    fn repro_rejects_bad_flags() {
        assert!(parse_repro(&["--scale", "huge"]).is_err());
        assert!(parse_repro(&["--figure"]).is_err());
        assert!(parse_repro(&["--frobnicate"]).is_err());
    }

    #[test]
    fn aggregation_flag_defaults_to_auto() {
        assert_eq!(parse(&[]).unwrap().aggregation, AggregationMode::Auto);
        assert_eq!(
            parse(&["--aggregation", "batched"]).unwrap().aggregation,
            AggregationMode::Batched
        );
        assert_eq!(
            parse(&["--aggregation", "per-user"]).unwrap().aggregation,
            AggregationMode::PerUser
        );
    }
}
