//! One evaluation trial: aggregation (expensive) + recovery arms (cheap).
//!
//! The split matters for the parameter sweeps: the η sweep of Fig. 5/6
//! re-runs only [`apply_recoveries`] on a shared [`TrialAggregates`], while
//! β and ε sweeps re-aggregate (the perturbation itself changes).

use ldp_common::{Domain, Result};
use ldp_protocols::{
    AnyProtocol, CountAccumulator, LdpFrequencyProtocol, ProtocolScratch, PureParams, Report,
};
use ldprecover::{top_k_increase, ArmContext, ArmOutcome, ArmOutput};
use rand::Rng;

use crate::config::{ExperimentConfig, PipelineOptions};

/// Per-user reports are perturbed and folded in chunks of this size, so
/// the accumulator's batch kernel (HR's FWHT) amortizes over thousands of
/// reports while the chunk buffer stays cache-resident. Perturbation
/// order — and hence every RNG draw — is identical to the report-at-a-time
/// loop.
const REPORT_CHUNK: usize = 4096;

/// Reusable per-worker scratch for trial execution: the genuine and
/// malicious count accumulators, the per-user report chunk buffer, and
/// the protocol transform workspace. One arena per worker thread
/// ([`crate::runner::map_trials_with`]) amortizes every per-trial
/// allocation that is not part of the returned results.
///
/// Threading an arena through [`run_trial_with`] never changes results:
/// all buffers are fully reset per trial and no kernel consumes
/// randomness (`arena_reuse_is_bitwise_invisible` pins this).
#[derive(Debug, Default)]
pub struct TrialArena {
    genuine_acc: Option<CountAccumulator>,
    malicious_acc: Option<CountAccumulator>,
    report_chunk: Vec<Report>,
    scratch: ProtocolScratch,
}

impl TrialArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resets the accumulator slot for `domain`, building it on first use.
fn reuse_acc(slot: &mut Option<CountAccumulator>, domain: Domain) -> &mut CountAccumulator {
    let acc = slot.get_or_insert_with(|| CountAccumulator::new(domain));
    acc.reset(domain);
    acc
}

/// The expensive half of a trial: everything up to the frequency estimates.
#[derive(Debug, Clone)]
pub struct TrialAggregates {
    /// The protocol instance (parameters feed the recovery arms).
    pub protocol: AnyProtocol,
    /// Ground-truth item frequencies `f_X` of the genuine population.
    pub true_freqs: Vec<f64>,
    /// Genuine aggregated estimate `f̃_X̃` (the FG baseline of Eq. 37).
    pub genuine_freqs: Vec<f64>,
    /// Poisoned aggregated estimate `f̃_Z`.
    pub poisoned_freqs: Vec<f64>,
    /// True malicious aggregated estimate `f̃_Y` (Fig. 7 ground truth);
    /// `None` without an attack.
    pub malicious_true_freqs: Option<Vec<f64>>,
    /// The attack's true target set, if targeted.
    pub attack_targets: Option<Vec<usize>>,
    /// Retained reports (genuine then malicious) when an arm needs them.
    pub reports: Option<Vec<Report>>,
    /// Number of genuine users `n`.
    pub genuine_count: usize,
    /// Number of malicious users `m`.
    pub malicious_count: usize,
}

impl TrialAggregates {
    /// Protocol parameters shorthand.
    pub fn params(&self) -> PureParams {
        self.protocol.params()
    }
}

/// Everything a trial produces, ready for metric extraction.
///
/// Defense outputs are open data: one `(metric key, output)` entry per
/// arm that ran and produced an estimate ([`ArmOutcome::Degenerate`] arms
/// land in [`TrialResult::degenerate`] instead). The typed accessors
/// ([`TrialResult::recovered`], [`TrialResult::detection`], …) preserve
/// the historical field names for the shipped arms.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Ground-truth frequencies `f_X`.
    pub true_freqs: Vec<f64>,
    /// Genuine aggregated estimate `f̃_X̃`.
    pub genuine: Vec<f64>,
    /// Poisoned aggregated estimate `f̃_Z` ("before recovery").
    pub poisoned: Vec<f64>,
    /// Every defense-arm output, keyed by metric key (`"recover"`,
    /// `"star"`, `"detection"`, …), in arm execution order.
    pub arms: Vec<(String, ArmOutput)>,
    /// Arms that hit a documented statistical degeneracy this trial:
    /// `(arm name, reason)`.
    pub degenerate: Vec<(String, String)>,
    /// True malicious aggregated frequencies `f̃_Y`, when attacked.
    pub malicious_true: Option<Vec<f64>>,
    /// The target set the partial-knowledge arms used (oracle targets for
    /// targeted attacks, top-k-increase identification otherwise).
    pub star_targets: Option<Vec<usize>>,
    /// The attack's true targets (FG measurement).
    pub attack_targets: Option<Vec<usize>>,
}

impl TrialResult {
    /// The output of the arm with the given metric key.
    pub fn arm(&self, key: &str) -> Option<&ArmOutput> {
        self.arms
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, output)| output)
    }

    /// An arm's recovered frequencies, by metric key.
    fn arm_frequencies(&self, key: &str) -> Option<&[f64]> {
        self.arm(key).map(|o| o.frequencies.as_slice())
    }

    /// LDPRecover output, when the `recover` arm ran.
    pub fn recovered(&self) -> Option<&[f64]> {
        self.arm_frequencies("recover")
    }

    /// LDPRecover\* output (partial knowledge), when run.
    pub fn recovered_star(&self) -> Option<&[f64]> {
        self.arm_frequencies("star")
    }

    /// Detection baseline output, when run and non-degenerate.
    pub fn detection(&self) -> Option<&[f64]> {
        self.arm_frequencies("detection")
    }

    /// k-means defense estimate, when configured.
    pub fn kmeans(&self) -> Option<&[f64]> {
        self.arm_frequencies("kmeans")
    }

    /// LDPRecover-KM output, when configured.
    pub fn recover_km(&self) -> Option<&[f64]> {
        self.arm_frequencies("recover_km")
    }

    /// LDPRecover's malicious estimate `f̃′_Y` (Fig. 7), when run.
    pub fn malicious_estimate(&self) -> Option<&[f64]> {
        self.arm("recover")?.malicious_estimate.as_deref()
    }

    /// LDPRecover\*'s malicious estimate `f̃*_Y` (Fig. 7), when run.
    pub fn malicious_estimate_star(&self) -> Option<&[f64]> {
        self.arm("star")?.malicious_estimate.as_deref()
    }
}

/// Runs the aggregation half of one trial.
///
/// The genuine population goes through one of two statistically equivalent
/// paths chosen by [`PipelineOptions::aggregation`]:
///
/// * **per-user** — materialize the dataset, then `perturb` + `accumulate`
///   each report (`O(n·d)`);
/// * **batched** — sample the population's count vector directly
///   (`DatasetKind::generate_counts`, one multinomial) and feed it to the
///   protocol's count sampler (`batch_aggregate`), so the whole genuine
///   half is `O(d)`–`O(d·log n)` for all five protocols — nothing `O(n)`
///   is ever materialized. This is what makes full-paper-scale sweeps
///   affordable.
///
/// Malicious reports are always crafted individually — the attack decides
/// their joint shape.
///
/// # Errors
/// Propagates configuration validation (including a forced `Batched` mode
/// combined with report-retaining arms), dataset generation, and
/// estimation failures.
pub fn run_aggregation<R: Rng>(
    config: &ExperimentConfig,
    options: &PipelineOptions,
    rng: &mut R,
) -> Result<TrialAggregates> {
    run_aggregation_with(config, options, rng, &mut TrialArena::new())
}

/// [`run_aggregation`] with a caller-owned [`TrialArena`]: bitwise
/// identical results, but accumulators, chunk buffers, and transform
/// scratch are reused across calls instead of reallocated per trial.
///
/// # Errors
/// Same contract as [`run_aggregation`].
pub fn run_aggregation_with<R: Rng>(
    config: &ExperimentConfig,
    options: &PipelineOptions,
    rng: &mut R,
    arena: &mut TrialArena,
) -> Result<TrialAggregates> {
    config.validate()?;
    if options.aggregation.use_batched(options.needs_reports())? {
        run_aggregation_batched(config, rng, arena)
    } else {
        run_aggregation_per_user(config, options, rng, arena)
    }
}

/// The per-user aggregation path: materialized dataset, one report per
/// genuine user, optional report retention. Reports are perturbed in
/// order but folded in [`REPORT_CHUNK`]-sized batches so HR's FWHT
/// kernel carries the accumulation.
fn run_aggregation_per_user<R: Rng>(
    config: &ExperimentConfig,
    options: &PipelineOptions,
    rng: &mut R,
    arena: &mut TrialArena,
) -> Result<TrialAggregates> {
    let dataset = config.dataset.generate(config.scale, rng)?;
    let domain = dataset.domain();
    let protocol = config.protocol.build(config.epsilon, domain)?;
    let n = dataset.len();
    let m = config.malicious_count(n);

    let mut reports: Option<Vec<Report>> =
        options.needs_reports().then(|| Vec::with_capacity(n + m));

    // Genuine users run Ψ, chunked: perturbation order (hence the RNG
    // stream) is exactly the one-report-at-a-time loop's.
    let genuine_acc = reuse_acc(&mut arena.genuine_acc, domain);
    let chunk = &mut arena.report_chunk;
    chunk.clear();
    for &item in dataset.items() {
        chunk.push(protocol.perturb(item as usize, rng));
        if chunk.len() == REPORT_CHUNK {
            genuine_acc.add_batch(&protocol, chunk);
            match reports.as_mut() {
                Some(buf) => buf.append(chunk),
                None => chunk.clear(),
            }
        }
    }
    genuine_acc.add_batch(&protocol, chunk);
    match reports.as_mut() {
        Some(buf) => buf.append(chunk),
        None => chunk.clear(),
    }

    finish_aggregation(
        config,
        protocol,
        dataset.true_frequencies(),
        reports,
        n,
        m,
        rng,
        arena,
    )
}

/// The batched aggregation path: population counts sampled directly, then
/// the protocol's count sampler. Falls back to a grouped per-user loop for
/// protocols whose `batch_aggregate` returns `None` (the trait default) —
/// never panics on them.
fn run_aggregation_batched<R: Rng>(
    config: &ExperimentConfig,
    rng: &mut R,
    arena: &mut TrialArena,
) -> Result<TrialAggregates> {
    let population = config.dataset.generate_counts(config.scale, rng)?;
    let domain = population.domain();
    let protocol = config.protocol.build(config.epsilon, domain)?;
    let n = population.len();
    let m = config.malicious_count(n);

    // Batched mode never retains reports, so only counts matter; protocols
    // without a count sampler fall back to the shared grouped loop.
    let genuine_counts = protocol
        .batch_aggregate_with(population.counts(), rng, &mut arena.scratch)
        .unwrap_or_else(|| {
            ldp_protocols::batch::grouped_support_counts(&protocol, population.counts(), rng)
        });
    arena.genuine_acc = Some(CountAccumulator::from_parts(genuine_counts, n));

    finish_aggregation(
        config,
        protocol,
        population.true_frequencies(),
        None,
        n,
        m,
        rng,
        arena,
    )
}

/// Shared tail of both aggregation paths: craft + fold in the malicious
/// reports, debias everything, assemble the [`TrialAggregates`]. The
/// genuine accumulator (already filled, in `arena`) becomes the poisoned
/// accumulator in place.
#[allow(clippy::too_many_arguments)]
fn finish_aggregation<R: Rng>(
    config: &ExperimentConfig,
    protocol: AnyProtocol,
    true_freqs: Vec<f64>,
    mut reports: Option<Vec<Report>>,
    n: usize,
    m: usize,
    rng: &mut R,
    arena: &mut TrialArena,
) -> Result<TrialAggregates> {
    let domain = protocol.domain();
    let params = protocol.params();
    let poisoned_acc = arena
        .genuine_acc
        .as_mut()
        .expect("aggregation filled the genuine accumulator");
    let genuine_freqs = poisoned_acc.frequencies(params)?;

    // Malicious users bypass Ψ (or, for IPA attacks, run it on adversarial
    // inputs — the attack decides).
    let (malicious_true_freqs, attack_targets) = if m > 0 {
        let attack_kind = config
            .attack
            .expect("validated: beta > 0 implies an attack");
        let attack = attack_kind.instantiate(domain, rng);
        let crafted = attack.craft(&protocol, m, rng);
        let malicious_acc = reuse_acc(&mut arena.malicious_acc, domain);
        malicious_acc.add_batch(&protocol, &crafted);
        poisoned_acc.merge(malicious_acc);
        let targets = attack.targets().map(<[usize]>::to_vec);
        if let Some(buf) = reports.as_mut() {
            buf.extend(crafted);
        }
        (Some(malicious_acc.frequencies(params)?), targets)
    } else {
        (None, None)
    };
    let poisoned_freqs = poisoned_acc.frequencies(params)?;

    Ok(TrialAggregates {
        protocol,
        true_freqs,
        genuine_freqs,
        poisoned_freqs,
        malicious_true_freqs,
        attack_targets,
        reports,
        genuine_count: n,
        malicious_count: m,
    })
}

/// Runs the selected defense arms on an aggregation.
///
/// Arms execute in canonical registry order through the open
/// [`ldprecover::DefenseArm`] surface; a documented statistical
/// degeneracy ([`ArmOutcome::Degenerate`], e.g. the detection baseline
/// flagging every report) skips that arm for the trial, while every real
/// error propagates and fails the trial.
///
/// # Errors
/// Propagates recovery validation and arm failures.
pub fn apply_recoveries<R: Rng>(
    aggregates: &TrialAggregates,
    eta: f64,
    options: &PipelineOptions,
    rng: &mut R,
) -> Result<TrialResult> {
    let params = aggregates.params();

    // Partial knowledge: oracle targets when the attack is targeted, the
    // paper's top-k-increase identification otherwise (the pre-attack
    // reference is the genuine estimate, standing in for the "historical
    // data" of §V-D). Computed once, shared by every target-consuming arm.
    let star_targets: Option<Vec<usize>> = if options.arms.needs_targets() {
        match &aggregates.attack_targets {
            Some(targets) => Some(targets.clone()),
            None if aggregates.malicious_count > 0 => top_k_increase(
                &aggregates.poisoned_freqs,
                &aggregates.genuine_freqs,
                options.star_top_k.max(1),
            )
            .ok(),
            None => None,
        }
    } else {
        None
    };

    let mut ctx = ArmContext::new(&aggregates.poisoned_freqs, params, eta)
        .with_protocol(&aggregates.protocol)
        .with_sum_model(options.sum_model)
        .with_post_process(options.post_process);
    if let Some(reports) = &aggregates.reports {
        ctx = ctx.with_reports(reports);
    }
    if let Some(targets) = &star_targets {
        ctx = ctx.with_targets(targets);
    }

    let mut arms: Vec<(String, ArmOutput)> = Vec::new();
    let mut degenerate: Vec<(String, String)> = Vec::new();
    for arm in options.arms.build(&options.kmeans) {
        match arm.run(&ctx, rng)? {
            ArmOutcome::Outputs(outputs) => arms.extend(outputs),
            ArmOutcome::Degenerate { reason } => {
                degenerate.push((arm.name().to_string(), reason));
            }
        }
    }

    Ok(TrialResult {
        true_freqs: aggregates.true_freqs.clone(),
        genuine: aggregates.genuine_freqs.clone(),
        poisoned: aggregates.poisoned_freqs.clone(),
        arms,
        degenerate,
        malicious_true: aggregates.malicious_true_freqs.clone(),
        star_targets,
        attack_targets: aggregates.attack_targets.clone(),
    })
}

/// Convenience: aggregation + recovery in one call.
///
/// # Errors
/// Propagates both halves.
pub fn run_trial<R: Rng>(
    config: &ExperimentConfig,
    options: &PipelineOptions,
    rng: &mut R,
) -> Result<TrialResult> {
    run_trial_with(config, options, rng, &mut TrialArena::new())
}

/// [`run_trial`] with a caller-owned [`TrialArena`] — the per-worker form
/// the experiment runner threads through
/// [`crate::runner::map_trials_with`].
///
/// # Errors
/// Propagates both halves.
pub fn run_trial_with<R: Rng>(
    config: &ExperimentConfig,
    options: &PipelineOptions,
    rng: &mut R,
    arena: &mut TrialArena,
) -> Result<TrialResult> {
    let aggregates = run_aggregation_with(config, options, rng, arena)?;
    apply_recoveries(&aggregates, config.eta, options, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_attacks::AttackKind;
    use ldp_common::rng::rng_from_seed;
    use ldp_common::vecmath::is_probability_vector;
    use ldp_datasets::DatasetKind;
    use ldp_protocols::ProtocolKind;

    fn small_config(attack: Option<AttackKind>) -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_default(DatasetKind::Ipums, ProtocolKind::Grr, attack);
        c.scale = 0.02; // ~7.8k genuine users: fast but statistically alive
        if attack.is_none() {
            c.beta = 0.0;
        }
        c
    }

    #[test]
    fn aggregation_shapes_and_counts() {
        let config = small_config(Some(AttackKind::Adaptive));
        let options = PipelineOptions::recovery_only();
        let mut rng = rng_from_seed(1);
        let agg = run_aggregation(&config, &options, &mut rng).unwrap();
        let d = 102;
        assert_eq!(agg.true_freqs.len(), d);
        assert_eq!(agg.genuine_freqs.len(), d);
        assert_eq!(agg.poisoned_freqs.len(), d);
        assert!(agg.reports.is_none(), "recovery-only retains no reports");
        assert!(agg.malicious_count > 0);
        let beta = agg.malicious_count as f64 / (agg.genuine_count + agg.malicious_count) as f64;
        assert!((beta - 0.05).abs() < 0.001);
        assert!(agg.malicious_true_freqs.is_some());
        assert!(agg.attack_targets.is_none(), "AA is untargeted");
    }

    #[test]
    fn unpoisoned_trial_has_no_malicious_artifacts() {
        let config = small_config(None);
        let mut rng = rng_from_seed(2);
        let result = run_trial(&config, &PipelineOptions::recovery_only(), &mut rng).unwrap();
        assert!(result.malicious_true.is_none());
        assert!(result.star_targets.is_none());
        assert!(result.recovered_star().is_none());
        // The star arm degenerates (nothing to know), it does not fail.
        assert!(result
            .degenerate
            .iter()
            .any(|(arm, _)| arm == "recover-star"));
        // Poisoned == genuine without an attack.
        assert_eq!(result.poisoned, result.genuine);
        assert!(is_probability_vector(result.recovered().unwrap(), 1e-9));
    }

    #[test]
    fn targeted_trial_produces_all_arms() {
        let mut config = small_config(Some(AttackKind::Mga { r: 10 }));
        config.protocol = ProtocolKind::Oue;
        let options = PipelineOptions::full_comparison();
        let mut rng = rng_from_seed(3);
        let result = run_trial(&config, &options, &mut rng).unwrap();
        assert!(is_probability_vector(result.recovered().unwrap(), 1e-9));
        let star = result.recovered_star().expect("star arm");
        assert!(is_probability_vector(star, 1e-9));
        assert!(result.detection().is_some(), "detection arm");
        assert!(result.malicious_estimate().is_some());
        assert!(result.malicious_estimate_star().is_some());
        assert_eq!(result.star_targets, result.attack_targets);
        assert_eq!(result.attack_targets.as_ref().unwrap().len(), 10);
    }

    #[test]
    fn untargeted_star_uses_top_k_identification() {
        let config = small_config(Some(AttackKind::Adaptive));
        let options = PipelineOptions::recovery_only();
        let mut rng = rng_from_seed(4);
        let result = run_trial(&config, &options, &mut rng).unwrap();
        let idented = result.star_targets.as_ref().expect("identified targets");
        assert_eq!(idented.len(), 5, "paper's r/2 = 5 rule");
        assert!(result.attack_targets.is_none());
    }

    #[test]
    fn recovery_beats_poisoning_on_average() {
        // The headline claim at miniature scale: MSE(recovered) <
        // MSE(poisoned) for an adaptive attack (averaged over trials to
        // damp noise).
        let config = small_config(Some(AttackKind::Adaptive));
        let options = PipelineOptions::recovery_only();
        let mut before = 0.0;
        let mut after = 0.0;
        for trial in 0..5u64 {
            let mut rng = rng_from_seed(100 + trial);
            let r = run_trial(&config, &options, &mut rng).unwrap();
            before += crate::metrics::mse(&r.poisoned, &r.true_freqs);
            after += crate::metrics::mse(r.recovered().unwrap(), &r.true_freqs);
        }
        assert!(
            after < before,
            "after={after}, before={before} (summed over 5 trials)"
        );
    }

    #[test]
    fn auto_mode_batches_exactly_when_reports_are_unneeded() {
        let config = small_config(Some(AttackKind::Adaptive));
        // recovery_only retains no reports → Auto takes the batched path;
        // the batched path draws far fewer RNG values than per-user, so
        // the two modes must diverge bitwise while both remaining valid.
        let batched_opts = PipelineOptions::recovery_only();
        let per_user_opts = PipelineOptions {
            aggregation: crate::config::AggregationMode::PerUser,
            ..PipelineOptions::recovery_only()
        };
        let mut rng_a = rng_from_seed(11);
        let mut rng_b = rng_from_seed(11);
        let a = run_aggregation(&config, &batched_opts, &mut rng_a).unwrap();
        let b = run_aggregation(&config, &per_user_opts, &mut rng_b).unwrap();
        assert_eq!(a.genuine_count, b.genuine_count);
        assert_ne!(
            a.genuine_freqs, b.genuine_freqs,
            "modes consume different RNG streams"
        );
        assert!(a.reports.is_none());
        assert!(b.reports.is_none(), "recovery_only never retains reports");
        // Both land within the same statistical envelope of the truth.
        let mse_a = crate::metrics::mse(&a.genuine_freqs, &a.true_freqs);
        let mse_b = crate::metrics::mse(&b.genuine_freqs, &b.true_freqs);
        assert!(
            mse_a < 10.0 * mse_b + 1e-6,
            "batched mse={mse_a}, per-user mse={mse_b}"
        );
        assert!(
            mse_b < 10.0 * mse_a + 1e-6,
            "batched mse={mse_a}, per-user mse={mse_b}"
        );
    }

    #[test]
    fn forced_batched_with_report_arms_is_rejected() {
        let config = small_config(Some(AttackKind::Mga { r: 5 }));
        let options = PipelineOptions {
            aggregation: crate::config::AggregationMode::Batched,
            ..PipelineOptions::full_comparison()
        };
        let mut rng = rng_from_seed(12);
        assert!(run_aggregation(&config, &options, &mut rng).is_err());
    }

    #[test]
    fn report_arms_force_per_user_under_auto() {
        let config = small_config(Some(AttackKind::Mga { r: 5 }));
        let options = PipelineOptions::full_comparison(); // Auto + Detection
        let mut rng = rng_from_seed(13);
        let agg = run_aggregation(&config, &options, &mut rng).unwrap();
        let reports = agg.reports.as_ref().expect("per-user path retains reports");
        assert_eq!(reports.len(), agg.genuine_count + agg.malicious_count);
    }

    #[test]
    fn arena_reuse_is_bitwise_invisible() {
        // One arena threaded across heterogeneous trials (different
        // protocols, attacks, aggregation modes — so every buffer is
        // dirty from the previous trial) must give exactly the results of
        // fresh arenas.
        let mut arena = TrialArena::new();
        let cases = [
            (ProtocolKind::Grr, Some(AttackKind::Adaptive), false),
            (ProtocolKind::Hr, Some(AttackKind::Adaptive), false),
            (ProtocolKind::Hr, None, true),
            (ProtocolKind::Oue, Some(AttackKind::Mga { r: 10 }), true),
            (ProtocolKind::Hr, Some(AttackKind::Adaptive), true),
        ];
        for (seed, &(kind, attack, per_user)) in cases.iter().enumerate() {
            let mut config = small_config(attack);
            config.protocol = kind;
            let options = if per_user {
                PipelineOptions {
                    aggregation: crate::config::AggregationMode::PerUser,
                    ..PipelineOptions::recovery_only()
                }
            } else {
                PipelineOptions::recovery_only()
            };
            let mut rng_a = rng_from_seed(700 + seed as u64);
            let mut rng_b = rng_from_seed(700 + seed as u64);
            let reused = run_trial_with(&config, &options, &mut rng_a, &mut arena).unwrap();
            let fresh = run_trial(&config, &options, &mut rng_b).unwrap();
            assert_eq!(reused.poisoned, fresh.poisoned, "case {seed}");
            assert_eq!(reused.genuine, fresh.genuine, "case {seed}");
            assert_eq!(reused.recovered(), fresh.recovered(), "case {seed}");
        }
    }

    #[test]
    fn eta_sweep_reuses_aggregation() {
        let config = small_config(Some(AttackKind::Adaptive));
        let options = PipelineOptions::recovery_only();
        let mut rng = rng_from_seed(5);
        let agg = run_aggregation(&config, &options, &mut rng).unwrap();
        let r1 = apply_recoveries(&agg, 0.05, &options, &mut rng).unwrap();
        let r2 = apply_recoveries(&agg, 0.4, &options, &mut rng).unwrap();
        // Same aggregation, different recovery knobs.
        assert_eq!(r1.poisoned, r2.poisoned);
        assert_ne!(r1.recovered().unwrap(), r2.recovered().unwrap());
    }

    #[test]
    fn open_arm_selection_runs_the_normalization_baselines() {
        let config = small_config(Some(AttackKind::Adaptive));
        let options = PipelineOptions::with_arms(
            ldprecover::ArmSet::parse("recover,norm-sub,base-cut").unwrap(),
        );
        assert!(
            !options.needs_reports(),
            "normalization arms are count-only"
        );
        let mut rng = rng_from_seed(21);
        let result = run_trial(&config, &options, &mut rng).unwrap();
        let keys: Vec<&str> = result.arms.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["recover", "norm_sub", "base_cut"]);
        for (key, output) in &result.arms {
            assert!(
                is_probability_vector(&output.frequencies, 1e-9),
                "{key} must land on the simplex"
            );
        }
        // The baselines are pure refinements of the poisoned estimate.
        assert_eq!(
            result.arm("norm_sub").unwrap().frequencies,
            ldprecover::solve::norm_sub(&result.poisoned)
        );
        assert_eq!(
            result.arm("base_cut").unwrap().frequencies,
            ldprecover::solve::base_cut(&result.poisoned)
        );
    }
}
