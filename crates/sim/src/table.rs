//! Fixed-width text tables and CSV output for the experiment binaries.
//!
//! Hand-rolled (no external table/serialization-format crates — see the
//! dependency policy in DESIGN.md §3): the binaries print the same rows and
//! series the paper's tables and figures report, plus optional CSV for
//! downstream plotting.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded / truncated to the header width).
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows (each padded to the header width).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, &w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..w {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas, quotes,
    /// or CR/LF line breaks).
    pub fn render_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// Formats an optional statistic for table cells (`-` when absent).
pub fn fmt_stat(stat: &Option<crate::metrics::Stats>) -> String {
    match stat {
        Some(s) => format!("{:.3e}", s.mean),
        None => "-".to_string(),
    }
}

/// Formats a required statistic.
pub fn fmt_mean(stat: &crate::metrics::Stats) -> String {
    format!("{:.3e}", stat.mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Stats;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["attack", "MSE"]);
        t.push_row(["MGA-GRR", "1.2e-3"]);
        t.push_row(["AA-OLH-long-name", "9.9e-4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("attack"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Both data rows align the second column at the same offset.
        let off2 = lines[2].find("1.2e-3").unwrap();
        let off3 = lines[3].find("9.9e-4").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn short_rows_padded_and_len_tracked() {
        let mut t = Table::new(["a", "b", "c"]);
        t.push_row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('x'));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["name", "value"]);
        t.push_row(["with,comma", "with\"quote"]);
        let csv = t.render_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn stat_formatting() {
        let s = Stats {
            mean: 0.00123,
            std: 0.0001,
            count: 10,
        };
        assert_eq!(fmt_mean(&s), "1.230e-3");
        assert_eq!(fmt_stat(&Some(s)), "1.230e-3");
        assert_eq!(fmt_stat(&None), "-");
    }
}
