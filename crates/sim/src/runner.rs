//! Multi-trial experiment execution.
//!
//! Each trial gets an independent RNG stream derived from the master seed
//! (`derive_seed(seed, trial)`), so experiments are reproducible and
//! individual trials can be re-run in isolation.

use ldp_common::rng::{derive_seed, rng_from_seed};
use ldp_common::Result;

use crate::config::{ExperimentConfig, PipelineOptions};
use crate::metrics::{frequency_gain, mse, Stats};
use crate::pipeline::{apply_recoveries, run_aggregation_with, TrialResult};

/// Summary statistics of one defense arm over an experiment's trials.
///
/// Derived generically from [`TrialResult::arms`]: `mse` for every arm,
/// `fg` when the arm tracks frequency gain and the attack is targeted,
/// `malicious_mse` when the arm exposes a malicious-estimate side channel
/// and ground truth exists.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmStats {
    /// MSE of the arm's recovered frequencies vs ground truth.
    pub mse: Option<Stats>,
    /// FG of the arm's output (targeted attacks only).
    pub fg: Option<Stats>,
    /// MSE of the arm's malicious estimate vs the true `f̃_Y` (Fig. 7).
    pub malicious_mse: Option<Stats>,
}

/// Per-method MSE / FG summaries for one experiment cell.
///
/// The baseline statistics keep their historical fields; every defense
/// arm's statistics live in [`ExperimentResult::arms`], keyed by metric
/// key, with typed accessors ([`ExperimentResult::mse_recover`], …)
/// preserving the old names for the shipped arms.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// MSE of the *genuine* (unpoisoned) estimate — the LDP noise floor.
    pub mse_genuine: Stats,
    /// MSE of the poisoned estimate ("before recovery").
    pub mse_before: Stats,
    /// FG of the poisoned estimate (targeted attacks only).
    pub fg_before: Option<Stats>,
    /// Per-arm summaries, keyed by metric key, in arm execution order.
    pub arms: Vec<(String, ArmStats)>,
}

impl ExperimentResult {
    /// The summary of the arm with the given metric key.
    pub fn arm(&self, key: &str) -> Option<&ArmStats> {
        self.arms
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, stats)| stats)
    }

    /// MSE of LDPRecover, when run.
    pub fn mse_recover(&self) -> Option<Stats> {
        self.arm("recover").and_then(|a| a.mse)
    }

    /// MSE of LDPRecover\*, when run.
    pub fn mse_star(&self) -> Option<Stats> {
        self.arm("star").and_then(|a| a.mse)
    }

    /// MSE of the Detection baseline, when run.
    pub fn mse_detection(&self) -> Option<Stats> {
        self.arm("detection").and_then(|a| a.mse)
    }

    /// MSE of the k-means defense, when configured.
    pub fn mse_kmeans(&self) -> Option<Stats> {
        self.arm("kmeans").and_then(|a| a.mse)
    }

    /// MSE of LDPRecover-KM, when configured.
    pub fn mse_recover_km(&self) -> Option<Stats> {
        self.arm("recover_km").and_then(|a| a.mse)
    }

    /// FG after LDPRecover.
    pub fn fg_recover(&self) -> Option<Stats> {
        self.arm("recover").and_then(|a| a.fg)
    }

    /// FG after LDPRecover\*.
    pub fn fg_star(&self) -> Option<Stats> {
        self.arm("star").and_then(|a| a.fg)
    }

    /// FG after Detection.
    pub fn fg_detection(&self) -> Option<Stats> {
        self.arm("detection").and_then(|a| a.fg)
    }

    /// MSE of LDPRecover's malicious estimate vs the true `f̃_Y` (Fig. 7).
    pub fn malicious_mse_recover(&self) -> Option<Stats> {
        self.arm("recover").and_then(|a| a.malicious_mse)
    }

    /// MSE of LDPRecover\*'s malicious estimate vs the true `f̃_Y` (Fig. 7).
    pub fn malicious_mse_star(&self) -> Option<Stats> {
        self.arm("star").and_then(|a| a.malicious_mse)
    }
}

/// Accumulates one arm's per-trial metric values before summarizing.
#[derive(Default)]
struct ArmBuffers {
    mse: Vec<f64>,
    fg: Vec<f64>,
    malicious_mse: Vec<f64>,
}

/// Accumulates per-trial metric values before summarizing.
#[derive(Default)]
struct MetricBuffers {
    mse_genuine: Vec<f64>,
    mse_before: Vec<f64>,
    fg_before: Vec<f64>,
    /// Per-arm buffers in first-seen order (deterministic: arms execute
    /// in canonical registry order every trial).
    arms: Vec<(String, ArmBuffers)>,
}

impl MetricBuffers {
    fn arm_buffers(&mut self, key: &str) -> &mut ArmBuffers {
        if let Some(index) = self.arms.iter().position(|(k, _)| k == key) {
            return &mut self.arms[index].1;
        }
        self.arms.push((key.to_string(), ArmBuffers::default()));
        &mut self.arms.last_mut().expect("just pushed").1
    }

    fn push_trial(&mut self, r: &TrialResult) -> Result<()> {
        let truth = &r.true_freqs;
        self.mse_genuine.push(mse(&r.genuine, truth));
        self.mse_before.push(mse(&r.poisoned, truth));

        // FG only for attacks with true targets (Eq. 37 needs T).
        if let Some(targets) = &r.attack_targets {
            self.fg_before
                .push(frequency_gain(&r.poisoned, &r.genuine, targets)?);
        }

        for (key, output) in &r.arms {
            // Derive eagerly, push late: a failing FG must not leave the
            // arm's buffers half-updated.
            let fg = match (&r.attack_targets, output.track_fg) {
                (Some(targets), true) => {
                    Some(frequency_gain(&output.frequencies, &r.genuine, targets)?)
                }
                _ => None,
            };
            let malicious_mse = match (&r.malicious_true, &output.malicious_estimate) {
                (Some(mal_true), Some(estimate)) => Some(mse(estimate, mal_true)),
                _ => None,
            };
            let buffers = self.arm_buffers(key);
            buffers.mse.push(mse(&output.frequencies, truth));
            if let Some(fg) = fg {
                buffers.fg.push(fg);
            }
            if let Some(mal) = malicious_mse {
                buffers.malicious_mse.push(mal);
            }
        }
        Ok(())
    }

    fn summarize(self, config: ExperimentConfig) -> ExperimentResult {
        ExperimentResult {
            config,
            mse_genuine: Stats::from_values(&self.mse_genuine),
            mse_before: Stats::from_values(&self.mse_before),
            fg_before: Stats::from_optional(&self.fg_before),
            arms: self
                .arms
                .into_iter()
                .map(|(key, buffers)| {
                    (
                        key,
                        ArmStats {
                            mse: Stats::from_optional(&buffers.mse),
                            fg: Stats::from_optional(&buffers.fg),
                            malicious_mse: Stats::from_optional(&buffers.malicious_mse),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Runs `config.trials` independent trials and summarizes every metric.
///
/// Trials run on `min(available cores, trials)` threads. Every trial owns
/// an RNG stream derived from `(seed, trial)` and results are folded in
/// trial order, so the summary is bit-identical regardless of thread count
/// (verified by `parallelism_does_not_change_results`).
///
/// # Errors
/// Propagates the first trial failure (configuration errors surface on
/// trial 0; statistical degeneracies inside optional arms are tolerated by
/// the pipeline itself).
pub fn run_experiment(
    config: &ExperimentConfig,
    options: &PipelineOptions,
) -> Result<ExperimentResult> {
    config.validate()?;
    let results = map_trials_with(
        config.trials,
        thread_count(config.trials),
        crate::pipeline::TrialArena::new,
        |trial, arena| {
            let mut rng = rng_from_seed(derive_seed(config.seed, trial as u64));
            crate::pipeline::run_trial_with(config, options, &mut rng, arena)
        },
    )?;
    let mut buffers = MetricBuffers::default();
    for result in &results {
        buffers.push_trial(result)?;
    }
    Ok(buffers.summarize(config.clone()))
}

/// Worker count for a trial batch: `min(available cores, trials)`.
pub(crate) fn thread_count(trials: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(trials)
        .max(1)
}

/// Runs `run(trial)` for every trial index, fanned across `threads`
/// workers, with results returned in trial order — the shared machinery of
/// [`run_experiment`], [`run_eta_sweep`], and the scenario engine
/// (`crate::scenario`), which fans both whole cells and custom-cell trials
/// through it. Every job owns a caller-derived RNG stream, so the output
/// is bit-identical for any `threads` (verified by
/// `parallelism_does_not_change_results`).
///
/// # Errors
/// Propagates the first job failure, in job order.
pub fn map_trials<T, F>(trials: usize, threads: usize, run: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    map_trials_with(trials, threads, || (), |trial, ()| run(trial))
}

/// [`map_trials`] with per-worker mutable state: `init()` runs once on
/// each worker thread and the resulting state is threaded through every
/// job that worker claims — the hook the experiment runner uses to reuse
/// one [`crate::pipeline::TrialArena`] per worker across its trials.
/// State must never leak between jobs in a result-visible way; arena
/// reuse is pinned bitwise by `parallelism_does_not_change_results` and
/// `arena_reuse_is_bitwise_invisible`.
///
/// Scheduling is a single shared atomic counter: one `fetch_add` per
/// trial. At paper scale a trial costs milliseconds to seconds, so the
/// handoff is ~6 orders of magnitude below the work it dispatches —
/// measured at ~10 ns per contended claim (4 threads) against ~9 ms per
/// trial (n ≈ 10⁵ per-user HR aggregation with the FWHT readoff) —
/// which is why trials are not chunked.
///
/// # Errors
/// Propagates the first job failure, in job order.
pub fn map_trials_with<T, S, I, F>(trials: usize, threads: usize, init: I, run: F) -> Result<Vec<T>>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> Result<T> + Sync,
{
    if threads <= 1 {
        let mut state = init();
        return (0..trials).map(|trial| run(trial, &mut state)).collect();
    }
    let mut slots: Vec<Option<Result<T>>> = Vec::new();
    slots.resize_with(trials, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<Result<T>>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let trial = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if trial >= trials {
                        break;
                    }
                    let result = run(trial, &mut state);
                    **slot_refs[trial].lock().expect("slot lock") = Some(result);
                }
            });
        }
    });
    drop(slot_refs);
    slots
        .into_iter()
        .map(|slot| slot.expect("every trial slot filled"))
        .collect()
}

/// Runs an η sweep reusing one aggregation per trial (the recovery half is
/// ~10⁴× cheaper than the aggregation half at paper scale), fanned across
/// cores by the same machinery as [`run_experiment`].
///
/// Every `(trial, η)` cell gets its own RNG stream: a clone of the trial
/// RNG taken right after aggregation — exactly the state a standalone
/// [`run_experiment`] at that η would hand to the recovery arms. Cells are
/// therefore bit-identical to standalone runs and independent of which
/// *other* η values share the sweep (regression-tested by
/// `eta_sweep_cells_match_standalone_runs`; threading one RNG through all
/// ηs used to couple the k-means arm across cells).
///
/// Returns one [`ExperimentResult`] per η, each over `config.trials` trials.
///
/// # Errors
/// Propagates trial failures.
pub fn run_eta_sweep(
    config: &ExperimentConfig,
    etas: &[f64],
    options: &PipelineOptions,
) -> Result<Vec<ExperimentResult>> {
    config.validate()?;
    let per_trial: Vec<Vec<TrialResult>> = map_trials_with(
        config.trials,
        thread_count(config.trials),
        crate::pipeline::TrialArena::new,
        |trial, arena| {
            let mut rng = rng_from_seed(derive_seed(config.seed, trial as u64));
            let aggregates = run_aggregation_with(config, options, &mut rng, arena)?;
            etas.iter()
                .map(|&eta| {
                    let mut eta_rng = rng.clone();
                    apply_recoveries(&aggregates, eta, options, &mut eta_rng)
                })
                .collect()
        },
    )?;
    let mut buffers: Vec<MetricBuffers> = etas.iter().map(|_| MetricBuffers::default()).collect();
    for trial_results in &per_trial {
        for (buffer, result) in buffers.iter_mut().zip(trial_results) {
            buffer.push_trial(result)?;
        }
    }
    Ok(buffers
        .into_iter()
        .zip(etas)
        .map(|(buffer, &eta)| {
            let mut cfg = config.clone();
            cfg.eta = eta;
            buffer.summarize(cfg)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_attacks::AttackKind;
    use ldp_datasets::DatasetKind;
    use ldp_protocols::ProtocolKind;

    fn quick_config(attack: Option<AttackKind>) -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_default(DatasetKind::Ipums, ProtocolKind::Grr, attack);
        c.scale = 0.01;
        c.trials = 3;
        if attack.is_none() {
            c.beta = 0.0;
        }
        c
    }

    #[test]
    fn experiment_summarizes_all_trials() {
        let config = quick_config(Some(AttackKind::MgaSampled { r: 5 }));
        let options = PipelineOptions::full_comparison();
        let result = run_experiment(&config, &options).unwrap();
        assert_eq!(result.mse_before.count, 3);
        assert_eq!(result.mse_recover().expect("recover ran").count, 3);
        assert!(result.mse_star().is_some());
        assert!(result.fg_before.is_some());
        assert!(result.malicious_mse_recover().is_some());
        assert!(result.malicious_mse_star().is_some());
    }

    #[test]
    fn unpoisoned_experiment_skips_attack_metrics() {
        let config = quick_config(None);
        let result = run_experiment(&config, &PipelineOptions::default()).unwrap();
        assert!(result.fg_before.is_none());
        assert!(result.malicious_mse_recover().is_none());
        assert!(result.mse_star().is_none());
    }

    #[test]
    fn experiments_are_reproducible() {
        let config = quick_config(Some(AttackKind::Adaptive));
        let options = PipelineOptions::recovery_only();
        let a = run_experiment(&config, &options).unwrap();
        let b = run_experiment(&config, &options).unwrap();
        assert_eq!(a.mse_before.mean, b.mse_before.mean);
        assert_eq!(a.mse_recover().unwrap().mean, b.mse_recover().unwrap().mean);
    }

    #[test]
    fn parallelism_does_not_change_results() {
        // Per-trial seed derivation + ordered folding make the parallel
        // path bit-identical to the sequential one.
        let config = quick_config(Some(AttackKind::Adaptive));
        let options = PipelineOptions::recovery_only();
        let run = |trial: usize| {
            let mut rng = rng_from_seed(derive_seed(config.seed, trial as u64));
            crate::pipeline::run_trial(&config, &options, &mut rng)
        };
        let parallel = map_trials(config.trials, 3, run).unwrap();
        let sequential = map_trials(config.trials, 1, run).unwrap();
        for (a, b) in parallel.iter().zip(&sequential) {
            assert_eq!(a.poisoned, b.poisoned);
            assert_eq!(a.recovered(), b.recovered());
        }
    }

    #[test]
    fn eta_sweep_produces_one_result_per_eta() {
        let config = quick_config(Some(AttackKind::Adaptive));
        let options = PipelineOptions::recovery_only();
        let etas = [0.01, 0.1, 0.4];
        let results = run_eta_sweep(&config, &etas, &options).unwrap();
        assert_eq!(results.len(), 3);
        for (r, &eta) in results.iter().zip(&etas) {
            assert_eq!(r.config.eta, eta);
            // All sweep points share the same aggregations.
            assert_eq!(r.mse_before.mean, results[0].mse_before.mean);
        }
        // Different η ⇒ different recovery error.
        assert_ne!(
            results[0].mse_recover().unwrap().mean,
            results[2].mse_recover().unwrap().mean
        );
    }

    #[test]
    fn eta_sweep_cells_match_standalone_runs() {
        // The RNG-coupling regression: with an rng-consuming arm (k-means)
        // configured, each (trial, η) cell must be bit-identical to a
        // standalone run_experiment at that η — in particular independent
        // of which *other* η values share the sweep. The old code threaded
        // one RNG through every η in sequence, so a cell's k-means draws
        // depended on its position in the grid.
        let mut config = quick_config(Some(AttackKind::MgaIpa { r: 5 }));
        config.trials = 2;
        let options = PipelineOptions::with_arms(ldprecover::ArmSet::new([
            ldprecover::ArmKind::Recover,
            ldprecover::ArmKind::Kmeans,
            ldprecover::ArmKind::RecoverKm,
        ]));
        let etas = [0.05, 0.2, 0.4];
        let swept = run_eta_sweep(&config, &etas, &options).unwrap();
        for (cell, &eta) in swept.iter().zip(&etas) {
            let mut standalone_cfg = config.clone();
            standalone_cfg.eta = eta;
            let standalone = run_experiment(&standalone_cfg, &options).unwrap();
            assert_eq!(
                cell.mse_recover().unwrap().mean.to_bits(),
                standalone.mse_recover().unwrap().mean.to_bits(),
                "eta={eta}: recover"
            );
            let (a, b) = (cell.mse_kmeans().unwrap(), standalone.mse_kmeans().unwrap());
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "eta={eta}: k-means");
            let (a, b) = (
                cell.mse_recover_km().unwrap(),
                standalone.mse_recover_km().unwrap(),
            );
            assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "eta={eta}: recover-KM");
        }
        // And the sweep order must not matter: reversing the grid yields
        // the same per-η cells.
        let reversed: Vec<f64> = etas.iter().rev().copied().collect();
        let swept_rev = run_eta_sweep(&config, &reversed, &options).unwrap();
        for (fwd, rev) in swept.iter().zip(swept_rev.iter().rev()) {
            assert_eq!(
                fwd.mse_recover_km().unwrap().mean.to_bits(),
                rev.mse_recover_km().unwrap().mean.to_bits(),
                "eta={}: grid order leaked into the cell",
                fwd.config.eta
            );
        }
    }

    #[test]
    fn batched_and_per_user_experiments_agree_statistically() {
        // Same config, both aggregation modes, means within a loose
        // envelope of each other (they share no RNG draws, so only the
        // distribution can agree).
        let mut config = quick_config(Some(AttackKind::Adaptive));
        config.trials = 6;
        let batched = PipelineOptions {
            aggregation: crate::config::AggregationMode::Batched,
            ..PipelineOptions::default()
        };
        let per_user = PipelineOptions {
            aggregation: crate::config::AggregationMode::PerUser,
            ..PipelineOptions::default()
        };
        let a = run_experiment(&config, &batched).unwrap();
        let b = run_experiment(&config, &per_user).unwrap();
        for (x, y, what) in [
            (&a.mse_genuine, &b.mse_genuine, "genuine"),
            (&a.mse_before, &b.mse_before, "before"),
        ] {
            let spread = x.std.max(y.std).max(1e-9);
            assert!(
                (x.mean - y.mean).abs() < 8.0 * spread,
                "{what}: batched {} vs per-user {}",
                x.mean,
                y.mean
            );
        }
    }
}
