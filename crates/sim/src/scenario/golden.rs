//! Golden statistical regression gates.
//!
//! A [`Golden`] snapshot pins every cell metric of one scenario at a fixed
//! `(preset, trials, seed)`: the blessed mean plus a tolerance band
//! derived from the standard error of the mean at bless time. Because the
//! whole pipeline is deterministic per seed, an unchanged tree reproduces
//! the blessed means *exactly*; the band exists so that legitimate
//! refactors — ones that reorder RNG draws or re-associate floating-point
//! sums without changing any distribution — still pass, while genuine
//! statistical regressions (a broken estimator, a mis-scaled attack) land
//! far outside it.
//!
//! Regeneration is deliberate, never implicit:
//! `LDP_BLESS_GOLDENS=1 cargo test --test golden_repro` rewrites the
//! checked-in files (see `tests/golden_repro.rs`).

use ldp_common::{LdpError, Result};

use crate::scenario::json::Json;
use crate::scenario::report::ScenarioReport;

/// Multiplier on the SEM for the tolerance band: wide enough for an
/// RNG-stream refactor (which re-rolls the noise, moving each mean by
/// `O(√2·SEM)`), narrow enough that an order-of-magnitude regression — the
/// scale of every effect in the paper — cannot hide inside it.
const SEM_BAND: f64 = 8.0;

/// Relative floor of the band, covering metrics whose trial spread is
/// degenerate (e.g. a deterministic custom metric) against pure
/// floating-point re-association.
const REL_FLOOR: f64 = 1e-6;

/// Absolute floor of the band (means that are exactly zero).
const ABS_FLOOR: f64 = 1e-12;

/// A blessed snapshot of one scenario's cell metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Golden {
    /// The scenario id this snapshot gates.
    pub figure: String,
    /// Trials per cell at bless time.
    pub trials: usize,
    /// Master seed at bless time.
    pub seed: u64,
    /// Scale label at bless time (`"small"`).
    pub scale: String,
    /// One entry per `(cell, metric)`.
    pub entries: Vec<GoldenEntry>,
}

/// One gated cell metric.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenEntry {
    /// Cell id.
    pub cell: String,
    /// Metric name.
    pub metric: String,
    /// Blessed mean.
    pub mean: f64,
    /// Half-width of the acceptance band.
    pub tol: f64,
}

impl Golden {
    /// Snapshots a report, deriving each entry's band from its SEM.
    pub fn from_report(report: &ScenarioReport) -> Self {
        let entries = report
            .cells
            .iter()
            .flat_map(|cell| {
                cell.metrics.iter().map(|(metric, stats)| GoldenEntry {
                    cell: cell.id.clone(),
                    metric: metric.clone(),
                    mean: stats.mean,
                    tol: (SEM_BAND * stats.sem())
                        .max(REL_FLOOR * stats.mean.abs())
                        .max(ABS_FLOOR),
                })
            })
            .collect();
        Self {
            figure: report.id.clone(),
            trials: report.trials,
            seed: report.seed,
            scale: report.scale_label.clone(),
            entries,
        }
    }

    /// Compares a fresh report against this snapshot. Returns every
    /// violation (empty = pass): settings drift, missing or extra cell
    /// metrics, and out-of-band means.
    pub fn compare(&self, report: &ScenarioReport) -> Vec<String> {
        let mut violations = Vec::new();
        if report.id != self.figure {
            violations.push(format!(
                "figure mismatch: golden '{}' vs report '{}'",
                self.figure, report.id
            ));
        }
        if report.trials != self.trials || report.seed != self.seed {
            violations.push(format!(
                "settings drift: golden trials={} seed={:#x} vs report trials={} seed={:#x}",
                self.trials, self.seed, report.trials, report.seed
            ));
        }
        if report.scale_label != self.scale {
            violations.push(format!(
                "scale drift: golden '{}' vs report '{}'",
                self.scale, report.scale_label
            ));
        }
        for entry in &self.entries {
            match report.metric(&entry.cell, &entry.metric) {
                None => violations.push(format!(
                    "{} / {}: metric vanished (blessed mean {:.6e})",
                    entry.cell, entry.metric, entry.mean
                )),
                Some(stats) => {
                    // NaN deltas (a NaN mean on either side) must fail.
                    let delta = (stats.mean - entry.mean).abs();
                    if delta.is_nan() || delta > entry.tol {
                        violations.push(format!(
                            "{} / {}: mean {:.6e} outside {:.6e} ± {:.2e} (Δ = {:.2e})",
                            entry.cell, entry.metric, stats.mean, entry.mean, entry.tol, delta
                        ));
                    }
                }
            }
        }
        // Metrics the golden has never seen: the snapshot is stale.
        for cell in &report.cells {
            for (metric, _) in &cell.metrics {
                if !self
                    .entries
                    .iter()
                    .any(|e| e.cell == cell.id && &e.metric == metric)
                {
                    violations.push(format!(
                        "{} / {metric}: new metric not in golden (re-bless)",
                        cell.id
                    ));
                }
            }
        }
        violations
    }

    /// Serializes to the checked-in JSON form.
    pub fn to_json(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("cell".into(), Json::Str(e.cell.clone())),
                    ("metric".into(), Json::Str(e.metric.clone())),
                    ("mean".into(), Json::Num(e.mean)),
                    ("tol".into(), Json::Num(e.tol)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("figure".into(), Json::Str(self.figure.clone())),
            ("trials".into(), Json::Num(self.trials as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("scale".into(), Json::Str(self.scale.clone())),
            ("cells".into(), Json::Arr(entries)),
        ])
    }

    /// Parses the checked-in JSON form.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for malformed JSON or missing
    /// fields.
    pub fn parse(text: &str) -> Result<Self> {
        let json = Json::parse(text)?;
        let str_field = |key: &str| -> Result<String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| LdpError::invalid(format!("golden: missing string '{key}'")))
        };
        let num_field = |key: &str| -> Result<f64> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| LdpError::invalid(format!("golden: missing number '{key}'")))
        };
        let mut entries = Vec::new();
        for item in json
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| LdpError::invalid("golden: missing 'cells' array"))?
        {
            let field = |key: &str| {
                item.get(key)
                    .ok_or_else(|| LdpError::invalid(format!("golden cell: missing '{key}'")))
            };
            entries.push(GoldenEntry {
                cell: field("cell")?
                    .as_str()
                    .ok_or_else(|| LdpError::invalid("golden cell: 'cell' not a string"))?
                    .to_string(),
                metric: field("metric")?
                    .as_str()
                    .ok_or_else(|| LdpError::invalid("golden cell: 'metric' not a string"))?
                    .to_string(),
                mean: field("mean")?
                    .as_f64()
                    .ok_or_else(|| LdpError::invalid("golden cell: 'mean' not a number"))?,
                tol: field("tol")?
                    .as_f64()
                    .ok_or_else(|| LdpError::invalid("golden cell: 'tol' not a number"))?,
            });
        }
        Ok(Self {
            figure: str_field("figure")?,
            trials: num_field("trials")? as usize,
            seed: num_field("seed")? as u64,
            scale: str_field("scale")?,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Stats;
    use crate::scenario::report::CellReport;

    fn report(mean: f64) -> ScenarioReport {
        ScenarioReport {
            id: "figX".into(),
            title: "t".into(),
            paper_anchor: String::new(),
            trials: 3,
            seed: 1,
            scale_label: "small".into(),
            cells: vec![CellReport {
                id: "c".into(),
                metrics: vec![(
                    "mse_recover".into(),
                    Stats {
                        mean,
                        std: 0.03,
                        count: 3,
                    },
                )],
            }],
            grids: vec![],
            notes: vec![],
        }
    }

    #[test]
    fn snapshot_passes_its_own_report_and_roundtrips() {
        let r = report(0.5);
        let golden = Golden::from_report(&r);
        assert!(golden.compare(&r).is_empty());
        let parsed = Golden::parse(&golden.to_json().render()).unwrap();
        assert_eq!(parsed, golden);
        assert!(parsed.compare(&r).is_empty());
    }

    #[test]
    fn band_is_sem_scaled_with_floors() {
        let golden = Golden::from_report(&report(0.5));
        let sem = 0.03 / 3f64.sqrt();
        assert!((golden.entries[0].tol - 8.0 * sem).abs() < 1e-12);
        // Degenerate spread falls back to the relative floor.
        let mut r = report(2.0);
        r.cells[0].metrics[0].1.std = 0.0;
        let g2 = Golden::from_report(&r);
        assert!((g2.entries[0].tol - 2.0 * 1e-6).abs() < 1e-18);
        // Zero mean, zero spread: absolute floor.
        let mut r = report(0.0);
        r.cells[0].metrics[0].1.std = 0.0;
        assert_eq!(Golden::from_report(&r).entries[0].tol, 1e-12);
    }

    #[test]
    fn out_of_band_mean_is_flagged() {
        let golden = Golden::from_report(&report(0.5));
        let drifted = report(0.5 + 9.0 * 0.03 / 3f64.sqrt());
        let violations = golden.compare(&drifted);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("outside"));
        // Within-band drift passes.
        let ok = report(0.5 + 2.0 * 0.03 / 3f64.sqrt());
        assert!(golden.compare(&ok).is_empty());
    }

    #[test]
    fn metric_set_drift_is_flagged_both_ways() {
        let golden = Golden::from_report(&report(0.5));
        // Vanished metric.
        let mut gone = report(0.5);
        gone.cells[0].metrics.clear();
        assert!(golden.compare(&gone).iter().any(|v| v.contains("vanished")));
        // New metric.
        let mut extra = report(0.5);
        extra.cells[0].metrics.push((
            "fg_before".into(),
            Stats {
                mean: 1.0,
                std: 0.1,
                count: 3,
            },
        ));
        assert!(golden
            .compare(&extra)
            .iter()
            .any(|v| v.contains("not in golden")));
    }

    #[test]
    fn settings_drift_is_flagged() {
        let golden = Golden::from_report(&report(0.5));
        let mut r = report(0.5);
        r.trials = 5;
        r.scale_label = "paper".into();
        let violations = golden.compare(&r);
        assert!(violations.iter().any(|v| v.contains("settings drift")));
        assert!(violations.iter().any(|v| v.contains("scale drift")));
    }

    #[test]
    fn parse_rejects_malformed_goldens() {
        assert!(Golden::parse("not json").is_err());
        assert!(Golden::parse("{}").is_err());
        assert!(Golden::parse(
            "{\"figure\": \"x\", \"trials\": 1, \"seed\": 1, \"scale\": \"small\"}"
        )
        .is_err());
        assert!(Golden::parse(
            "{\"figure\": \"x\", \"trials\": 1, \"seed\": 1, \"scale\": \"small\", \
             \"cells\": [{\"cell\": \"c\"}]}"
        )
        .is_err());
    }
}
