//! The figure catalog: every table/figure of the paper's evaluation (plus
//! the ablation and key-value extension experiments) as declarative
//! [`Scenario`] definitions.
//!
//! The `fig*` / `table1` / `ablations` / `kv_extension` binaries in
//! `ldp-bench` are thin shells over this module: they parse flags, fetch
//! their scenario by id, and hand it to
//! [`run_scenario`](crate::scenario::run_scenario). The golden regression
//! suite (`tests/golden_repro.rs`) runs the same definitions at the
//! `small` preset, so the catalog — not any binary — is the single source
//! of truth for what each figure computes.

use ldp_attacks::AttackKind;
use ldp_common::sampling::{zipf_weights, AliasTable};
use ldp_common::{Domain, Result};
use ldp_datasets::DatasetKind;
use ldp_kv::{KvProtocol, KvRecover, M2ga};
use ldp_protocols::{LdpFrequencyProtocol, ProtocolKind};
use ldprecover::{
    ArmKind, ArmSet, Detection, KMeansDefense, LdpRecover, MaliciousSumModel, PostProcess,
};

use crate::config::{ExperimentConfig, PipelineOptions};
use crate::metrics::mse;
use crate::pipeline::run_aggregation;
use crate::scenario::spec::{Cell, Entry, GridSpec, Metric, RowSpec, Scenario, StatFormat};

/// The β grid of Figs. 7, 8, 10.
pub const BETA_GRID_WIDE: [f64; 5] = [0.05, 0.10, 0.15, 0.20, 0.25];
/// The β grid of Figs. 5–6.
pub const BETA_GRID_FINE: [f64; 5] = [0.001, 0.005, 0.01, 0.05, 0.1];
/// The ε grid of Figs. 5–6.
pub const EPSILON_GRID: [f64; 5] = [0.1, 0.2, 0.4, 0.8, 1.6];
/// The η grid of Figs. 5–6.
pub const ETA_GRID: [f64; 5] = [0.01, 0.05, 0.1, 0.2, 0.4];
/// The ξ (sample-rate) grid of Fig. 9.
pub const XI_GRID: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// Every scenario id, in the paper's presentation order (extensions
/// after the paper's own figures).
pub const FIGURE_IDS: [&str; 14] = [
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "fig8",
    "fig9",
    "fig10",
    "ablations",
    "kv_extension",
    "stream_online",
    "stream_windowed",
    "defense_arms",
];

/// Builds the scenario for a figure id.
///
/// # Errors
/// [`ldp_common::LdpError::InvalidParameter`] for unknown ids; otherwise
/// propagates construction failures (none for the shipped catalog).
pub fn scenario(id: &str) -> Result<Scenario> {
    match id {
        "fig3" => Ok(fig3()),
        "fig4" => Ok(fig4()),
        "fig5" => Ok(parameter_sweeps(
            "fig5",
            DatasetKind::Ipums,
            "Figure 5: parameter impact on recovery from AA (IPUMS)",
            "GRR @ beta=0.05, eta=0.4: LDPRecover ≈ 1.42e-4 vs poisoned ≈ 8.78e-2 (full scale)",
        )),
        "fig6" => Ok(parameter_sweeps(
            "fig6",
            DatasetKind::Fire,
            "Figure 6: parameter impact on recovery from AA (Fire)",
            "same shapes as Fig. 5 at lower MSE levels (larger n, flatter distribution)",
        )),
        "fig7" => Ok(fig7()),
        "table1" => Ok(table1()),
        "fig8" => Ok(fig8()),
        "fig9" => fig9(),
        "fig10" => Ok(fig10()),
        "ablations" => ablations(),
        "kv_extension" => Ok(kv_extension()),
        "stream_online" => Ok(stream_online()),
        "stream_windowed" => Ok(stream_windowed()),
        "defense_arms" => Ok(defense_arms()),
        other => Err(ldp_common::LdpError::invalid(format!(
            "unknown figure '{other}' (known: {})",
            FIGURE_IDS.join(", ")
        ))),
    }
}

/// Builds the whole catalog, in presentation order.
///
/// # Errors
/// Propagates [`scenario`] failures (none for the shipped catalog).
pub fn all() -> Result<Vec<Scenario>> {
    FIGURE_IDS.iter().map(|id| scenario(id)).collect()
}

/// A paper-default config, with β zeroed for the unpoisoned baseline.
fn cfg(
    dataset: DatasetKind,
    protocol: ProtocolKind,
    attack: Option<AttackKind>,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_default(dataset, protocol, attack);
    if attack.is_none() {
        config.beta = 0.0;
    }
    config
}

fn fig3() -> Scenario {
    let combos: [(AttackKind, ProtocolKind); 7] = [
        (AttackKind::Manip { h: 10 }, ProtocolKind::Grr),
        (AttackKind::Mga { r: 10 }, ProtocolKind::Grr),
        (AttackKind::Mga { r: 10 }, ProtocolKind::Oue),
        (AttackKind::Mga { r: 10 }, ProtocolKind::Olh),
        (AttackKind::Adaptive, ProtocolKind::Grr),
        (AttackKind::Adaptive, ProtocolKind::Oue),
        (AttackKind::Adaptive, ProtocolKind::Olh),
    ];
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for dataset in DatasetKind::ALL {
        let mut rows = Vec::new();
        for (attack, protocol) in combos {
            let config = cfg(dataset, protocol, Some(attack));
            let id = format!("{}/{}", dataset.name(), config.label());
            rows.push(RowSpec {
                label: config.label(),
                entries: vec![
                    Entry::stat(&id, Metric::MseBefore),
                    Entry::stat(&id, Metric::mse(ArmKind::Detection)),
                    Entry::stat(&id, Metric::mse(ArmKind::Recover)),
                    Entry::stat(&id, Metric::mse(ArmKind::RecoverStar)),
                ],
            });
            cells.push(Cell::experiment(
                id,
                config,
                PipelineOptions::full_comparison(),
            ));
        }
        grids.push(GridSpec {
            title: format!("Fig. 3 ({dataset} dataset)"),
            row_header: "cell".into(),
            columns: vec![
                "MSE before".into(),
                "MSE Detection".into(),
                "MSE LDPRecover".into(),
                "MSE LDPRecover*".into(),
            ],
            rows,
        });
    }
    Scenario {
        id: "fig3",
        title: "Figure 3: MSE across attacks, protocols, and recovery methods",
        paper_anchor: "before ≈ 1e-2; LDPRecover/LDPRecover* ≈ 1e-3..1e-4; Detection in between",
        cells,
        grids,
        notes: vec![],
    }
}

fn fig4() -> Scenario {
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for dataset in DatasetKind::ALL {
        let mut rows = Vec::new();
        for protocol in ProtocolKind::ALL {
            let config = cfg(dataset, protocol, Some(AttackKind::Mga { r: 10 }));
            let id = format!("{}/{}", dataset.name(), config.label());
            rows.push(RowSpec {
                label: config.label(),
                entries: vec![
                    Entry::stat(&id, Metric::FgBefore),
                    Entry::stat(&id, Metric::fg(ArmKind::Detection)),
                    Entry::stat(&id, Metric::fg(ArmKind::Recover)),
                    Entry::stat(&id, Metric::fg(ArmKind::RecoverStar)),
                ],
            });
            cells.push(Cell::experiment(
                id,
                config,
                PipelineOptions::full_comparison(),
            ));
        }
        grids.push(GridSpec {
            title: format!("Fig. 4 ({dataset} dataset)"),
            row_header: "cell".into(),
            columns: vec![
                "FG before".into(),
                "FG Detection".into(),
                "FG LDPRecover".into(),
                "FG LDPRecover*".into(),
            ],
            rows,
        });
    }
    Scenario {
        id: "fig4",
        title: "Figure 4: frequency gain under MGA (r = 10)",
        paper_anchor: "IPUMS before: GRR ≈ 8, OUE/OLH ≈ 4; Fire GRR ≈ 30; recovered ≈ 0, star ≤ 0",
        cells,
        grids,
        notes: vec![],
    }
}

/// The Fig. 5 / Fig. 6 β/ε/η sweeps for one dataset. Cells that differ
/// only in η are fused into one aggregation-sharing sweep by the engine.
fn parameter_sweeps(
    id: &'static str,
    dataset: DatasetKind,
    title: &'static str,
    paper_anchor: &'static str,
) -> Scenario {
    let columns = || {
        vec![
            "MSE before".into(),
            "MSE LDPRecover".into(),
            "MSE LDPRecover*".into(),
        ]
    };
    let mse_entries = |cell: &str| {
        vec![
            Entry::stat(cell, Metric::MseBefore),
            Entry::stat(cell, Metric::mse(ArmKind::Recover)),
            Entry::stat(cell, Metric::mse(ArmKind::RecoverStar)),
        ]
    };
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for protocol in ProtocolKind::ALL {
        let base = || cfg(dataset, protocol, Some(AttackKind::Adaptive));
        let mut push_grid = |axis: &str, values: &[f64], set: fn(&mut ExperimentConfig, f64)| {
            let mut rows = Vec::new();
            for &value in values {
                let mut config = base();
                set(&mut config, value);
                let cell_id = format!("{protocol}/{axis}={value}");
                rows.push(RowSpec {
                    label: format!("{value}"),
                    entries: mse_entries(&cell_id),
                });
                cells.push(Cell::experiment(
                    cell_id,
                    config,
                    PipelineOptions::recovery_only(),
                ));
            }
            grids.push(GridSpec {
                title: format!("AA-{protocol} ({dataset}): impact of {axis}"),
                row_header: axis.into(),
                columns: columns(),
                rows,
            });
        };
        push_grid("beta", &BETA_GRID_FINE, |c, v| c.beta = v);
        push_grid("epsilon", &EPSILON_GRID, |c, v| c.epsilon = v);
        push_grid("eta", &ETA_GRID, |c, v| c.eta = v);
    }
    Scenario {
        id,
        title,
        paper_anchor,
        cells,
        grids,
        notes: vec![],
    }
}

fn fig7() -> Scenario {
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for protocol in ProtocolKind::ALL {
        let mut rows = Vec::new();
        for &beta in &BETA_GRID_WIDE {
            let mut config = cfg(
                DatasetKind::Ipums,
                protocol,
                Some(AttackKind::Mga { r: 10 }),
            );
            config.beta = beta;
            let id = format!("{protocol}/beta={beta}");
            rows.push(RowSpec {
                label: format!("{beta}"),
                entries: vec![
                    Entry::stat(&id, Metric::malicious_mse(ArmKind::Recover)),
                    Entry::stat(&id, Metric::malicious_mse(ArmKind::RecoverStar)),
                ],
            });
            cells.push(Cell::experiment(
                id,
                config,
                PipelineOptions::recovery_only(),
            ));
        }
        grids.push(GridSpec {
            title: format!("Fig. 7 ({protocol}, IPUMS)"),
            row_header: "beta".into(),
            columns: vec![
                "malicious-MSE LDPRecover".into(),
                "malicious-MSE LDPRecover*".into(),
            ],
            rows,
        });
    }
    Scenario {
        id: "fig7",
        title: "Figure 7: accuracy of the estimated malicious frequencies (IPUMS, MGA)",
        paper_anchor: "LDPRecover* beats LDPRecover by ≥ 1 order of magnitude across beta",
        cells,
        grids,
        notes: vec![],
    }
}

fn fig8() -> Scenario {
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for protocol in ProtocolKind::ALL {
        let mut rows = Vec::new();
        for &beta in &BETA_GRID_WIDE {
            let mut mga = cfg(
                DatasetKind::Ipums,
                protocol,
                Some(AttackKind::Mga { r: 10 }),
            );
            mga.beta = beta;
            let mut ipa = mga.clone();
            ipa.attack = Some(AttackKind::MgaIpa { r: 10 });
            let mga_id = format!("{protocol}/MGA/beta={beta}");
            let ipa_id = format!("{protocol}/MGA-IPA/beta={beta}");
            rows.push(RowSpec {
                label: format!("{beta}"),
                entries: vec![
                    Entry::stat(&mga_id, Metric::MseBefore),
                    Entry::stat(&ipa_id, Metric::MseBefore),
                    Entry::stat(&ipa_id, Metric::MseGenuine),
                ],
            });
            cells.push(Cell::experiment(mga_id, mga, PipelineOptions::default()));
            cells.push(Cell::experiment(ipa_id, ipa, PipelineOptions::default()));
        }
        grids.push(GridSpec {
            title: format!("Fig. 8 ({protocol}, IPUMS)"),
            row_header: "beta".into(),
            columns: vec!["MSE MGA".into(), "MSE MGA-IPA".into(), "noise floor".into()],
            rows,
        });
    }
    Scenario {
        id: "fig8",
        title: "Figure 8: general MGA vs input-poisoning MGA-IPA (IPUMS)",
        paper_anchor: "GRR: MGA MSE 6.07e-2..1.08 vs MGA-IPA 5.16e-4..6.21e-4 (paper, full scale)",
        cells,
        grids,
        notes: vec![],
    }
}

fn fig9() -> Result<Scenario> {
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for protocol in ProtocolKind::ALL {
        let mut rows = Vec::new();
        for &xi in &XI_GRID {
            let config = cfg(
                DatasetKind::Ipums,
                protocol,
                Some(AttackKind::MgaIpa { r: 10 }),
            );
            // Keep the clustering cost bounded: G = 20 subsets of rate ξ.
            let options = PipelineOptions {
                arms: ArmSet::new([ArmKind::Recover, ArmKind::Kmeans, ArmKind::RecoverKm]),
                kmeans: KMeansDefense::new(20, xi)?,
                ..Default::default()
            };
            let id = format!("{protocol}/xi={xi}");
            rows.push(RowSpec {
                label: format!("{xi}"),
                entries: vec![
                    Entry::stat(&id, Metric::MseBefore),
                    Entry::stat(&id, Metric::mse(ArmKind::Kmeans)),
                    Entry::stat(&id, Metric::mse(ArmKind::RecoverKm)),
                ],
            });
            cells.push(Cell::experiment(id, config, options));
        }
        grids.push(GridSpec {
            title: format!("Fig. 9 ({protocol}, IPUMS)"),
            row_header: "xi".into(),
            columns: vec![
                "MSE before".into(),
                "MSE k-means".into(),
                "MSE LDPRecover-KM".into(),
            ],
            rows,
        });
    }
    Ok(Scenario {
        id: "fig9",
        title: "Figure 9: LDPRecover-KM vs k-means under MGA-IPA (IPUMS)",
        paper_anchor: "LDPRecover-KM ≈ 48.9% better than k-means alone for GRR (paper)",
        cells,
        grids,
        notes: vec![],
    })
}

fn fig10() -> Scenario {
    let mut cells = Vec::new();
    let mut grids = Vec::new();
    for protocol in ProtocolKind::ALL {
        let mut rows = Vec::new();
        let mut protocol_cells = Vec::new();
        for &beta in &BETA_GRID_WIDE {
            let mut config = cfg(
                DatasetKind::Ipums,
                protocol,
                Some(AttackKind::MultiAdaptive { attackers: 5 }),
            );
            config.beta = beta;
            let id = format!("{protocol}/beta={beta}");
            rows.push(RowSpec {
                label: format!("{beta}"),
                entries: vec![
                    Entry::stat(&id, Metric::MseBefore),
                    Entry::stat(&id, Metric::mse(ArmKind::Recover)),
                    Entry::Improvement { cell: id.clone() },
                ],
            });
            protocol_cells.push(id.clone());
            cells.push(Cell::experiment(id, config, PipelineOptions::default()));
        }
        rows.push(RowSpec {
            label: "average".into(),
            entries: vec![
                Entry::Blank,
                Entry::Blank,
                Entry::MeanImprovement {
                    cells: protocol_cells,
                },
            ],
        });
        grids.push(GridSpec {
            title: format!("Fig. 10 (MUL-AA-{protocol}, IPUMS)"),
            row_header: "beta".into(),
            columns: vec![
                "MSE before".into(),
                "MSE LDPRecover".into(),
                "improvement".into(),
            ],
            rows,
        });
    }
    Scenario {
        id: "fig10",
        title: "Figure 10: multi-attacker adaptive poisoning (5 attackers, IPUMS)",
        paper_anchor: "LDPRecover ≈ 80.2% average MSE improvement for GRR (paper)",
        cells,
        grids,
        notes: vec![],
    }
}

fn table1() -> Scenario {
    /// The paper's Table I values (full scale): per protocol,
    /// `[ipums_before, ipums_after, fire_before, fire_after]`.
    const PAPER: [(ProtocolKind, [f64; 4]); 3] = [
        (ProtocolKind::Grr, [5.89e-4, 5.31e-4, 1.68e-3, 3.62e-5]),
        (ProtocolKind::Oue, [3.81e-5, 5.33e-4, 2.93e-5, 3.64e-5]),
        (ProtocolKind::Olh, [1.21e-6, 5.30e-4, 6.87e-7, 3.63e-5]),
    ];
    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for (protocol, paper_vals) in PAPER {
        for (di, dataset) in DatasetKind::ALL.into_iter().enumerate() {
            let config = cfg(dataset, protocol, None);
            let id = format!("{protocol}/{}", dataset.name());
            rows.push(RowSpec {
                label: format!("{protocol} / {}", dataset.name()),
                entries: vec![
                    Entry::stat(&id, Metric::MseBefore),
                    Entry::Text(format!("{:.2e}", paper_vals[di * 2])),
                    Entry::stat(&id, Metric::mse(ArmKind::Recover)),
                    Entry::Text(format!("{:.2e}", paper_vals[di * 2 + 1])),
                ],
            });
            cells.push(Cell::experiment(id, config, PipelineOptions::default()));
        }
    }
    Scenario {
        id: "table1",
        title: "Table I: LDPRecover on unpoisoned frequencies (beta = 0)",
        paper_anchor: "recovery helps GRR, hurts OUE/OLH (see module docs for the paper's numbers)",
        cells,
        grids: vec![GridSpec {
            title: "Table I".into(),
            row_header: "LDP / dataset".into(),
            columns: vec![
                "Before-Rec (measured)".into(),
                "Before-Rec (paper)".into(),
                "After-Rec (measured)".into(),
                "After-Rec (paper)".into(),
            ],
            rows,
        }],
        notes: vec![
            "paper values are full-scale; at --scale s the measured noise floor is \
             ≈ 1/s × the paper's.",
        ],
    }
}

/// Shared per-trial front half of the ablation cells: aggregate one
/// IPUMS trial under the given protocol/attack at the context's scale.
fn ablation_aggregates(
    protocol: ProtocolKind,
    attack: AttackKind,
    trial: usize,
    ctx: &crate::scenario::spec::CellCtx,
) -> Result<crate::pipeline::TrialAggregates> {
    let mut config = cfg(DatasetKind::Ipums, protocol, Some(attack));
    config.scale = ctx.fraction(DatasetKind::Ipums);
    let mut rng = ctx.trial_rng(trial);
    run_aggregation(&config, &PipelineOptions::default(), &mut rng)
}

fn ablations() -> Result<Scenario> {
    let mut cells = Vec::new();
    let mut grids = Vec::new();

    // Ablation 1 — malicious-sum model (Eq. 21 vs collision-aware) on OLH,
    // where the paper's constant ignores hash collisions.
    let mut rows = Vec::new();
    for (label, attack) in [
        ("AA-OLH", AttackKind::Adaptive),
        ("MGA-OLH", AttackKind::Mga { r: 10 }),
    ] {
        let id = format!("sum-model/{label}");
        rows.push(RowSpec {
            label: label.into(),
            entries: vec![
                Entry::stat(&id, Metric::Custom("mse_paper")),
                Entry::stat(&id, Metric::Custom("mse_aware")),
                Entry::stat(&id, Metric::Custom("malicious_mse_paper")),
                Entry::stat(&id, Metric::Custom("malicious_mse_aware")),
            ],
        });
        cells.push(Cell::custom(id, move |trial, ctx| {
            let agg = ablation_aggregates(ProtocolKind::Olh, attack, trial, ctx)?;
            let params = agg.params();
            let mal_true = agg.malicious_true_freqs.as_ref().expect("attacked");
            let mut out = Vec::new();
            for (mse_name, mal_name, model) in [
                ("mse_paper", "malicious_mse_paper", MaliciousSumModel::Paper),
                (
                    "mse_aware",
                    "malicious_mse_aware",
                    MaliciousSumModel::CollisionAware,
                ),
            ] {
                let outcome = LdpRecover::new(0.2)?
                    .with_sum_model(model)
                    .recover(&agg.poisoned_freqs, params)?;
                out.push((mse_name, mse(&outcome.frequencies, &agg.true_freqs)));
                out.push((mal_name, mse(&outcome.malicious_estimate, mal_true)));
            }
            Ok(out)
        }));
    }
    grids.push(GridSpec {
        title: "Ablation 1: malicious-sum model on OLH (IPUMS)".into(),
        row_header: "attack".into(),
        columns: vec![
            "MSE paper-sum (Eq.21)".into(),
            "MSE collision-aware".into(),
            "malicious-MSE paper".into(),
            "malicious-MSE aware".into(),
        ],
        rows,
    });

    // Ablation 2 — refinement solver (Algorithm 1 vs alternatives) on GRR.
    const SOLVERS: [(&str, &str, PostProcess); 4] = [
        ("norm-sub (Alg. 1)", "mse_norm_sub", PostProcess::NormSub),
        (
            "simplex projection",
            "mse_simplex",
            PostProcess::SimplexProjection,
        ),
        (
            "clip+normalize",
            "mse_clip_norm",
            PostProcess::ClipNormalize,
        ),
        ("base-cut", "mse_base_cut", PostProcess::BaseCut),
    ];
    let mut solver_cells = Vec::new();
    for (label, attack) in [
        ("AA", AttackKind::Adaptive),
        ("MGA", AttackKind::Mga { r: 10 }),
    ] {
        let id = format!("solver/{label}");
        solver_cells.push(id.clone());
        cells.push(Cell::custom(id, move |trial, ctx| {
            let agg = ablation_aggregates(ProtocolKind::Grr, attack, trial, ctx)?;
            let params = agg.params();
            let mut out = Vec::new();
            for (_, metric, solver) in SOLVERS {
                let outcome = LdpRecover::new(0.2)?
                    .with_post_process(solver)
                    .recover(&agg.poisoned_freqs, params)?;
                out.push((metric, mse(&outcome.frequencies, &agg.true_freqs)));
            }
            Ok(out)
        }));
    }
    grids.push(GridSpec {
        title: "Ablation 2: refinement solver on GRR (IPUMS)".into(),
        row_header: "solver".into(),
        columns: vec!["MSE AA-GRR".into(), "MSE MGA-GRR".into()],
        rows: SOLVERS
            .iter()
            .map(|(label, metric, _)| RowSpec {
                label: (*label).into(),
                entries: solver_cells
                    .iter()
                    .map(|cell| Entry::stat(cell, Metric::Custom(metric)))
                    .collect(),
            })
            .collect(),
    });

    // Ablation 3 — D₁ uniform fallback on AA-OUE, where Eq. (26)'s
    // positive-frequency heuristic degenerates.
    let mut rows = Vec::new();
    for (label, attack) in [
        ("AA-OUE", AttackKind::Adaptive),
        ("AA-camo-OUE", AttackKind::AdaptiveCamouflaged),
    ] {
        let id = format!("d1/{label}");
        rows.push(RowSpec {
            label: label.into(),
            entries: vec![
                Entry::stat(&id, Metric::Custom("mse_exact")),
                Entry::stat(&id, Metric::Custom("mse_fallback")),
            ],
        });
        cells.push(Cell::custom(id, move |trial, ctx| {
            let agg = ablation_aggregates(ProtocolKind::Oue, attack, trial, ctx)?;
            let params = agg.params();
            let paper = LdpRecover::new(0.2)?.recover(&agg.poisoned_freqs, params)?;
            let fallback = LdpRecover::new(0.2)?
                .with_d1_fallback(0.1)
                .recover(&agg.poisoned_freqs, params)?;
            Ok(vec![
                ("mse_exact", mse(&paper.frequencies, &agg.true_freqs)),
                ("mse_fallback", mse(&fallback.frequencies, &agg.true_freqs)),
            ])
        }));
    }
    grids.push(GridSpec {
        title: "Ablation 3: D1 uniform fallback on OUE (IPUMS)".into(),
        row_header: "attack".into(),
        columns: vec![
            "MSE paper-exact".into(),
            "MSE with D1 fallback (10%)".into(),
        ],
        rows,
    });

    // Ablation 4 — MGA padding: attack strength vs detectability. Both
    // variants support all targets; padding changes the popcount
    // signature, not the r-target one.
    cells.push(Cell::custom("mga-padding", |trial, ctx| {
        use ldp_attacks::{Mga, PoisoningAttack};
        let domain = Domain::new(102)?;
        let protocol = ProtocolKind::Oue.build(0.5, domain)?;
        let mut rng = ctx.trial_rng(trial);
        let targets: Vec<usize> = (20..30).collect();
        let detection = Detection::new(targets.clone())?;
        let m = 2_000;
        let mut out = Vec::new();
        for (support_name, flagged_name, attack) in [
            (
                "padded_support",
                "padded_flagged_pct",
                Mga::new(targets.clone()),
            ),
            (
                "unpadded_support",
                "unpadded_flagged_pct",
                Mga::new(targets.clone()).without_padding(),
            ),
        ] {
            let reports = attack.craft(&protocol, m, &mut rng);
            let avg_support: f64 = reports
                .iter()
                .map(|r| targets.iter().filter(|&&t| protocol.supports(r, t)).count() as f64)
                .sum::<f64>()
                / m as f64;
            let flagged = detection
                .keep_mask(&protocol, &reports)
                .iter()
                .filter(|&&keep| !keep)
                .count();
            out.push((support_name, avg_support));
            out.push((flagged_name, 100.0 * flagged as f64 / m as f64));
        }
        Ok(out)
    }));
    grids.push(GridSpec {
        title: "Ablation 4: MGA-OUE padding (both support all targets; padding \
                changes the popcount signature, not the r-target one)"
            .into(),
        row_header: "variant".into(),
        columns: vec!["targets/report".into(), "flagged by detection (%)".into()],
        rows: vec![
            RowSpec {
                label: "padded (default)".into(),
                entries: vec![
                    Entry::stat_fmt(
                        "mga-padding",
                        Metric::Custom("padded_support"),
                        StatFormat::Fixed1,
                    ),
                    Entry::stat_fmt(
                        "mga-padding",
                        Metric::Custom("padded_flagged_pct"),
                        StatFormat::Percent1,
                    ),
                ],
            },
            RowSpec {
                label: "un-padded".into(),
                entries: vec![
                    Entry::stat_fmt(
                        "mga-padding",
                        Metric::Custom("unpadded_support"),
                        StatFormat::Fixed1,
                    ),
                    Entry::stat_fmt(
                        "mga-padding",
                        Metric::Custom("unpadded_flagged_pct"),
                        StatFormat::Percent1,
                    ),
                ],
            },
        ],
    });

    Ok(Scenario {
        id: "ablations",
        title: "Ablations: malicious-sum model, solver, D1 fallback, MGA padding",
        paper_anchor: "",
        cells,
        grids,
        notes: vec![],
    })
}

/// Key-value extension constants (see the `ldp-kv` crate docs).
const KV_DOMAIN: usize = 50;
const KV_BASE_USERS: usize = 200_000;
const KV_EPSILON: f64 = 2.0;

fn kv_extension() -> Scenario {
    let mut cells = Vec::new();
    let mut rows = Vec::new();
    for &beta in &BETA_GRID_WIDE {
        let id = format!("kv/beta={beta}");
        rows.push(RowSpec {
            label: format!("{beta}"),
            entries: vec![
                Entry::stat(&id, Metric::Custom("fg_before")),
                Entry::stat(&id, Metric::Custom("fg_after")),
                Entry::stat(&id, Metric::Custom("mean_shift_before")),
                Entry::stat(&id, Metric::Custom("mean_shift_after")),
                Entry::stat(&id, Metric::Custom("probe_recall")),
            ],
        });
        cells.push(Cell::custom(id, move |trial, ctx| {
            let n = ((KV_BASE_USERS as f64) * ctx.base_fraction())
                .round()
                .max(1.0) as usize;
            let m = ldp_common::population::malicious_count(beta, n);
            let domain = Domain::new(KV_DOMAIN)?;
            let kv = KvProtocol::new(KV_EPSILON, domain)?;
            let weights = zipf_weights(KV_DOMAIN, 1.0);
            let sampler = AliasTable::new(&weights)?;
            let mean_of = |k: usize| if k.is_multiple_of(2) { 0.4 } else { -0.4 };

            let mut rng = ctx.trial_rng(trial);
            let mut reports = Vec::with_capacity(n + m);
            for _ in 0..n {
                let key = sampler.sample(&mut rng);
                reports.push(kv.perturb(key, mean_of(key), &mut rng)?);
            }
            let clean = kv.estimate(&kv.aggregate(&reports)?)?;

            let target = KV_DOMAIN - 1;
            let attack = M2ga::new(vec![target]);
            reports.extend(attack.craft(&kv, m, &mut rng));
            let agg = kv.aggregate(&reports)?;
            let poisoned = kv.estimate(&agg)?;
            let recovered = KvRecover::default().recover(&kv, &agg)?;

            let probe_recall = if m > 0 {
                (recovered.malicious_probes[target] / m as f64).min(2.0)
            } else {
                1.0
            };
            Ok(vec![
                (
                    "fg_before",
                    poisoned.frequencies[target] - clean.frequencies[target],
                ),
                (
                    "fg_after",
                    recovered.frequencies[target] - clean.frequencies[target],
                ),
                (
                    "mean_shift_before",
                    poisoned.means[target] - mean_of(target),
                ),
                (
                    "mean_shift_after",
                    recovered.means[target] - mean_of(target),
                ),
                ("probe_recall", probe_recall),
            ])
        }));
    }
    Scenario {
        id: "kv_extension",
        title: "Extension: key-value LDP (PrivKV-style) under M2GA + LDPRecover-KV",
        paper_anchor: "future work of the base paper; d=50, eps=2.0, Zipf(1) keys, means ±0.4",
        cells,
        grids: vec![GridSpec {
            title: "Key-value extension (target = rarest key)".into(),
            row_header: "beta".into(),
            columns: vec![
                "FG before".into(),
                "FG after".into(),
                "mean shift before".into(),
                "mean shift after".into(),
                "probe-anomaly recall".into(),
            ],
            rows,
        }],
        notes: vec![
            "the probe-anomaly baseline breaks down once attackers spread across \
             ≥ d/2 targeted keys (documented breakdown point of the median defense).",
        ],
    }
}

/// Streaming scenario shape: a fixed epoch horizon so the per-epoch
/// metric names (and therefore the golden file) are static.
const STREAM_EPOCHS: usize = 4;
/// Shards of the streaming scenario cells (merge-exactness means the
/// numbers are shard-layout-independent; 2 exercises the merge path).
const STREAM_SHARDS: usize = 2;
/// Per-epoch metric keys of the poisoned ("before") trajectory.
const STREAM_BEFORE_KEYS: [&str; STREAM_EPOCHS] = [
    "mse_before_e1",
    "mse_before_e2",
    "mse_before_e3",
    "mse_before_e4",
];
/// Per-epoch metric keys of the recovered trajectory.
const STREAM_RECOVER_KEYS: [&str; STREAM_EPOCHS] = [
    "mse_recovered_e1",
    "mse_recovered_e2",
    "mse_recovered_e3",
    "mse_recovered_e4",
];

fn stream_online() -> Scenario {
    use crate::stream::{StreamEngine, StreamSpec};

    let mut cells = Vec::new();
    let mut before_rows = Vec::new();
    let mut recover_rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        for (label, attack) in [
            ("MGA", AttackKind::Mga { r: 10 }),
            ("AA", AttackKind::Adaptive),
        ] {
            let id = format!("stream/{label}-{protocol}");
            before_rows.push(RowSpec {
                label: format!("{label}-{protocol}"),
                entries: STREAM_BEFORE_KEYS
                    .iter()
                    .map(|key| Entry::stat(&id, Metric::Custom(key)))
                    .collect(),
            });
            recover_rows.push(RowSpec {
                label: format!("{label}-{protocol}"),
                entries: STREAM_RECOVER_KEYS
                    .iter()
                    .map(|key| Entry::stat(&id, Metric::Custom(key)))
                    .collect(),
            });
            cells.push(Cell::custom(id, move |trial, ctx| {
                let corpus = DatasetKind::Ipums.total_users() as f64;
                let users_per_epoch = ((corpus * ctx.fraction(DatasetKind::Ipums))
                    / STREAM_EPOCHS as f64)
                    .round()
                    .max(STREAM_SHARDS as f64) as usize;
                let spec = StreamSpec {
                    dataset: DatasetKind::Ipums,
                    protocol,
                    epsilon: 0.5,
                    attack: Some(attack),
                    beta: 0.05,
                    eta: 0.2,
                    shards: STREAM_SHARDS,
                    epochs: STREAM_EPOCHS,
                    users_per_epoch,
                    seed: ldp_common::rng::derive_seed(ctx.seed, trial as u64),
                    window: crate::stream::WindowMode::Cumulative,
                };
                let mut engine = StreamEngine::new(spec)?;
                engine.run_to_completion()?;
                let mut out = Vec::with_capacity(2 * STREAM_EPOCHS + 1);
                for (point, (&before, &recovered)) in engine
                    .trajectory()
                    .iter()
                    .zip(STREAM_BEFORE_KEYS.iter().zip(STREAM_RECOVER_KEYS.iter()))
                {
                    out.push((before, point.mse_before));
                    out.push((recovered, point.mse_recovered));
                }
                let last = engine.trajectory().last().expect("epochs ran");
                out.push(("mse_genuine_final", last.mse_genuine));
                Ok(out)
            }));
        }
    }
    let epoch_columns = || (1..=STREAM_EPOCHS).map(|e| format!("epoch {e}")).collect();
    Scenario {
        id: "stream_online",
        title: "Extension: online recovery trajectories under streaming ingestion (IPUMS)",
        paper_anchor: "the paper's one-shot server, run per epoch: recovered MSE tracks \
                       the shrinking noise floor while the poisoned MSE stays attack-bound",
        cells,
        grids: vec![
            GridSpec {
                title: format!(
                    "Online MSE before recovery ({STREAM_SHARDS} shards × {STREAM_EPOCHS} epochs)"
                ),
                row_header: "cell".into(),
                columns: epoch_columns(),
                rows: before_rows,
            },
            GridSpec {
                title: format!(
                    "Online MSE after LDPRecover ({STREAM_SHARDS} shards × {STREAM_EPOCHS} epochs)"
                ),
                row_header: "cell".into(),
                columns: epoch_columns(),
                rows: recover_rows,
            },
        ],
        notes: vec![
            "each epoch ingests 1/4 of the preset's population; estimates use all \
             reports seen so far, so both curves fall ≈ 1/reports while the attack \
             keeps the before-curve offset above the recovered one.",
        ],
    }
}

/// Windowed-recovery variant of [`stream_online`]: the same epoch grid
/// under a 2-epoch sliding window and an exponentially-decaying window,
/// the two non-cumulative [`WindowMode`](crate::stream::WindowMode)s the
/// distributed coordinator ships. Where the cumulative trajectory's MSE
/// falls ≈ 1/reports, a bounded window pins the effective sample size, so
/// these curves flatten — the catalog keeps both shapes under golden
/// regression.
fn stream_windowed() -> Scenario {
    use crate::stream::{StreamEngine, StreamSpec, WindowMode};

    let windows = [
        ("sliding2", WindowMode::Sliding(2)),
        ("decay", WindowMode::Decay(0.75)),
    ];
    let mut cells = Vec::new();
    let mut before_rows = Vec::new();
    let mut recover_rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        for (label, window) in windows {
            let id = format!("streamw/{label}-{protocol}");
            before_rows.push(RowSpec {
                label: format!("{label}-{protocol}"),
                entries: STREAM_BEFORE_KEYS
                    .iter()
                    .map(|key| Entry::stat(&id, Metric::Custom(key)))
                    .collect(),
            });
            recover_rows.push(RowSpec {
                label: format!("{label}-{protocol}"),
                entries: STREAM_RECOVER_KEYS
                    .iter()
                    .map(|key| Entry::stat(&id, Metric::Custom(key)))
                    .collect(),
            });
            cells.push(Cell::custom(id, move |trial, ctx| {
                let corpus = DatasetKind::Ipums.total_users() as f64;
                let users_per_epoch = ((corpus * ctx.fraction(DatasetKind::Ipums))
                    / STREAM_EPOCHS as f64)
                    .round()
                    .max(STREAM_SHARDS as f64) as usize;
                let spec = StreamSpec {
                    dataset: DatasetKind::Ipums,
                    protocol,
                    epsilon: 0.5,
                    attack: Some(AttackKind::Adaptive),
                    beta: 0.05,
                    eta: 0.2,
                    shards: STREAM_SHARDS,
                    epochs: STREAM_EPOCHS,
                    users_per_epoch,
                    seed: ldp_common::rng::derive_seed(ctx.seed, trial as u64),
                    window,
                };
                let mut engine = StreamEngine::new(spec)?;
                engine.run_to_completion()?;
                let mut out = Vec::with_capacity(2 * STREAM_EPOCHS + 1);
                for (point, (&before, &recovered)) in engine
                    .trajectory()
                    .iter()
                    .zip(STREAM_BEFORE_KEYS.iter().zip(STREAM_RECOVER_KEYS.iter()))
                {
                    out.push((before, point.mse_before));
                    out.push((recovered, point.mse_recovered));
                }
                let last = engine.trajectory().last().expect("epochs ran");
                out.push(("mse_genuine_final", last.mse_genuine));
                Ok(out)
            }));
        }
    }
    let epoch_columns = || (1..=STREAM_EPOCHS).map(|e| format!("epoch {e}")).collect();
    Scenario {
        id: "stream_windowed",
        title: "Extension: windowed online recovery (sliding / decaying, IPUMS, AA)",
        paper_anchor: "the paper's recovery run on a bounded recent-history window instead \
                       of the full stream: the noise floor stops shrinking once the window \
                       saturates",
        cells,
        grids: vec![
            GridSpec {
                title: format!(
                    "Windowed MSE before recovery ({STREAM_SHARDS} shards × {STREAM_EPOCHS} epochs)"
                ),
                row_header: "cell".into(),
                columns: epoch_columns(),
                rows: before_rows,
            },
            GridSpec {
                title: format!(
                    "Windowed MSE after LDPRecover ({STREAM_SHARDS} shards × {STREAM_EPOCHS} epochs)"
                ),
                row_header: "cell".into(),
                columns: epoch_columns(),
                rows: recover_rows,
            },
        ],
        notes: vec![
            "sliding:2 keeps only the last two epochs' counts; decay:0.75 discounts each \
             older epoch by λ — both recover on the windowed aggregate, so late-stream \
             estimates track recent traffic instead of averaging the attack away.",
        ],
    }
}

/// The open-registry comparison grid: every count-only arm — including
/// the normalization baselines that exist purely as `DefenseArm` impls +
/// registry entries — side by side on the paper's default cell, across
/// protocols and the two attack families. This is the scenario that keeps
/// the open arm surface exercised by the nightly statistical gates.
fn defense_arms() -> Scenario {
    /// The count-only arm grid of this scenario (report-free, so every
    /// cell rides the batched aggregation path).
    const ARM_GRID: [ArmKind; 4] = [
        ArmKind::Recover,
        ArmKind::RecoverStar,
        ArmKind::NormSub,
        ArmKind::BaseCut,
    ];
    let mut cells = Vec::new();
    let mut mse_rows = Vec::new();
    let mut fg_rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        for (label, attack) in [
            ("MGA", AttackKind::Mga { r: 10 }),
            ("AA", AttackKind::Adaptive),
        ] {
            let config = cfg(DatasetKind::Ipums, protocol, Some(attack));
            let id = format!("arms/{label}-{protocol}");
            let mut mse_entries = vec![Entry::stat(&id, Metric::MseBefore)];
            mse_entries.extend(
                ARM_GRID
                    .iter()
                    .map(|&arm| Entry::stat(&id, Metric::mse(arm))),
            );
            mse_rows.push(RowSpec {
                label: format!("{label}-{protocol}"),
                entries: mse_entries,
            });
            if label == "MGA" {
                let mut fg_entries = vec![Entry::stat(&id, Metric::FgBefore)];
                fg_entries.extend(
                    ARM_GRID
                        .iter()
                        .map(|&arm| Entry::stat(&id, Metric::fg(arm))),
                );
                fg_rows.push(RowSpec {
                    label: format!("{label}-{protocol}"),
                    entries: fg_entries,
                });
            }
            cells.push(Cell::experiment(
                id,
                config,
                PipelineOptions::with_arms(ArmSet::new(ARM_GRID)),
            ));
        }
    }
    let columns = |lead: &str| {
        let mut cols = vec![format!("{lead} before")];
        cols.extend(ARM_GRID.iter().map(|arm| format!("{lead} {}", arm.label())));
        cols
    };
    Scenario {
        id: "defense_arms",
        title: "Extension: the open defense-arm registry, count-only arms side by side (IPUMS)",
        paper_anchor: "LDPRecover/LDPRecover* as in Fig. 3/4; the normalization baselines \
                       repair the simplex constraint but not the attack bias",
        cells,
        grids: vec![
            GridSpec {
                title: "Defense arms: MSE".into(),
                row_header: "cell".into(),
                columns: columns("MSE"),
                rows: mse_rows,
            },
            GridSpec {
                title: "Defense arms: frequency gain (targeted cells)".into(),
                row_header: "cell".into(),
                columns: columns("FG"),
                rows: fg_rows,
            },
        ],
        notes: vec![
            "norm-sub / base-cut are the standalone normalization baselines of the open \
             registry (`--arms norm-sub,base-cut`): pure refinements of the poisoned \
             estimate, no malicious-frequency learning.",
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::CellKind;

    #[test]
    fn every_figure_builds_and_validates_structurally() {
        for id in FIGURE_IDS {
            let s = scenario(id).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(s.id, id);
            assert!(!s.cells.is_empty(), "{id}: no cells");
            assert!(!s.grids.is_empty(), "{id}: no grids");
            // Structural validation is part of run_scenario; exercise it
            // without executing cells by checking ids + references here.
            let ids: std::collections::HashSet<&str> =
                s.cells.iter().map(|c| c.id.as_str()).collect();
            assert_eq!(ids.len(), s.cells.len(), "{id}: duplicate cell ids");
            for grid in &s.grids {
                for row in &grid.rows {
                    assert_eq!(row.entries.len(), grid.columns.len(), "{id}/{}", grid.title);
                    for entry in &row.entries {
                        for cell in entry.referenced_cells() {
                            assert!(ids.contains(cell), "{id}: dangling '{cell}'");
                        }
                    }
                }
            }
        }
        assert!(scenario("fig99").is_err());
        assert_eq!(all().unwrap().len(), FIGURE_IDS.len());
    }

    #[test]
    fn catalog_covers_the_papers_grid_dimensions() {
        // Fig. 3: 7 attack×protocol combos × 2 datasets.
        assert_eq!(scenario("fig3").unwrap().cells.len(), 14);
        // Fig. 5/6: 3 protocols × (β + ε + η) grids of 5.
        assert_eq!(scenario("fig5").unwrap().cells.len(), 45);
        // Fig. 8: 3 protocols × 5 β × {MGA, MGA-IPA}.
        assert_eq!(scenario("fig8").unwrap().cells.len(), 30);
        // Table I: 3 protocols × 2 datasets, all unpoisoned.
        let table1 = scenario("table1").unwrap();
        assert_eq!(table1.cells.len(), 6);
        for cell in &table1.cells {
            match &cell.kind {
                CellKind::Experiment { config, .. } => {
                    assert!(config.attack.is_none());
                    assert_eq!(config.beta, 0.0);
                }
                CellKind::Custom(_) => panic!("table1 has no custom cells"),
            }
        }
        // Ablations: 2 sum-model + 2 solver + 2 fallback + 1 padding.
        assert_eq!(scenario("ablations").unwrap().cells.len(), 7);
        // KV extension: one custom cell per wide-β point.
        assert_eq!(scenario("kv_extension").unwrap().cells.len(), 5);
        // Streaming: 3 protocols × {MGA, AA} online-recovery cells.
        assert_eq!(scenario("stream_online").unwrap().cells.len(), 6);
        // Windowed streaming: 3 protocols × {sliding:2, decay:0.75}.
        assert_eq!(scenario("stream_windowed").unwrap().cells.len(), 6);
        // Open arm registry: 3 protocols × {MGA, AA} comparison cells.
        assert_eq!(scenario("defense_arms").unwrap().cells.len(), 6);
    }

    #[test]
    fn defense_arms_cells_select_the_normalization_baselines() {
        let s = scenario("defense_arms").unwrap();
        for cell in &s.cells {
            match &cell.kind {
                CellKind::Experiment { options, .. } => {
                    assert!(options.arms.contains(ArmKind::NormSub), "{}", cell.id);
                    assert!(options.arms.contains(ArmKind::BaseCut), "{}", cell.id);
                    assert!(
                        !options.needs_reports(),
                        "{}: the grid must stay count-only (batched aggregation)",
                        cell.id
                    );
                }
                CellKind::Custom(_) => panic!("defense_arms has no custom cells"),
            }
        }
    }

    #[test]
    fn stream_scenario_produces_full_trajectories() {
        // One cheap run: every cell yields the full per-epoch metric set
        // and the recovered curve ends at or below the poisoned one for
        // the targeted MGA cells (which poison hardest).
        let scale = crate::scenario::spec::RunScale {
            trials: 2,
            seed: 11,
            scale: crate::scenario::spec::ScaleSpec::Fraction(0.004),
        };
        let report = crate::scenario::run_scenario(&stream_online(), &scale).unwrap();
        for cell in &report.cells {
            for key in STREAM_BEFORE_KEYS.iter().chain(&STREAM_RECOVER_KEYS) {
                assert!(
                    report.metric(&cell.id, key).is_some(),
                    "{}: missing {key}",
                    cell.id
                );
            }
            assert!(report.metric(&cell.id, "mse_genuine_final").is_some());
        }
        let mga_before = report.metric("stream/MGA-GRR", "mse_before_e4").unwrap();
        let mga_after = report.metric("stream/MGA-GRR", "mse_recovered_e4").unwrap();
        assert!(
            mga_after.mean < mga_before.mean,
            "online recovery must beat the poisoned estimate: {} vs {}",
            mga_after.mean,
            mga_before.mean
        );
    }

    #[test]
    fn windowed_stream_scenario_produces_full_trajectories() {
        let scale = crate::scenario::spec::RunScale {
            trials: 1,
            seed: 11,
            scale: crate::scenario::spec::ScaleSpec::Fraction(0.004),
        };
        let report = crate::scenario::run_scenario(&stream_windowed(), &scale).unwrap();
        assert_eq!(report.cells.len(), 6);
        for cell in &report.cells {
            for key in STREAM_BEFORE_KEYS.iter().chain(&STREAM_RECOVER_KEYS) {
                assert!(
                    report.metric(&cell.id, key).is_some(),
                    "{}: missing {key}",
                    cell.id
                );
            }
            assert!(report.metric(&cell.id, "mse_genuine_final").is_some());
        }
    }
}
