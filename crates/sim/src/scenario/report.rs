//! Structured scenario results: per-cell metric statistics, rendered
//! grids, and the JSON emit consumed by the golden suite and CI artifacts.

use ldp_common::float::exactly_zero;

use crate::metrics::Stats;
use crate::scenario::json::Json;
use crate::scenario::spec::{Entry, GridSpec};
use crate::table::Table;

/// Everything one scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario id (`"fig3"`, …).
    pub id: String,
    /// Scenario headline.
    pub title: String,
    /// The paper's approximate reading, for the header.
    pub paper_anchor: String,
    /// Trials per cell.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Scale label (`"small"`, `"paper"`, or a fraction).
    pub scale_label: String,
    /// Per-cell metric statistics, in declaration order.
    pub cells: Vec<CellReport>,
    /// The rendered grids, in declaration order.
    pub grids: Vec<GridReport>,
    /// Footnotes.
    pub notes: Vec<String>,
}

/// One cell's summarized metrics.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell id.
    pub id: String,
    /// `(metric name, stats)` pairs, in stable order.
    pub metrics: Vec<(String, Stats)>,
}

/// One grid, rendered to a [`Table`].
#[derive(Debug, Clone)]
pub struct GridReport {
    /// The grid title.
    pub title: String,
    /// The pivoted table (leading row-label column included).
    pub table: Table,
}

impl ScenarioReport {
    /// Looks up one cell metric.
    pub fn metric(&self, cell: &str, metric: &str) -> Option<Stats> {
        self.cells
            .iter()
            .find(|c| c.id == cell)
            .and_then(|c| c.metrics.iter().find(|(name, _)| name == metric))
            .map(|(_, stats)| *stats)
    }

    /// Renders the run header, every grid, and the notes — the output
    /// the historical `fig*` binaries hand-rolled. Returns the full text
    /// (trailing newline included) so callers that own a terminal — the
    /// `ldp` CLI and the figure binaries — decide where it goes; library
    /// code never prints (workspace lint rule H02).
    pub fn render_text(&self, csv: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Writing to a String is infallible; `let _ =` keeps that
        // explicit without an unwrap.
        let _ = writeln!(out, "LDPRecover reproduction — {}", self.title);
        let _ = writeln!(
            out,
            "figure={} trials={} scale={} seed={:#x}   (MSE scales ≈ 1/n: at scale σ \
             the noise floor is 1/σ × the paper's; method ordering is scale-invariant)",
            self.id, self.trials, self.scale_label, self.seed
        );
        if !self.paper_anchor.is_empty() {
            let _ = writeln!(out, "paper anchor: {}", self.paper_anchor);
        }
        let _ = writeln!(out);
        for grid in &self.grids {
            let _ = writeln!(out, "== {} ==", grid.title);
            if csv {
                out.push_str(&grid.table.render_csv());
            } else {
                out.push_str(&grid.table.render());
            }
            let _ = writeln!(out);
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Writes the report's JSON to disk and returns the final path.
    ///
    /// When `force_dir` is set — or `path` is an existing directory or
    /// ends with a path separator — the file lands at
    /// `<path>/<figure>.json`; parent directories are created either way.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_json(
        &self,
        path: &std::path::Path,
        force_dir: bool,
    ) -> ldp_common::Result<std::path::PathBuf> {
        let ends_with_sep = path
            .as_os_str()
            .to_string_lossy()
            .ends_with(std::path::MAIN_SEPARATOR);
        let target = if force_dir || path.is_dir() || ends_with_sep {
            std::fs::create_dir_all(path)?;
            path.join(format!("{}.json", self.id))
        } else {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            path.to_path_buf()
        };
        ldp_common::write_atomic(&target, &self.to_json().render())?;
        Ok(target)
    }

    /// The report as a JSON tree (`render()` it for the `--json` emit).
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|cell| {
                let metrics = cell
                    .metrics
                    .iter()
                    .map(|(name, stats)| {
                        (
                            name.clone(),
                            Json::Obj(vec![
                                ("mean".into(), Json::Num(stats.mean)),
                                ("std".into(), Json::Num(stats.std)),
                                ("sem".into(), Json::Num(stats.sem())),
                                ("count".into(), Json::Num(stats.count as f64)),
                            ]),
                        )
                    })
                    .collect();
                Json::Obj(vec![
                    ("id".into(), Json::Str(cell.id.clone())),
                    ("metrics".into(), Json::Obj(metrics)),
                ])
            })
            .collect();
        let grids = self
            .grids
            .iter()
            .map(|grid| {
                let header: Vec<Json> = grid
                    .table
                    .header()
                    .iter()
                    .map(|h| Json::Str(h.clone()))
                    .collect();
                let rows: Vec<Json> = grid
                    .table
                    .rows()
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|c| Json::Str(c.clone())).collect()))
                    .collect();
                Json::Obj(vec![
                    ("title".into(), Json::Str(grid.title.clone())),
                    ("header".into(), Json::Arr(header)),
                    ("rows".into(), Json::Arr(rows)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("figure".into(), Json::Str(self.id.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            (
                "settings".into(),
                Json::Obj(vec![
                    ("trials".into(), Json::Num(self.trials as f64)),
                    ("seed".into(), Json::Num(self.seed as f64)),
                    ("scale".into(), Json::Str(self.scale_label.clone())),
                ]),
            ),
            ("cells".into(), Json::Arr(cells)),
            ("grids".into(), Json::Arr(grids)),
        ])
    }
}

impl GridReport {
    /// Pivots a grid spec against the computed cell metrics.
    pub(crate) fn render(spec: &GridSpec, report: &ScenarioReport) -> GridReport {
        let mut header = vec![spec.row_header.clone()];
        header.extend(spec.columns.iter().cloned());
        let mut table = Table::new(header);
        for row in &spec.rows {
            let mut cells = vec![row.label.clone()];
            cells.extend(row.entries.iter().map(|entry| render_entry(entry, report)));
            table.push_row(cells);
        }
        GridReport {
            title: spec.title.clone(),
            table,
        }
    }
}

fn render_entry(entry: &Entry, report: &ScenarioReport) -> String {
    match entry {
        Entry::Stat {
            cell,
            metric,
            format,
        } => match report.metric(cell, &metric.name()) {
            Some(stats) => format.render(stats.mean),
            None => "-".to_string(),
        },
        Entry::Text(text) => text.clone(),
        Entry::Improvement { cell } => match improvement(report, cell) {
            Some(v) => format!("{:.1}%", 100.0 * v),
            None => "-".to_string(),
        },
        Entry::MeanImprovement { cells } => {
            let values: Vec<f64> = cells
                .iter()
                .filter_map(|c| improvement(report, c))
                .collect();
            if values.len() == cells.len() && !values.is_empty() {
                format!(
                    "{:.1}%",
                    100.0 * values.iter().sum::<f64>() / values.len() as f64
                )
            } else {
                "-".to_string()
            }
        }
        Entry::Blank => String::new(),
    }
}

/// `1 − mse_recover/mse_before` of a cell (the Fig. 10 statistic).
fn improvement(report: &ScenarioReport, cell: &str) -> Option<f64> {
    let recover = report.metric(cell, "mse_recover")?;
    let before = report.metric(cell, "mse_before")?;
    (!exactly_zero(before.mean)).then(|| 1.0 - recover.mean / before.mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::{Metric, RowSpec};
    use ldprecover::ArmKind;

    fn stats(mean: f64) -> Stats {
        Stats {
            mean,
            std: 0.1,
            count: 4,
        }
    }

    fn report() -> ScenarioReport {
        ScenarioReport {
            id: "figX".into(),
            title: "test".into(),
            paper_anchor: "".into(),
            trials: 4,
            seed: 9,
            scale_label: "small".into(),
            cells: vec![CellReport {
                id: "c1".into(),
                metrics: vec![
                    ("mse_before".into(), stats(0.1)),
                    ("mse_recover".into(), stats(0.02)),
                ],
            }],
            grids: vec![],
            notes: vec![],
        }
    }

    #[test]
    fn write_json_is_crash_atomic() {
        // The emit goes through write_atomic: after a successful write
        // the target holds the complete new document, and no staging
        // temp file survives in the directory — the crash window where
        // a torn half-file could exist is confined to the temp name,
        // which readers never open.
        let dir = std::env::temp_dir().join("ldp_report_write_json_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("figX.json");
        std::fs::write(&target, "{\"stale\": true}").unwrap();
        let written = report().write_json(&target, false).unwrap();
        assert_eq!(written, target);
        let body = std::fs::read_to_string(&target).unwrap();
        assert!(body.contains("\"figX\""), "new content landed: {body}");
        assert!(!body.contains("stale"), "old content fully replaced");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "staging files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metric_lookup_and_sem() {
        let r = report();
        assert_eq!(r.metric("c1", "mse_before").unwrap().mean, 0.1);
        assert!(r.metric("c1", "nope").is_none());
        assert!(r.metric("nope", "mse_before").is_none());
        assert!((stats(1.0).sem() - 0.05).abs() < 1e-12);
        assert_eq!(
            Stats {
                mean: 1.0,
                std: 0.0,
                count: 1
            }
            .sem(),
            0.0
        );
    }

    #[test]
    fn grid_rendering_pivots_entries() {
        let r = report();
        let spec = GridSpec {
            title: "g".into(),
            row_header: "row".into(),
            columns: vec![
                "before".into(),
                "missing".into(),
                "impr".into(),
                "txt".into(),
            ],
            rows: vec![RowSpec {
                label: "r1".into(),
                entries: vec![
                    Entry::stat("c1", Metric::MseBefore),
                    Entry::stat("c1", Metric::mse(ArmKind::RecoverStar)),
                    Entry::Improvement { cell: "c1".into() },
                    Entry::Text("1.00e-1".into()),
                ],
            }],
        };
        let grid = GridReport::render(&spec, &r);
        let row = &grid.table.rows()[0];
        assert_eq!(row[0], "r1");
        assert_eq!(row[1], "1.000e-1");
        assert_eq!(row[2], "-");
        assert_eq!(row[3], "80.0%");
        assert_eq!(row[4], "1.00e-1");
    }

    #[test]
    fn json_emit_contains_cells_and_settings() {
        let r = report();
        let json = r.to_json();
        assert_eq!(json.get("figure").and_then(Json::as_str), Some("figX"));
        let settings = json.get("settings").unwrap();
        assert_eq!(settings.get("trials").and_then(Json::as_f64), Some(4.0));
        let cells = json.get("cells").and_then(Json::as_array).unwrap();
        let metrics = cells[0].get("metrics").unwrap();
        let before = metrics.get("mse_before").unwrap();
        assert_eq!(before.get("mean").and_then(Json::as_f64), Some(0.1));
        assert_eq!(before.get("count").and_then(Json::as_f64), Some(4.0));
        // Round-trips through the parser.
        assert_eq!(Json::parse(&json.render()).unwrap(), json);
    }
}
