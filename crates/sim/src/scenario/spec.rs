//! Declarative scenario-matrix specifications.
//!
//! A [`Scenario`] is one figure/table of the paper (or an extension
//! experiment) described as data: a set of uniquely-named [`Cell`]s — each
//! either a standard [`ExperimentConfig`] + [`PipelineOptions`] pair or a
//! custom per-trial closure — plus [`GridSpec`]s that lay the cells'
//! metrics out as the tables the paper prints. The engine
//! ([`crate::scenario::run_scenario`]) expands and executes the cells; the
//! grids are pure presentation and never influence what is computed.

use ldp_common::rng::{derive_seed, rng_from_seed};
use ldp_common::Result;
use ldp_datasets::{DatasetKind, ScalePreset};
use rand::rngs::SmallRng;

use crate::config::{ExperimentConfig, PipelineOptions, DEFAULT_SEED};
use crate::metrics::Stats;
use crate::runner::ExperimentResult;

/// One figure/table of the reproduction, fully described as data.
pub struct Scenario {
    /// Stable identifier (`"fig3"`, `"table1"`, …) — the golden-file key.
    pub id: &'static str,
    /// Human-readable headline.
    pub title: &'static str,
    /// The paper's approximate reading of this figure, for the run header.
    pub paper_anchor: &'static str,
    /// The executable cells, each with a scenario-unique id.
    pub cells: Vec<Cell>,
    /// The tables this scenario prints, referencing cells by id.
    pub grids: Vec<GridSpec>,
    /// Free-form footnotes printed after the tables.
    pub notes: Vec<&'static str>,
}

/// One executable unit of a scenario.
pub struct Cell {
    /// Scenario-unique id (also the golden-file key of its metrics).
    pub id: String,
    /// How the cell computes its metrics.
    pub kind: CellKind,
}

impl Cell {
    /// A standard experiment cell.
    pub fn experiment(
        id: impl Into<String>,
        config: ExperimentConfig,
        options: PipelineOptions,
    ) -> Self {
        Self {
            id: id.into(),
            kind: CellKind::Experiment { config, options },
        }
    }

    /// A custom cell: `run(trial, ctx)` produces named metric values; the
    /// engine fans trials out and folds each metric into a [`Stats`].
    pub fn custom<F>(id: impl Into<String>, run: F) -> Self
    where
        F: Fn(usize, &CellCtx) -> Result<Vec<(&'static str, f64)>> + Send + Sync + 'static,
    {
        Self {
            id: id.into(),
            kind: CellKind::Custom(CustomCell { run: Box::new(run) }),
        }
    }
}

/// The two cell flavors.
pub enum CellKind {
    /// A standard pipeline experiment, executed through
    /// [`crate::runner::run_experiment`] (or, when several cells differ
    /// only in η, one shared [`crate::runner::run_eta_sweep`]).
    Experiment {
        /// The cell's configuration; `trials`/`scale`/`seed` are overridden
        /// by the [`RunScale`] at execution time.
        config: ExperimentConfig,
        /// Which recovery arms to run.
        options: PipelineOptions,
    },
    /// An arbitrary per-trial computation (ablations, KV extension).
    Custom(CustomCell),
}

/// A custom cell's per-trial closure.
pub struct CustomCell {
    /// Returns `(metric name, value)` pairs; every trial must produce the
    /// same metric set.
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn Fn(usize, &CellCtx) -> Result<Vec<(&'static str, f64)>> + Send + Sync>,
}

/// Execution context handed to custom cells.
pub struct CellCtx {
    /// Trials this cell runs (from the [`RunScale`]).
    pub trials: usize,
    /// The cell's derived master seed (stable per cell id).
    pub seed: u64,
    scale: ScaleSpec,
}

impl CellCtx {
    pub(crate) fn new(trials: usize, seed: u64, scale: ScaleSpec) -> Self {
        Self {
            trials,
            seed,
            scale,
        }
    }

    /// The RNG stream for one trial of this cell.
    pub fn trial_rng(&self, trial: usize) -> SmallRng {
        rng_from_seed(derive_seed(self.seed, trial as u64))
    }

    /// The population fraction for a dataset at the active scale.
    pub fn fraction(&self, dataset: DatasetKind) -> f64 {
        self.scale.fraction(dataset)
    }

    /// The scale fraction for workloads without a [`DatasetKind`] (the KV
    /// extension's synthetic population): the IPUMS fraction.
    pub fn base_fraction(&self) -> f64 {
        self.scale.fraction(DatasetKind::Ipums)
    }
}

/// How large a scenario run is: trials per cell, master seed, population
/// scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunScale {
    /// Trials per cell.
    pub trials: usize,
    /// Master seed (experiment cells use it directly, matching the
    /// historical binaries; custom cells derive a per-cell stream).
    pub seed: u64,
    /// Population scale.
    pub scale: ScaleSpec,
}

impl RunScale {
    /// The canonical run for a named preset (`small`: 5 trials, ~1.2k
    /// users; `paper`: 10 trials, full populations), at the default seed.
    pub fn preset(preset: ScalePreset) -> Self {
        Self {
            trials: preset.trials(),
            seed: DEFAULT_SEED,
            scale: ScaleSpec::Preset(preset),
        }
    }

    /// A run at an explicit uniform fraction (the historical `--scale F`).
    pub fn fraction(trials: usize, scale: f64, seed: u64) -> Self {
        Self {
            trials,
            seed,
            scale: ScaleSpec::Fraction(scale),
        }
    }
}

/// A population scale: a named per-dataset preset or one uniform fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleSpec {
    /// Named preset with per-dataset fractions.
    Preset(ScalePreset),
    /// One fraction in `(0, 1]` applied to every dataset.
    Fraction(f64),
}

impl ScaleSpec {
    /// The subsample fraction for a dataset.
    pub fn fraction(&self, dataset: DatasetKind) -> f64 {
        match self {
            ScaleSpec::Preset(p) => p.fraction(dataset),
            ScaleSpec::Fraction(f) => *f,
        }
    }

    /// Parses `"small" | "paper"` or a fraction in `(0, 1]`.
    ///
    /// # Errors
    /// [`ldp_common::LdpError::InvalidParameter`] for anything else.
    pub fn parse(s: &str) -> Result<Self> {
        if let Ok(preset) = ScalePreset::parse(s) {
            return Ok(ScaleSpec::Preset(preset));
        }
        let fraction: f64 = s.parse().map_err(|_| {
            ldp_common::LdpError::invalid(format!("scale '{s}' (small|paper|0<F≤1)"))
        })?;
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(ldp_common::LdpError::invalid(format!(
                "scale fraction must be in (0,1], got {fraction}"
            )));
        }
        Ok(ScaleSpec::Fraction(fraction))
    }
}

impl std::fmt::Display for ScaleSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaleSpec::Preset(p) => f.write_str(p.name()),
            ScaleSpec::Fraction(v) => write!(f, "{v}"),
        }
    }
}

/// One printed table of a scenario.
pub struct GridSpec {
    /// Table title (the `== title ==` banner).
    pub title: String,
    /// Header of the leading row-label column (`"cell"`, `"beta"`, …).
    pub row_header: String,
    /// Headers of the metric columns.
    pub columns: Vec<String>,
    /// The rows, each with exactly `columns.len()` entries.
    pub rows: Vec<RowSpec>,
}

/// One table row: a label plus one entry per metric column.
pub struct RowSpec {
    /// The leading-column label.
    pub label: String,
    /// The metric entries, aligned with [`GridSpec::columns`].
    pub entries: Vec<Entry>,
}

/// How a [`Entry::Stat`] renders its mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatFormat {
    /// `%.3e` — the MSE/FG columns.
    #[default]
    Scientific,
    /// `%.1f` — small plain quantities (e.g. targets per report).
    Fixed1,
    /// `%.1f%%` — values already expressed in percent units.
    Percent1,
}

impl StatFormat {
    /// Renders a mean in this format.
    pub(crate) fn render(self, mean: f64) -> String {
        match self {
            StatFormat::Scientific => format!("{mean:.3e}"),
            StatFormat::Fixed1 => format!("{mean:.1}"),
            StatFormat::Percent1 => format!("{mean:.1}%"),
        }
    }
}

/// One table entry.
pub enum Entry {
    /// `mean` of a cell metric (or `-` when the metric was not produced).
    Stat {
        /// The referenced cell id.
        cell: String,
        /// Which of its metrics.
        metric: Metric,
        /// How to render the mean.
        format: StatFormat,
    },
    /// Fixed text (the paper's own values in Table I).
    Text(String),
    /// `1 − mse_recover/mse_before` of a cell, as a percentage.
    Improvement {
        /// The referenced cell id.
        cell: String,
    },
    /// The mean of [`Entry::Improvement`] over several cells.
    MeanImprovement {
        /// The referenced cell ids.
        cells: Vec<String>,
    },
    /// An empty cell.
    Blank,
}

impl Entry {
    /// Shorthand for a scientific-notation [`Entry::Stat`].
    pub fn stat(cell: impl Into<String>, metric: Metric) -> Self {
        Entry::stat_fmt(cell, metric, StatFormat::Scientific)
    }

    /// [`Entry::Stat`] with an explicit render format.
    pub fn stat_fmt(cell: impl Into<String>, metric: Metric, format: StatFormat) -> Self {
        Entry::Stat {
            cell: cell.into(),
            metric,
            format,
        }
    }

    /// The cell ids this entry reads (for validation).
    pub(crate) fn referenced_cells(&self) -> Vec<&str> {
        match self {
            Entry::Stat { cell, .. } | Entry::Improvement { cell } => vec![cell.as_str()],
            Entry::MeanImprovement { cells } => cells.iter().map(String::as_str).collect(),
            Entry::Text(_) | Entry::Blank => Vec::new(),
        }
    }
}

/// A named metric of a cell.
///
/// Arm metrics are open, keyed by the registry's metric key
/// ([`ldprecover::ArmKind::metric_key`]): selecting a new defense arm in
/// a cell automatically makes its `mse_{key}` / `fg_{key}` /
/// `malicious_mse_{key}` metrics addressable here — no enum edit needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// MSE of the genuine (unpoisoned) estimate — the LDP noise floor.
    MseGenuine,
    /// MSE of the poisoned estimate ("before recovery").
    MseBefore,
    /// FG of the poisoned estimate.
    FgBefore,
    /// MSE of a defense arm's output (`mse_{key}`).
    MseArm(&'static str),
    /// FG of a defense arm's output (`fg_{key}`).
    FgArm(&'static str),
    /// MSE of a defense arm's malicious estimate vs the true `f̃_Y`
    /// (`malicious_mse_{key}`).
    MalMseArm(&'static str),
    /// A custom cell's named metric.
    Custom(&'static str),
}

impl Metric {
    /// The MSE metric of a registered arm.
    pub const fn mse(kind: ldprecover::ArmKind) -> Self {
        Metric::MseArm(kind.metric_key())
    }

    /// The FG metric of a registered arm.
    pub const fn fg(kind: ldprecover::ArmKind) -> Self {
        Metric::FgArm(kind.metric_key())
    }

    /// The malicious-estimate MSE metric of a registered arm.
    pub const fn malicious_mse(kind: ldprecover::ArmKind) -> Self {
        Metric::MalMseArm(kind.metric_key())
    }

    /// The metric's stable snake_case name (JSON / golden key). Derived
    /// generically for arm metrics, reproducing the historical names
    /// exactly (`mse_star`, `malicious_mse_recover`, …).
    pub fn name(&self) -> String {
        match self {
            Metric::MseGenuine => "mse_genuine".to_string(),
            Metric::MseBefore => "mse_before".to_string(),
            Metric::FgBefore => "fg_before".to_string(),
            Metric::MseArm(key) => format!("mse_{key}"),
            Metric::FgArm(key) => format!("fg_{key}"),
            Metric::MalMseArm(key) => format!("malicious_mse_{key}"),
            Metric::Custom(name) => (*name).to_string(),
        }
    }

    /// Extracts the metric from an experiment result (`None` when the run
    /// did not produce it, e.g. FG for untargeted attacks).
    pub fn extract(&self, result: &ExperimentResult) -> Option<Stats> {
        match self {
            Metric::MseGenuine => Some(result.mse_genuine),
            Metric::MseBefore => Some(result.mse_before),
            Metric::FgBefore => result.fg_before,
            Metric::MseArm(key) => result.arm(key).and_then(|a| a.mse),
            Metric::FgArm(key) => result.arm(key).and_then(|a| a.fg),
            Metric::MalMseArm(key) => result.arm(key).and_then(|a| a.malicious_mse),
            Metric::Custom(_) => None,
        }
    }
}
