//! The scenario engine: cartesian cell execution with η-sweep fusion.
//!
//! Execution plan:
//!
//! 1. validate the scenario (unique cell ids, grid entries referencing
//!    only existing cells, consistent row widths),
//! 2. materialize each experiment cell's config at the requested
//!    [`RunScale`] (trials / seed / per-dataset fraction),
//! 3. fuse experiment cells that differ **only in η** into one
//!    [`run_eta_sweep`] unit — each fused cell stays bit-identical to a
//!    standalone [`run_experiment`] (the PR 2 RNG-stream contract), so
//!    fusion is purely a speed-up,
//! 4. execute the units through the same [`map_trials`] fan-out the trial
//!    runner uses (units across workers, trials across workers inside each
//!    unit — results are folded in declaration order either way, so
//!    reports are bit-identical for any thread count),
//! 5. summarize every cell's metrics into a [`ScenarioReport`].

use ldp_common::hash::xxh64;
use ldp_common::rng::derive_seed;
use ldp_common::{LdpError, Result};

use crate::config::{ExperimentConfig, PipelineOptions};
use crate::metrics::Stats;
use crate::runner::{map_trials, run_eta_sweep, run_experiment, thread_count};
use crate::scenario::report::{CellReport, GridReport, ScenarioReport};
use crate::scenario::spec::{CellCtx, CellKind, RunScale, Scenario};

/// Domain-separation salt for per-cell seed derivation (custom cells).
const CELL_SEED_SALT: u64 = 0x5CE7_AB1E;

/// Runs every cell of a scenario at the given scale and assembles the
/// report.
///
/// # Errors
/// [`LdpError::InvalidParameter`] for malformed scenarios (duplicate cell
/// ids, dangling grid references, ragged grid rows, zero trials);
/// otherwise propagates the first failing cell.
pub fn run_scenario(scenario: &Scenario, scale: &RunScale) -> Result<ScenarioReport> {
    validate(scenario)?;
    if scale.trials == 0 {
        return Err(LdpError::invalid("scenario trials must be ≥ 1"));
    }

    let units = plan_units(scenario, scale);
    let outer_threads = outer_thread_count(scale.trials, units.len());
    let unit_outcomes = map_trials(units.len(), outer_threads, |i| execute(&units[i], scale))?;

    // Scatter unit outcomes back into cell order.
    let mut metrics_by_cell: Vec<Option<Vec<(String, Stats)>>> =
        scenario.cells.iter().map(|_| None).collect();
    for (unit, outcomes) in units.iter().zip(unit_outcomes) {
        for (&cell_index, metrics) in unit.cell_indices().iter().zip(outcomes) {
            metrics_by_cell[cell_index] = Some(metrics);
        }
    }

    let cells: Vec<CellReport> = scenario
        .cells
        .iter()
        .zip(metrics_by_cell)
        .map(|(cell, metrics)| CellReport {
            id: cell.id.clone(),
            metrics: metrics.expect("every cell executed by exactly one unit"),
        })
        .collect();

    let report = ScenarioReport {
        id: scenario.id.to_string(),
        title: scenario.title.to_string(),
        paper_anchor: scenario.paper_anchor.to_string(),
        trials: scale.trials,
        seed: scale.seed,
        scale_label: scale.scale.to_string(),
        cells,
        grids: Vec::new(),
        notes: scenario.notes.iter().map(|s| s.to_string()).collect(),
    };
    let grids: Vec<GridReport> = scenario
        .grids
        .iter()
        .map(|grid| GridReport::render(grid, &report))
        .collect();
    Ok(ScenarioReport { grids, ..report })
}

/// Structural validation, before anything expensive runs.
fn validate(scenario: &Scenario) -> Result<()> {
    let mut seen = std::collections::HashSet::new();
    for cell in &scenario.cells {
        if !seen.insert(cell.id.as_str()) {
            return Err(LdpError::invalid(format!(
                "scenario {}: duplicate cell id '{}'",
                scenario.id, cell.id
            )));
        }
    }
    for grid in &scenario.grids {
        for row in &grid.rows {
            if row.entries.len() != grid.columns.len() {
                return Err(LdpError::invalid(format!(
                    "scenario {}, grid '{}', row '{}': {} entries for {} columns",
                    scenario.id,
                    grid.title,
                    row.label,
                    row.entries.len(),
                    grid.columns.len()
                )));
            }
            for entry in &row.entries {
                for cell in entry.referenced_cells() {
                    if !seen.contains(cell) {
                        return Err(LdpError::invalid(format!(
                            "scenario {}, grid '{}', row '{}': unknown cell '{}'",
                            scenario.id, grid.title, row.label, cell
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

/// One schedulable unit of work.
enum Unit<'a> {
    /// A lone experiment cell.
    Experiment {
        cell_index: usize,
        config: ExperimentConfig,
        options: &'a PipelineOptions,
    },
    /// Experiment cells identical up to η, fused into one aggregation-
    /// sharing sweep.
    EtaSweep {
        cell_indices: Vec<usize>,
        base: ExperimentConfig,
        etas: Vec<f64>,
        options: &'a PipelineOptions,
    },
    /// A custom cell.
    Custom {
        cell_index: usize,
        cell: &'a crate::scenario::spec::CustomCell,
        ctx: CellCtx,
    },
}

impl Unit<'_> {
    fn cell_indices(&self) -> Vec<usize> {
        match self {
            Unit::Experiment { cell_index, .. } | Unit::Custom { cell_index, .. } => {
                vec![*cell_index]
            }
            Unit::EtaSweep { cell_indices, .. } => cell_indices.clone(),
        }
    }
}

/// Applies the run scale to every cell and fuses η-only neighbours.
fn plan_units<'a>(scenario: &'a Scenario, scale: &RunScale) -> Vec<Unit<'a>> {
    // Materialize experiment configs at the requested scale.
    let mut experiment: Vec<(usize, ExperimentConfig, &'a PipelineOptions)> = Vec::new();
    let mut units: Vec<Unit<'a>> = Vec::new();
    for (index, cell) in scenario.cells.iter().enumerate() {
        match &cell.kind {
            CellKind::Experiment { config, options } => {
                let mut config = config.clone();
                config.trials = scale.trials;
                config.seed = scale.seed;
                config.scale = scale.scale.fraction(config.dataset);
                experiment.push((index, config, options));
            }
            CellKind::Custom(custom) => {
                let seed = derive_seed(scale.seed, xxh64(cell.id.as_bytes(), CELL_SEED_SALT));
                units.push(Unit::Custom {
                    cell_index: index,
                    cell: custom,
                    ctx: CellCtx::new(scale.trials, seed, scale.scale),
                });
            }
        }
    }

    // Group experiment cells whose configs agree on everything but η.
    let mut groups: Vec<Vec<usize>> = Vec::new(); // indices into `experiment`
    'next: for i in 0..experiment.len() {
        for group in &mut groups {
            let (_, leader_cfg, leader_opts) = &experiment[group[0]];
            let (_, cfg, opts) = &experiment[i];
            let mut eta_neutral = cfg.clone();
            eta_neutral.eta = leader_cfg.eta;
            if eta_neutral == *leader_cfg && opts == leader_opts {
                group.push(i);
                continue 'next;
            }
        }
        groups.push(vec![i]);
    }

    for group in groups {
        if group.len() == 1 {
            let (cell_index, config, options) = experiment[group[0]].clone();
            units.push(Unit::Experiment {
                cell_index,
                config,
                options,
            });
        } else {
            let (_, base, options) = experiment[group[0]].clone();
            units.push(Unit::EtaSweep {
                cell_indices: group.iter().map(|&g| experiment[g].0).collect(),
                etas: group.iter().map(|&g| experiment[g].1.eta).collect(),
                base,
                options,
            });
        }
    }
    units
}

/// Worker count for the unit fan-out: what's left of the machine after
/// each unit's internal trial fan-out takes its share.
fn outer_thread_count(trials: usize, units: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    (cores / thread_count(trials).max(1)).clamp(1, units.max(1))
}

/// Executes one unit, returning the metric set of each of its cells (in
/// `cell_indices` order).
fn execute(unit: &Unit<'_>, scale: &RunScale) -> Result<Vec<Vec<(String, Stats)>>> {
    match unit {
        Unit::Experiment {
            config, options, ..
        } => {
            let result = run_experiment(config, options)?;
            Ok(vec![experiment_metrics(&result)])
        }
        Unit::EtaSweep {
            base,
            etas,
            options,
            ..
        } => {
            let results = run_eta_sweep(base, etas, options)?;
            Ok(results.iter().map(experiment_metrics).collect())
        }
        Unit::Custom { cell, ctx, .. } => {
            let per_trial = map_trials(scale.trials, thread_count(scale.trials), |trial| {
                (cell.run)(trial, ctx)
            })?;
            Ok(vec![fold_custom_metrics(&per_trial)?])
        }
    }
}

/// Every metric an experiment run produced, derived generically from the
/// arms that ran: the two baselines, then `mse_{arm}`, then `fg_before` +
/// `fg_{arm}`, then `malicious_mse_{arm}` — whatever arms the cell
/// selected, no per-defense code.
fn experiment_metrics(result: &crate::runner::ExperimentResult) -> Vec<(String, Stats)> {
    let mut out = vec![
        ("mse_genuine".to_string(), result.mse_genuine),
        ("mse_before".to_string(), result.mse_before),
    ];
    for (key, arm) in &result.arms {
        if let Some(stats) = arm.mse {
            out.push((format!("mse_{key}"), stats));
        }
    }
    if let Some(stats) = result.fg_before {
        out.push(("fg_before".to_string(), stats));
    }
    for (key, arm) in &result.arms {
        if let Some(stats) = arm.fg {
            out.push((format!("fg_{key}"), stats));
        }
    }
    for (key, arm) in &result.arms {
        if let Some(stats) = arm.malicious_mse {
            out.push((format!("malicious_mse_{key}"), stats));
        }
    }
    out
}

/// Folds custom-cell trial outputs into per-metric [`Stats`], enforcing a
/// consistent metric set across trials.
fn fold_custom_metrics(per_trial: &[Vec<(&'static str, f64)>]) -> Result<Vec<(String, Stats)>> {
    let first = per_trial
        .first()
        .ok_or(LdpError::EmptyInput("custom-cell trials"))?;
    let names: Vec<&'static str> = first.iter().map(|(name, _)| *name).collect();
    let mut values: Vec<Vec<f64>> = names.iter().map(|_| Vec::new()).collect();
    for trial in per_trial {
        if trial.len() != names.len() {
            return Err(LdpError::invalid(
                "custom cell produced inconsistent metric sets across trials",
            ));
        }
        for ((name, value), (expected, bucket)) in trial.iter().zip(names.iter().zip(&mut values)) {
            if name != expected {
                return Err(LdpError::invalid(format!(
                    "custom cell metric order changed across trials: '{name}' vs '{expected}'"
                )));
            }
            bucket.push(*value);
        }
    }
    Ok(names
        .into_iter()
        .zip(values)
        .map(|(name, vals)| (name.to_string(), Stats::from_values(&vals)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::{Cell, Entry, GridSpec, Metric, RowSpec, ScaleSpec};
    use ldp_attacks::AttackKind;
    use ldp_datasets::DatasetKind;
    use ldp_protocols::ProtocolKind;
    use ldprecover::ArmKind;

    fn tiny_scale() -> RunScale {
        RunScale {
            trials: 2,
            seed: 7,
            scale: ScaleSpec::Fraction(0.004),
        }
    }

    fn exp_cell(id: &str, eta: f64) -> Cell {
        let mut config = ExperimentConfig::paper_default(
            DatasetKind::Ipums,
            ProtocolKind::Grr,
            Some(AttackKind::Adaptive),
        );
        config.eta = eta;
        Cell::experiment(id, config, PipelineOptions::recovery_only())
    }

    fn scenario(cells: Vec<Cell>, grids: Vec<GridSpec>) -> Scenario {
        Scenario {
            id: "test",
            title: "test scenario",
            paper_anchor: "",
            cells,
            grids,
            notes: vec![],
        }
    }

    #[test]
    fn runs_experiment_and_custom_cells() {
        let s = scenario(
            vec![
                exp_cell("exp", 0.2),
                Cell::custom("twice-trial", |trial, _ctx| {
                    Ok(vec![("value", 2.0 * trial as f64), ("one", 1.0)])
                }),
            ],
            vec![GridSpec {
                title: "t".into(),
                row_header: "row".into(),
                columns: vec!["MSE".into(), "custom".into()],
                rows: vec![RowSpec {
                    label: "r".into(),
                    entries: vec![
                        Entry::stat("exp", Metric::mse(ArmKind::Recover)),
                        Entry::stat("twice-trial", Metric::Custom("value")),
                    ],
                }],
            }],
        );
        let report = run_scenario(&s, &tiny_scale()).unwrap();
        assert_eq!(report.cells.len(), 2);
        let exp = report.metric("exp", "mse_recover").expect("mse_recover");
        assert_eq!(exp.count, 2);
        let custom = report.metric("twice-trial", "value").expect("value");
        assert!((custom.mean - 1.0).abs() < 1e-12, "mean of 0,2");
        assert_eq!(report.metric("twice-trial", "one").unwrap().std, 0.0);
        assert_eq!(report.grids.len(), 1);
        assert_eq!(report.grids[0].table.len(), 1);
    }

    #[test]
    fn eta_only_cells_fuse_and_match_standalone_runs() {
        // The fusion contract: a fused cell's numbers are bit-identical to
        // running the same cell alone.
        let fused = scenario(vec![exp_cell("a", 0.05), exp_cell("b", 0.4)], vec![]);
        let alone = scenario(vec![exp_cell("b", 0.4)], vec![]);
        let scale = tiny_scale();
        let fused_report = run_scenario(&fused, &scale).unwrap();
        let alone_report = run_scenario(&alone, &scale).unwrap();
        let (x, y) = (
            fused_report.metric("b", "mse_recover").unwrap(),
            alone_report.metric("b", "mse_recover").unwrap(),
        );
        assert_eq!(x.mean.to_bits(), y.mean.to_bits());
        // Shared aggregation: before-recovery MSE identical across the fused η cells.
        assert_eq!(
            fused_report
                .metric("a", "mse_before")
                .unwrap()
                .mean
                .to_bits(),
            fused_report
                .metric("b", "mse_before")
                .unwrap()
                .mean
                .to_bits(),
        );
        // Different η ⇒ different recovery.
        assert_ne!(
            fused_report.metric("a", "mse_recover").unwrap().mean,
            fused_report.metric("b", "mse_recover").unwrap().mean,
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let s1 = scenario(vec![exp_cell("a", 0.2), exp_cell("b", 0.1)], vec![]);
        let s2 = scenario(vec![exp_cell("a", 0.2), exp_cell("b", 0.1)], vec![]);
        let scale = tiny_scale();
        let a = run_scenario(&s1, &scale).unwrap();
        let b = run_scenario(&s2, &scale).unwrap();
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    #[test]
    fn custom_cells_get_stable_per_cell_streams() {
        let build = || {
            scenario(
                vec![
                    Cell::custom("draw-a", |trial, ctx| {
                        use rand::Rng;
                        Ok(vec![("v", ctx.trial_rng(trial).gen::<f64>())])
                    }),
                    Cell::custom("draw-b", |trial, ctx| {
                        use rand::Rng;
                        Ok(vec![("v", ctx.trial_rng(trial).gen::<f64>())])
                    }),
                ],
                vec![],
            )
        };
        let scale = tiny_scale();
        let a = run_scenario(&build(), &scale).unwrap();
        let b = run_scenario(&build(), &scale).unwrap();
        // Stable per cell across runs…
        assert_eq!(
            a.metric("draw-a", "v").unwrap().mean.to_bits(),
            b.metric("draw-a", "v").unwrap().mean.to_bits()
        );
        // …and independent between cells (distinct id ⇒ distinct stream).
        assert_ne!(
            a.metric("draw-a", "v").unwrap().mean.to_bits(),
            a.metric("draw-b", "v").unwrap().mean.to_bits()
        );
    }

    #[test]
    fn validation_rejects_malformed_scenarios() {
        // Duplicate ids.
        let dup = scenario(vec![exp_cell("x", 0.2), exp_cell("x", 0.3)], vec![]);
        assert!(run_scenario(&dup, &tiny_scale()).is_err());

        // Dangling grid reference.
        let dangling = scenario(
            vec![exp_cell("x", 0.2)],
            vec![GridSpec {
                title: "t".into(),
                row_header: "r".into(),
                columns: vec!["c".into()],
                rows: vec![RowSpec {
                    label: "r1".into(),
                    entries: vec![Entry::stat("ghost", Metric::MseBefore)],
                }],
            }],
        );
        assert!(run_scenario(&dangling, &tiny_scale()).is_err());

        // Ragged row.
        let ragged = scenario(
            vec![exp_cell("x", 0.2)],
            vec![GridSpec {
                title: "t".into(),
                row_header: "r".into(),
                columns: vec!["c1".into(), "c2".into()],
                rows: vec![RowSpec {
                    label: "r1".into(),
                    entries: vec![Entry::Blank],
                }],
            }],
        );
        assert!(run_scenario(&ragged, &tiny_scale()).is_err());

        // Zero trials.
        let ok = scenario(vec![exp_cell("x", 0.2)], vec![]);
        let mut scale = tiny_scale();
        scale.trials = 0;
        assert!(run_scenario(&ok, &scale).is_err());
    }

    #[test]
    fn custom_metric_consistency_is_enforced() {
        let s = scenario(
            vec![Cell::custom("flaky", |trial, _ctx| {
                if trial == 0 {
                    Ok(vec![("a", 1.0)])
                } else {
                    Ok(vec![("b", 1.0)])
                }
            })],
            vec![],
        );
        assert!(run_scenario(&s, &tiny_scale()).is_err());
    }
}
