//! Re-export of the shared JSON value layer.
//!
//! The hand-rolled JSON subset (objects, arrays, strings, finite numbers,
//! booleans, null — no `serde_json` under the vendored-dependency policy)
//! started life here serving the scenario reports and golden files. The
//! streaming ingestion engine's checkpoints need the same layer below the
//! `ldp-sim` crate, so the implementation now lives in
//! [`ldp_common::json`]; this module keeps the historical
//! `ldp_sim::scenario::json::Json` path working.

pub use ldp_common::json::Json;
