//! The scenario-matrix subsystem: the paper's evaluation grids as data.
//!
//! The paper's headline results are grids — recovery accuracy across
//! protocol × attack × β × dataset — and this module turns each of them
//! into a declarative [`Scenario`]: uniquely-named cells (standard
//! experiment configs or custom per-trial closures) plus presentation
//! grids that pivot cell metrics into the tables the paper prints.
//!
//! * [`spec`] — the scenario/cell/grid/metric vocabulary and [`RunScale`]
//!   (trials, seed, and the `small`/`paper` scale presets).
//! * [`run`] — the engine: validation, η-sweep fusion, parallel cell
//!   execution through the trial runner's `map_trials`.
//! * [`report`] — structured results ([`ScenarioReport`]) with rendered
//!   tables and JSON emit.
//! * [`golden`] — blessed mean ± SEM-derived tolerance snapshots, the
//!   regression gate of `tests/golden_repro.rs`.
//! * [`catalog`] — every figure/table of the paper (and the ablation/KV
//!   extensions) as scenario definitions; the single source of truth the
//!   `fig*` binaries, the `ldp repro` subcommand, and the golden suite
//!   all share.
//! * [`json`] — the minimal hand-rolled JSON layer (no `serde_json` under
//!   the vendored-dependency policy).

pub mod catalog;
pub mod golden;
pub mod json;
pub mod report;
pub mod run;
pub mod spec;

pub use golden::{Golden, GoldenEntry};
pub use json::Json;
pub use report::{CellReport, GridReport, ScenarioReport};
pub use run::run_scenario;
pub use spec::{
    Cell, CellCtx, CellKind, Entry, GridSpec, Metric, RowSpec, RunScale, ScaleSpec, Scenario,
};
