//! Multi-process streaming smoke tests — run in plain `cargo test`.
//!
//! These spawn the real `ldp` binary: a coordinator with `--workers 4`
//! driving shard-worker child processes over the stdio frame protocol,
//! including one run with an injected worker crash mid-epoch. The
//! contract under test is the tentpole guarantee: a multi-process run —
//! even one that loses a worker and replays its shards on a respawned
//! process — emits **byte-identical** stdout and JSON to the plain
//! in-process engine.
//!
//! The specs here are deliberately tiny (8 shards × 3 epochs, 80 users
//! per epoch) so the whole file stays CI-cheap; the full five-protocol
//! matrix lives in the `--ignored` test at the bottom.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Runs `ldp stream` with the base spec plus `extra` args, writing the
/// JSON report to `json_name` under a per-test temp dir; asserts success.
fn run_stream(dir: &Path, base: &[&str], extra: &[&str], json_name: &str) -> (Output, Vec<u8>) {
    let json_path = dir.join(json_name);
    let _ = std::fs::remove_file(&json_path);
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .arg("stream")
        .args(base)
        .args(extra)
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("spawn ldp stream");
    assert!(
        output.status.success(),
        "ldp stream {base:?} {extra:?} exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let json = std::fs::read(&json_path).expect("json report written");
    (output, json)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn four_workers_with_an_injected_crash_match_in_process_byte_for_byte() {
    let dir = temp_dir("ldprecover-mp-smoke");
    let base = [
        "--protocol",
        "grr",
        "--attack",
        "mga",
        "--targets",
        "5",
        "--shards",
        "8",
        "--epochs",
        "3",
        "--users-per-epoch",
        "80",
    ];

    // Reference: the in-process engine.
    let (in_process, json_ref) = run_stream(&dir, &base, &[], "inproc.json");

    // Coordinator + 4 healthy worker processes.
    let (healthy, json_healthy) = run_stream(&dir, &base, &["--workers", "4"], "mp.json");
    assert_eq!(
        in_process.stdout, healthy.stdout,
        "multi-process stdout must be byte-identical to in-process"
    );
    assert_eq!(
        json_ref, json_healthy,
        "multi-process JSON report must be byte-identical to in-process"
    );

    // Coordinator + 4 workers, worker 0 killed mid-epoch on its second
    // work unit; its shards must be reassigned to a respawned process and
    // replayed with no trace in the output.
    let (crashed, json_crashed) = run_stream(
        &dir,
        &base,
        &["--workers", "4", "--inject-fault", "worker-crash@1"],
        "mp-crash.json",
    );
    assert_eq!(
        in_process.stdout, crashed.stdout,
        "failover replay must reproduce the in-process stdout byte-for-byte"
    );
    assert_eq!(
        json_ref, json_crashed,
        "failover replay must reproduce the in-process JSON byte-for-byte"
    );
}

#[test]
fn corrupt_frames_and_stalls_fail_over_to_bit_identical_replay() {
    let dir = temp_dir("ldprecover-mp-faults");
    let base = [
        "--protocol",
        "oue",
        "--shards",
        "4",
        "--epochs",
        "2",
        "--users-per-epoch",
        "40",
    ];
    let (reference, json_ref) = run_stream(&dir, &base, &[], "ref.json");

    // A worker that answers with an unparsable frame is treated as failed
    // and its unit replays on a fresh process.
    let (corrupt, json_corrupt) = run_stream(
        &dir,
        &base,
        &["--workers", "2", "--inject-fault", "corrupt-frame@0"],
        "corrupt.json",
    );
    assert_eq!(reference.stdout, corrupt.stdout);
    assert_eq!(json_ref, json_corrupt);

    // A stalled worker trips the per-unit timeout (tightened from the
    // 10s default so the test stays fast), is killed, and replays.
    let (stalled, json_stalled) = run_stream(
        &dir,
        &base,
        &[
            "--workers",
            "2",
            "--worker-timeout-ms",
            "500",
            "--inject-fault",
            "stall@0",
        ],
        "stall.json",
    );
    assert_eq!(reference.stdout, stalled.stdout);
    assert_eq!(json_ref, json_stalled);
}

#[test]
fn windowed_multiprocess_runs_match_in_process() {
    // --window flows through the wire-protocol spec unchanged, so the
    // windowed recovery path must also be byte-identical across engines.
    let dir = temp_dir("ldprecover-mp-window");
    for window in ["sliding:2", "decay:0.75"] {
        let base = [
            "--protocol",
            "olh",
            "--shards",
            "4",
            "--epochs",
            "3",
            "--users-per-epoch",
            "40",
            "--window",
            window,
        ];
        let name_in = format!("w-in-{}.json", window.replace(':', "-"));
        let name_mp = format!("w-mp-{}.json", window.replace(':', "-"));
        let (in_process, json_ref) = run_stream(&dir, &base, &[], &name_in);
        let (multi, json_mp) = run_stream(&dir, &base, &["--workers", "3"], &name_mp);
        assert_eq!(in_process.stdout, multi.stdout, "window {window}");
        assert_eq!(json_ref, json_mp, "window {window}");
    }
}

#[test]
#[ignore = "full five-protocol matrix with crash injection; run with --ignored"]
fn all_five_protocols_survive_crash_failover_byte_for_byte() {
    let dir = temp_dir("ldprecover-mp-matrix");
    for protocol in ["grr", "oue", "olh", "sue", "hr"] {
        let base = [
            "--protocol",
            protocol,
            "--attack",
            "mga",
            "--targets",
            "5",
            "--shards",
            "8",
            "--epochs",
            "4",
            "--users-per-epoch",
            "160",
        ];
        let name_in = format!("{protocol}-in.json");
        let name_mp = format!("{protocol}-mp.json");
        let (in_process, json_ref) = run_stream(&dir, &base, &[], &name_in);
        let (multi, json_mp) = run_stream(
            &dir,
            &base,
            &["--workers", "4", "--inject-fault", "worker-crash@1"],
            &name_mp,
        );
        assert_eq!(in_process.stdout, multi.stdout, "protocol {protocol}");
        assert_eq!(json_ref, json_mp, "protocol {protocol}");
    }
}
