//! Golden-file lock on `Table::render_csv` escaping.
//!
//! The CSV emit feeds downstream plotting, so its quoting rules are a
//! compatibility surface: cells containing commas, double quotes, or
//! CR/LF line breaks must be quoted (with `"` doubled), and everything
//! else must pass through byte-identically. The blessed bytes live in
//! `tests/golden/render_csv.golden`; regenerate deliberately with
//! `LDP_BLESS_GOLDENS=1 cargo test -p ldp-sim --test table_csv_golden`.
//!
//! This file caught (and now pins the fix for) a real escaping bug: bare
//! carriage returns were not quoted, so a `\r` inside a cell silently
//! split the record on CRLF-aware readers.

use ldp_sim::Table;

fn specimen() -> Table {
    let mut t = Table::new(["name", "value", "notes"]);
    t.push_row(["plain", "1.0", "no escaping"]);
    t.push_row(["comma,cell", "quote\"cell", "both,\"at once\""]);
    t.push_row(["newline\ncell", "cr\rcell", "crlf\r\nboth"]);
    t.push_row(["trailing space ", " leading", "unicode ±ε, η=0.2"]);
    t.push_row(["", "-", "empty first cell"]);
    t
}

#[test]
fn render_csv_matches_golden() {
    let got = specimen().render_csv();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/render_csv.golden");
    if std::env::var_os("LDP_BLESS_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nbless with LDP_BLESS_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        got, golden,
        "render_csv drifted from the blessed bytes; if intentional, \
         re-bless with LDP_BLESS_GOLDENS=1"
    );
}

#[test]
fn csv_quoting_contract() {
    let csv = specimen().render_csv();
    let lines: Vec<&str> = csv.split('\n').collect();
    // Unescaped cells pass through verbatim.
    assert_eq!(lines[0], "name,value,notes");
    assert_eq!(lines[1], "plain,1.0,no escaping");
    // Commas and quotes force quoting; inner quotes double.
    assert_eq!(
        lines[2],
        "\"comma,cell\",\"quote\"\"cell\",\"both,\"\"at once\"\"\""
    );
    // LF, bare CR, and CRLF cells are all quoted — the record continues
    // across the embedded break (RFC 4180 §2.6).
    assert!(csv.contains("\"newline\ncell\""));
    assert!(csv.contains("\"cr\rcell\""), "bare CR must be quoted");
    assert!(csv.contains("\"crlf\r\nboth\""));
    // Whitespace and unicode are preserved, not trimmed.
    assert!(csv.contains("trailing space , leading,\"unicode ±ε, η=0.2\""));
    // Empty cells stay empty (no quotes).
    assert!(csv.contains("\n,-,empty first cell\n"));
}
