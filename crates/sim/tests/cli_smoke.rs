//! `#[ignore]`-gated smoke test for the `ldp` CLI: argument parsing plus
//! one tiny end-to-end experiment cell.

use std::process::Command;

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_cli_runs_one_tiny_cell() {
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args([
            "--protocol",
            "oue",
            "--attack",
            "mga",
            "--targets",
            "5",
            "--trials",
            "1",
            "--scale",
            "0.005",
        ])
        .output()
        .expect("spawn ldp");
    assert!(
        output.status.success(),
        "ldp exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("LDPRecover"),
        "expected method rows in output:\n{stdout}"
    );
}

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_cli_rejects_unknown_protocol() {
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args(["--protocol", "telepathy"])
        .output()
        .expect("spawn ldp");
    assert!(!output.status.success());
}
