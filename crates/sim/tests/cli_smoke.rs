//! `#[ignore]`-gated smoke test for the `ldp` CLI: argument parsing plus
//! one tiny end-to-end experiment cell.

use std::process::Command;

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_cli_runs_one_tiny_cell() {
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args([
            "--protocol",
            "oue",
            "--attack",
            "mga",
            "--targets",
            "5",
            "--trials",
            "1",
            "--scale",
            "0.005",
        ])
        .output()
        .expect("spawn ldp");
    assert!(
        output.status.success(),
        "ldp exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("LDPRecover"),
        "expected method rows in output:\n{stdout}"
    );
}

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_repro_subcommand_runs_one_figure() {
    let dir = std::env::temp_dir().join("ldprecover-cli-smoke");
    // The CLI fail-fasts on missing output parents instead of creating
    // them (see `validate_output_parent`), so the dir must exist.
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("table1.json");
    let _ = std::fs::remove_file(&json_path);
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args([
            "repro", "--figure", "table1", "--scale", "0.002", "--trials", "1",
        ])
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("spawn ldp repro");
    assert!(
        output.status.success(),
        "ldp repro exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Table I"), "expected the table:\n{stdout}");
    let json = std::fs::read_to_string(&json_path).expect("json written");
    assert!(json.contains("\"figure\": \"table1\""));
}

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_repro_rejects_unknown_figure() {
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args(["repro", "--figure", "fig99"])
        .output()
        .expect("spawn ldp repro");
    assert!(!output.status.success());
}

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_cli_rejects_unknown_protocol() {
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args(["--protocol", "telepathy"])
        .output()
        .expect("spawn ldp");
    assert!(!output.status.success());
}

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_stream_resume_reproduces_the_uninterrupted_run_byte_for_byte() {
    // The acceptance contract: a 16-shard 8-epoch checkpointed run,
    // suspended halfway and resumed from the checkpoint, emits exactly the
    // bytes of the uninterrupted run — stdout table and JSON report alike.
    let dir = std::env::temp_dir().join("ldprecover-stream-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("c.json");
    let json_full = dir.join("full.json");
    let json_resumed = dir.join("resumed.json");
    for p in [&ckpt, &json_full, &json_resumed] {
        let _ = std::fs::remove_file(p);
    }
    let base = [
        "stream",
        "--shards",
        "16",
        "--epochs",
        "8",
        "--users-per-epoch",
        "160",
    ];

    // Reference: uninterrupted run.
    let full = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args(base)
        .arg("--json")
        .arg(&json_full)
        .output()
        .expect("spawn ldp stream");
    assert!(
        full.status.success(),
        "stderr:\n{}",
        String::from_utf8_lossy(&full.stderr)
    );

    // Suspended run: 4 of 8 epochs, checkpoint after every epoch.
    let half = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args(base)
        .args(["--suspend-after", "4", "--checkpoint"])
        .arg(&ckpt)
        .output()
        .expect("spawn ldp stream (suspend)");
    assert!(half.status.success());
    assert!(
        String::from_utf8_lossy(&half.stdout).contains("suspended after 4 of 8"),
        "suspension notice"
    );

    // Resume to completion from the checkpoint.
    let resumed = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args(["stream", "--resume"])
        .arg(&ckpt)
        .arg("--json")
        .arg(&json_resumed)
        .output()
        .expect("spawn ldp stream (resume)");
    assert!(
        resumed.status.success(),
        "stderr:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    assert_eq!(
        full.stdout, resumed.stdout,
        "resumed stdout must be byte-identical to the uninterrupted run"
    );
    assert_eq!(
        std::fs::read(&json_full).unwrap(),
        std::fs::read(&json_resumed).unwrap(),
        "resumed JSON report must be byte-identical to the uninterrupted run"
    );
}

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn output_flags_into_missing_directories_fail_before_any_work() {
    // `--json`/`--checkpoint` pointing into a directory that doesn't
    // exist must fail up front with a clear message — not run the whole
    // experiment and then lose the report to a bare io error.
    let missing = std::env::temp_dir()
        .join("ldprecover-no-such-dir")
        .join("out.json");
    let _ = std::fs::remove_dir_all(missing.parent().unwrap());
    for args in [
        vec!["repro", "--figure", "table1", "--scale", "0.002", "--json"],
        vec!["stream", "--epochs", "2", "--json"],
        vec!["stream", "--epochs", "2", "--checkpoint"],
    ] {
        let flag = args[args.len() - 1];
        let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
            .args(&args)
            .arg(&missing)
            .output()
            .expect("spawn ldp");
        assert!(!output.status.success(), "{flag} into a missing dir");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("does not exist") && stderr.contains(flag),
            "{flag}: expected a clear parent-directory error, got:\n{stderr}"
        );
    }
}

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_stream_resume_diffs_conflicting_spec_flags() {
    // Spec flags alongside --resume are legal when they agree with the
    // checkpoint; a disagreement fails fast with a field-by-field diff
    // instead of silently running the wrong experiment.
    let dir = std::env::temp_dir().join("ldprecover-resume-diff-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("c.json");
    let _ = std::fs::remove_file(&ckpt);
    let made = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args([
            "stream",
            "--shards",
            "4",
            "--epochs",
            "4",
            "--suspend-after",
            "2",
        ])
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .expect("spawn ldp stream (checkpoint)");
    assert!(made.status.success());

    // Conflicting --shards: fail fast, name the field, show both values.
    let conflicted = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args(["stream", "--resume"])
        .arg(&ckpt)
        .args(["--shards", "2"])
        .output()
        .expect("spawn ldp stream (conflict)");
    assert!(!conflicted.status.success());
    let stderr = String::from_utf8_lossy(&conflicted.stderr);
    assert!(
        stderr.contains("disagrees with the given spec flags")
            && stderr.contains("--shards: flag 2 != checkpoint 4"),
        "expected a field-by-field diff, got:\n{stderr}"
    );

    // Matching flags restate the checkpoint's spec and proceed.
    let agreed = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args(["stream", "--resume"])
        .arg(&ckpt)
        .args(["--shards", "4", "--epochs", "4"])
        .output()
        .expect("spawn ldp stream (agree)");
    assert!(
        agreed.status.success(),
        "matching spec flags must be accepted:\n{}",
        String::from_utf8_lossy(&agreed.stderr)
    );
}
