//! `#[ignore]`-gated smoke test for the `ldp` CLI: argument parsing plus
//! one tiny end-to-end experiment cell.

use std::process::Command;

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_cli_runs_one_tiny_cell() {
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args([
            "--protocol",
            "oue",
            "--attack",
            "mga",
            "--targets",
            "5",
            "--trials",
            "1",
            "--scale",
            "0.005",
        ])
        .output()
        .expect("spawn ldp");
    assert!(
        output.status.success(),
        "ldp exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("LDPRecover"),
        "expected method rows in output:\n{stdout}"
    );
}

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_repro_subcommand_runs_one_figure() {
    let dir = std::env::temp_dir().join("ldprecover-cli-smoke");
    let json_path = dir.join("table1.json");
    let _ = std::fs::remove_file(&json_path);
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args([
            "repro", "--figure", "table1", "--scale", "0.002", "--trials", "1",
        ])
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("spawn ldp repro");
    assert!(
        output.status.success(),
        "ldp repro exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Table I"), "expected the table:\n{stdout}");
    let json = std::fs::read_to_string(&json_path).expect("json written");
    assert!(json.contains("\"figure\": \"table1\""));
}

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_repro_rejects_unknown_figure() {
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args(["repro", "--figure", "fig99"])
        .output()
        .expect("spawn ldp repro");
    assert!(!output.status.success());
}

#[test]
#[ignore = "spawns the CLI binary; run with --ignored"]
fn ldp_cli_rejects_unknown_protocol() {
    let output = Command::new(env!("CARGO_BIN_EXE_ldp"))
        .args(["--protocol", "telepathy"])
        .output()
        .expect("spawn ldp");
    assert!(!output.status.success());
}
