//! Wire-protocol fuzzing for the coordinator ↔ worker transport
//! (`ldp_sim::stream::transport`).
//!
//! The distributed streaming mode is only as trustworthy as its framing:
//! every payload must round-trip bit-for-bit (that is what makes
//! multi-process runs byte-identical to in-process ones), and every torn,
//! oversized, or corrupt frame must surface as a typed error the
//! coordinator can fail over from — never as a panic or a silent
//! misparse. These properties drive random payloads, random cut points,
//! and random garbage through the reader to gate exactly that.

use ldp_attacks::AttackKind;
use ldp_common::Json;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::stream::transport::{
    read_frame, write_frame, write_raw_frame, WorkerRequest, WorkerResponse, MAX_FRAME_LEN,
};
use ldp_sim::stream::{ShardDelta, StreamSpec, WindowMode};
use proptest::prelude::*;

/// Strings exercising escaping-relevant characters alongside plain text.
fn string_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        any::<u64>().prop_map(|x| format!("s{x:x}")),
        any::<u32>().prop_map(|x| format!("q\"uo\\te {x}")),
        any::<u32>().prop_map(|x| format!("nl\n\ttab {x}")),
    ]
}

/// Arbitrary JSON values: finite numbers only (the renderer maps
/// non-finite floats to `null`, which would not round-trip as `Num`).
fn json_strategy() -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1.0e12f64..1.0e12).prop_map(Json::Num),
        string_strategy().prop_map(Json::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        let key = (0u32..1000).prop_map(|k| format!("k{k}"));
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
            prop::collection::vec((key, inner), 0..4).prop_map(|pairs| {
                // Objects must not repeat keys for the round-trip to be
                // well-defined; keep the first occurrence of each.
                let mut seen = std::collections::HashSet::new();
                Json::Obj(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

/// Valid stream specs with randomized shape, seed, ε, and window mode —
/// `WorkerRequest::from_json` re-validates the embedded spec, so every
/// generated spec must pass `StreamSpec::validate`.
fn spec_strategy() -> impl Strategy<Value = StreamSpec> {
    (
        1usize..5,
        1usize..4,
        any::<u64>(),
        0.1f64..4.0,
        prop_oneof![
            Just(WindowMode::Cumulative),
            (1usize..4).prop_map(WindowMode::Sliding),
            (0.1f64..0.95).prop_map(WindowMode::Decay),
        ],
    )
        .prop_map(|(shards, epochs, seed, epsilon, window)| StreamSpec {
            dataset: DatasetKind::Ipums,
            protocol: ProtocolKind::Grr,
            epsilon,
            attack: Some(AttackKind::Adaptive),
            beta: 0.05,
            eta: 0.2,
            shards,
            epochs,
            users_per_epoch: shards * 40,
            seed,
            window,
        })
}

/// Shard deltas over a `domain_size`-item domain. Counts stay below the
/// checkpoint layer's 2^53 safe-integer ceiling so the f64 wire encoding
/// is exact.
fn delta_strategy(domain_size: usize) -> impl Strategy<Value = ShardDelta> {
    (
        prop::collection::vec(0u64..(1 << 40), domain_size),
        prop::collection::vec(0u64..(1 << 40), domain_size),
        0usize..100_000,
        prop::collection::vec(0u64..(1 << 40), domain_size),
        0usize..100_000,
    )
        .prop_map(
            |(population, genuine_counts, genuine_users, malicious_counts, malicious_users)| {
                ShardDelta {
                    population,
                    genuine_counts,
                    genuine_users,
                    malicious_counts,
                    malicious_users,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A sequence of frames reads back payload-for-payload, and EOF at
    /// the frame boundary is a clean `Ok(None)`.
    #[test]
    fn frames_roundtrip_in_sequence(payloads in prop::collection::vec(json_strategy(), 0..5)) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).expect("write");
        }
        let mut reader = wire.as_slice();
        for p in &payloads {
            prop_assert_eq!(read_frame(&mut reader).expect("read"), Some(p.clone()));
        }
        prop_assert_eq!(read_frame(&mut reader).expect("eof"), None);
    }

    /// Cutting a frame at ANY interior byte — inside the prefix or inside
    /// the payload — is a hard error, never a short read.
    #[test]
    fn truncated_frames_are_rejected_at_every_cut(
        payload in json_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write");
        let cut = 1 + cut.index(wire.len() - 1);
        let mut reader = &wire[..cut];
        prop_assert!(read_frame(&mut reader).is_err(), "cut at {}/{}", cut, wire.len());
    }

    /// A length prefix above `MAX_FRAME_LEN` is rejected before any
    /// allocation, regardless of what follows it.
    #[test]
    fn oversized_length_prefixes_are_rejected(
        excess in 1usize..(1 << 16),
        tail in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut wire = ((MAX_FRAME_LEN + excess) as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&tail);
        prop_assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    /// A correctly framed but non-UTF-8 payload (what `corrupt-frame`
    /// fault injection puts on the wire) is a parse error, not a panic —
    /// and it does not poison the reader for frames already consumed.
    #[test]
    fn corrupt_payloads_after_a_valid_frame_are_errors(
        good in json_strategy(),
        mut body in prop::collection::vec(any::<u8>(), 0..64),
        at in any::<prop::sample::Index>(),
    ) {
        let at = at.index(body.len() + 1);
        body.insert(at, 0xFF); // 0xFF is never valid UTF-8
        let mut wire = Vec::new();
        write_frame(&mut wire, &good).expect("write good");
        write_raw_frame(&mut wire, &body).expect("write corrupt");
        let mut reader = wire.as_slice();
        prop_assert_eq!(read_frame(&mut reader).expect("good frame"), Some(good));
        prop_assert!(read_frame(&mut reader).is_err(), "corrupt frame must error");
    }

    /// The reader is total on arbitrary byte streams: whatever garbage
    /// arrives, it returns `Ok`/`Err` — it never panics and never loops.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut reader = bytes.as_slice();
        for _ in 0..bytes.len() + 1 {
            match read_frame(&mut reader) {
                Ok(Some(_)) => {}          // bytes happened to frame valid JSON
                Ok(None) | Err(_) => break, // clean EOF or detected corruption
            }
        }
    }

    /// Work requests round-trip the wire across random specs — including
    /// the full render → parse cycle, so seeds, ε, and window parameters
    /// survive bit-for-bit.
    #[test]
    fn work_requests_roundtrip_the_wire(
        spec in spec_strategy(),
        shard in 0usize..4,
        epoch in 0usize..3,
    ) {
        let msg = WorkerRequest::Work {
            shard: shard % spec.shards,
            epoch: epoch % spec.epochs,
            spec,
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg.to_json()).expect("write");
        let frame = read_frame(&mut wire.as_slice()).expect("read").expect("one frame");
        prop_assert_eq!(WorkerRequest::from_json(&frame).expect("parse"), msg);
    }

    /// Delta responses round-trip the wire for random count vectors, and
    /// the parser enforces the expected domain size.
    #[test]
    fn delta_responses_roundtrip_the_wire(
        (domain_size, delta) in (1usize..24).prop_flat_map(|d| (Just(d), delta_strategy(d))),
        shard in 0usize..8,
        epoch in 0usize..8,
    ) {
        let msg = WorkerResponse::Delta { shard, epoch, delta };
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg.to_json()).expect("write");
        let frame = read_frame(&mut wire.as_slice()).expect("read").expect("one frame");
        prop_assert_eq!(
            WorkerResponse::from_json(&frame, domain_size).expect("parse"),
            msg.clone()
        );
        // The same frame against the wrong domain size must be rejected.
        prop_assert!(WorkerResponse::from_json(&frame, domain_size + 1).is_err());
    }
}
