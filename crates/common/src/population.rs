//! Population accounting shared by the offline and streaming engines.

/// Number of malicious users accompanying `genuine` genuine ones at
/// corruption fraction `β`: `m = round(β/(1−β)·genuine)`, so that
/// `β = m/(n+m)` (paper §VI-A.3).
///
/// This is the **single** canonical form of the formula; the offline
/// config (`ExperimentConfig::malicious_count`), the streaming spec
/// (`StreamSpec::malicious_count`), and the scenario catalog's custom
/// cells all route through it so a future rounding tweak cannot silently
/// fork one of them away from the goldens (regression-pinned in
/// `tests/determinism.rs`).
///
/// `β ≤ 0` yields 0; callers gate on "an attack is configured" —
/// `β` alone does not decide whether poisoning happens.
///
/// # Panics
/// Debug-asserts `β < 1` (a full-corruption fraction has no finite `m`).
pub fn malicious_count(beta: f64, genuine: usize) -> usize {
    debug_assert!(beta < 1.0, "beta must be < 1, got {beta}");
    if beta <= 0.0 {
        return 0;
    }
    ((beta / (1.0 - beta)) * genuine as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper_formula() {
        // β = 0.05, n = 7798 (the scale-0.02 IPUMS population): the
        // paper's m = round(0.05/0.95 · 7798) = 410.
        assert_eq!(malicious_count(0.05, 7798), 410);
        assert_eq!(malicious_count(0.0, 1_000_000), 0);
        assert_eq!(malicious_count(-0.1, 50), 0);
        assert_eq!(malicious_count(0.5, 100), 100);
    }

    #[test]
    fn beta_is_recovered_from_the_count() {
        for beta in [0.001, 0.01, 0.05, 0.1, 0.2, 0.25] {
            for n in [1_000usize, 50_000, 1_000_000] {
                let m = malicious_count(beta, n);
                let realized = m as f64 / (n + m) as f64;
                assert!(
                    (realized - beta).abs() < 1.0 / n as f64,
                    "beta={beta}, n={n}: realized {realized}"
                );
            }
        }
    }
}
