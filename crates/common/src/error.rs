//! Workspace-wide error type.
//!
//! Hand-rolled (no `thiserror`) to keep the dependency footprint at the
//! approved list; see DESIGN.md §3.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, LdpError>;

/// Errors produced by the LDPRecover workspace.
#[derive(Debug)]
pub enum LdpError {
    /// A parameter is outside its valid range (ε ≤ 0, empty domain, β ∉ [0,1), …).
    InvalidParameter(String),
    /// Two artifacts that must share a domain do not (e.g. a report vector of
    /// the wrong width, a frequency vector of the wrong length).
    DomainMismatch {
        /// Domain size the operation expected.
        expected: usize,
        /// Domain size it received.
        got: usize,
        /// What was being matched (for the message).
        context: &'static str,
    },
    /// An input collection that must be non-empty is empty.
    EmptyInput(&'static str),
    /// A numerical routine failed to converge or produced a non-finite value.
    Numerical(String),
    /// Underlying I/O failure (dataset loading).
    Io(std::io::Error),
    /// A dataset file line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the failure.
        message: String,
    },
}

impl fmt::Display for LdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdpError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            LdpError::DomainMismatch {
                expected,
                got,
                context,
            } => write!(
                f,
                "domain mismatch in {context}: expected size {expected}, got {got}"
            ),
            LdpError::EmptyInput(what) => write!(f, "empty input: {what}"),
            LdpError::Numerical(msg) => write!(f, "numerical error: {msg}"),
            LdpError::Io(err) => write!(f, "i/o error: {err}"),
            LdpError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LdpError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LdpError {
    fn from(err: std::io::Error) -> Self {
        LdpError::Io(err)
    }
}

impl LdpError {
    /// Shorthand constructor for [`LdpError::InvalidParameter`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        LdpError::InvalidParameter(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LdpError::invalid("epsilon must be positive");
        assert!(e.to_string().contains("epsilon"));

        let e = LdpError::DomainMismatch {
            expected: 10,
            got: 3,
            context: "frequency vector",
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('3') && msg.contains("frequency"));

        let e = LdpError::EmptyInput("reports");
        assert!(e.to_string().contains("reports"));

        let e = LdpError::Parse {
            line: 7,
            message: "not an integer".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: LdpError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
