//! Statistical substrate: streaming moments, the standard normal
//! distribution, and the Kolmogorov–Smirnov statistic.
//!
//! The theory modules (paper §V-E, Theorems 4–5) bound the distance between
//! the true CDF of the aggregated frequencies and their CLT-normal
//! approximation. Validating those bounds empirically requires (a) sample
//! moments including the third absolute central moment, (b) Φ, the normal
//! CDF, and (c) the KS distance between an empirical sample and a reference
//! CDF. All three live here.

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance `m2 / n` (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// Sample mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    crate::vecmath::kahan_sum(values) / values.len() as f64
}

/// Central moment `E[(X − mean)^k]` estimated from a sample.
pub fn central_moment(values: &[f64], k: u32) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|&x| (x - m).powi(k as i32)).sum::<f64>() / values.len() as f64
}

/// Third *absolute* central moment `E[|X − mean|³]` — the `g` of
/// Theorems 4–5.
pub fn third_absolute_central_moment(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|&x| (x - m).abs().powi(3)).sum::<f64>() / values.len() as f64
}

/// The error function, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (|error| ≤ 1.5 × 10⁻⁷, ample for KS tolerances).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal CDF Φ(z).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// CDF of N(mu, sigma²) at `x`; degenerates to a step function at `mu`
/// when `sigma == 0`.
pub fn normal_cdf_mu_sigma(x: f64, mu: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return if x < mu { 0.0 } else { 1.0 };
    }
    normal_cdf((x - mu) / sigma)
}

/// Kolmogorov–Smirnov statistic `sup_w |F̂_n(w) − F(w)|` between a sample and
/// a reference CDF.
///
/// # Panics
/// Panics on an empty sample.
pub fn ks_statistic<F: Fn(f64) -> f64>(sample: &[f64], cdf: F) -> f64 {
    assert!(!sample.is_empty(), "KS statistic of an empty sample");
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n; // empirical CDF just below x
        let hi = (i + 1) as f64 / n; // empirical CDF at x
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    #[test]
    fn running_moments_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rm = RunningMoments::new();
        for &x in &xs {
            rm.push(x);
        }
        assert_eq!(rm.count(), 8);
        assert!((rm.mean() - 5.0).abs() < 1e-12);
        assert!((rm.population_variance() - 4.0).abs() < 1e-12);
        assert!((rm.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!(rm.std_error() > 0.0);
    }

    #[test]
    fn running_moments_empty_and_single() {
        let rm = RunningMoments::new();
        assert_eq!(rm.mean(), 0.0);
        assert_eq!(rm.variance(), 0.0);
        let mut one = RunningMoments::new();
        one.push(3.0);
        assert_eq!(one.mean(), 3.0);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn moments_of_known_sample() {
        let xs = [-1.0, 1.0];
        assert_eq!(mean(&xs), 0.0);
        assert_eq!(central_moment(&xs, 2), 1.0);
        assert_eq!(central_moment(&xs, 3), 0.0);
        assert_eq!(third_absolute_central_moment(&xs), 1.0);
    }

    #[test]
    fn erf_known_values() {
        // A–S 7.1.26 is a ≤1.5e-7 approximation, not exact at 0.
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!(erf(6.0) > 0.999_999);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-4);
        assert!((normal_cdf_mu_sigma(5.0, 5.0, 2.0) - 0.5).abs() < 1e-9);
        // Degenerate sigma: step function.
        assert_eq!(normal_cdf_mu_sigma(4.9, 5.0, 0.0), 0.0);
        assert_eq!(normal_cdf_mu_sigma(5.0, 5.0, 0.0), 1.0);
    }

    #[test]
    fn ks_statistic_detects_fit_and_misfit() {
        // Uniform sample vs uniform CDF: KS should be small (~1/√n scale).
        let mut rng = rng_from_seed(11);
        let sample: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        let d_fit = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
        assert!(d_fit < 0.02, "d_fit={d_fit}");

        // Same sample vs a wrong CDF (normal): KS should be large.
        let d_misfit = ks_statistic(&sample, normal_cdf);
        assert!(d_misfit > 0.3, "d_misfit={d_misfit}");
    }

    #[test]
    fn ks_statistic_exact_small_case() {
        // Single observation at 0.5 vs U[0,1]: D = max(F, 1-F) = 0.5.
        let d = ks_statistic(&[0.5], |x| x.clamp(0.0, 1.0));
        assert!((d - 0.5).abs() < 1e-12);
    }
}
