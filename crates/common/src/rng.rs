//! Deterministic randomness plumbing.
//!
//! Every randomized component in the workspace takes an explicit
//! [`rand::Rng`]; nothing reads ambient entropy. Experiments derive
//! independent per-trial / per-component streams from a single master seed
//! via [`derive_seed`] (a SplitMix64 walk), which is what makes every figure
//! reproducible from `--seed` alone.
//!
//! The module also provides [`FastBernoulli`], an integer-threshold Bernoulli
//! sampler used on the hottest path of the simulator: OUE perturbs
//! `n × d` individual bits (≈ 3.3 × 10⁸ draws for the Fire-scale workload),
//! and a compare-against-`u64` is several times cheaper than going through
//! `f64` generation per bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step: the de-facto standard seed expander (Steele et al.).
///
/// Used both to whiten user-supplied seeds and to derive independent
/// sub-stream seeds. Passing the same `state` always yields the same output.
#[inline]
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// Finalizer of SplitMix64: maps a state to a well-mixed output.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a seed for sub-stream `stream` of a master seed.
///
/// Distinct `(master, stream)` pairs give (practically) independent seeds.
/// The trial runner uses `stream = trial_index`, the pipeline uses
/// offsets like `stream = trial_index * K + component`.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // Two finalizer applications with distinct pre-whitening so that
    // (m, s) and (m + 1, s - 1) do not collide.
    let a = splitmix64_mix(master ^ 0x243F_6A88_85A3_08D3);
    let b = splitmix64_mix(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ a);
    splitmix64_mix(a.wrapping_add(b.rotate_left(17)))
}

/// Derives a seed for a two-dimensional sub-stream of a master seed —
/// the shard/epoch grid of the streaming ingestion engine.
///
/// Distinct `(master, stream, substream)` triples give (practically)
/// independent seeds, and the derivation is hierarchical: every
/// `substream` of a fixed `stream` lives inside that stream's own seed
/// space, so a shard can be re-run (or resumed from a checkpoint) epoch
/// by epoch without knowing anything about the other shards.
#[inline]
pub fn derive_seed2(master: u64, stream: u64, substream: u64) -> u64 {
    derive_seed(derive_seed(master, stream), substream)
}

/// Constructs the workspace-standard RNG from a seed.
///
/// `SmallRng` (xoshiro-family) is not cryptographic, which is fine: the
/// simulator models sampling noise, not adversarial randomness, and the
/// attacker in the threat model crafts reports deterministically anyway.
#[inline]
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A Bernoulli(p) sampler using a single `u64` compare per draw.
///
/// `sample()` returns `true` with probability `p` up to a quantization error
/// of 2⁻⁶⁴, which is far below every statistical tolerance in this workspace.
#[derive(Debug, Clone, Copy)]
pub struct FastBernoulli {
    /// Draw succeeds iff `next_u64() < threshold`; `None` encodes p = 1.
    threshold: Option<u64>,
}

impl FastBernoulli {
    /// Creates a sampler for success probability `p ∈ [0, 1]`.
    ///
    /// Probabilities outside the range are clamped; NaN is treated as 0.
    pub fn new(p: f64) -> Self {
        if p.is_nan() || p <= 0.0 {
            return Self { threshold: Some(0) };
        }
        if p >= 1.0 {
            return Self { threshold: None };
        }
        // p · 2⁶⁴, computed in f64 (53-bit mantissa ⇒ ~2⁻⁵³ relative error,
        // irrelevant at simulation scale).
        let t = (p * (u64::MAX as f64 + 1.0)).round();
        let threshold = if t >= u64::MAX as f64 + 1.0 {
            None
        } else {
            Some(t as u64)
        };
        Self { threshold }
    }

    /// Draws one Bernoulli sample.
    #[inline(always)]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        match self.threshold {
            Some(t) => rng.next_u64() < t,
            None => true,
        }
    }

    /// The success probability this sampler realizes (after quantization).
    pub fn probability(&self) -> f64 {
        match self.threshold {
            Some(t) => t as f64 / (u64::MAX as f64 + 1.0),
            None => 1.0,
        }
    }
}

/// Draws a uniform index in `0..n` (n ≥ 1) using Lemire's rejection method.
///
/// This is what `rand`'s `gen_range` does internally, exposed here so hot
/// loops can pre-bind `n` without constructing a `Uniform` each call.
#[inline(always)]
pub fn uniform_index<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    debug_assert!(n >= 1);
    rng.gen_range(0..n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 0);
        assert_eq!(a, b);
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 0));
        // The (m, s) vs (m+1, s-1) trap must not collide.
        assert_ne!(derive_seed(10, 5), derive_seed(11, 4));
    }

    #[test]
    fn derive_seed2_is_deterministic_and_spreads() {
        assert_eq!(derive_seed2(42, 3, 7), derive_seed2(42, 3, 7));
        // Every coordinate matters…
        assert_ne!(derive_seed2(42, 3, 7), derive_seed2(43, 3, 7));
        assert_ne!(derive_seed2(42, 3, 7), derive_seed2(42, 4, 7));
        assert_ne!(derive_seed2(42, 3, 7), derive_seed2(42, 3, 8));
        // …and the grid is not symmetric (shard 3 / epoch 7 must not
        // collide with shard 7 / epoch 3).
        assert_ne!(derive_seed2(42, 3, 7), derive_seed2(42, 7, 3));
        // Hierarchy: (m, s, e) is substream e of derive_seed(m, s).
        assert_eq!(derive_seed2(42, 3, 7), derive_seed(derive_seed(42, 3), 7));
    }

    #[test]
    fn fast_bernoulli_edge_probabilities() {
        let mut rng = rng_from_seed(1);
        let never = FastBernoulli::new(0.0);
        let always = FastBernoulli::new(1.0);
        for _ in 0..1000 {
            assert!(!never.sample(&mut rng));
            assert!(always.sample(&mut rng));
        }
        assert_eq!(never.probability(), 0.0);
        assert_eq!(always.probability(), 1.0);
        // Clamping.
        assert_eq!(FastBernoulli::new(-0.5).probability(), 0.0);
        assert_eq!(FastBernoulli::new(1.5).probability(), 1.0);
        assert_eq!(FastBernoulli::new(f64::NAN).probability(), 0.0);
    }

    #[test]
    fn fast_bernoulli_matches_probability_statistically() {
        let mut rng = rng_from_seed(7);
        for &p in &[0.1, 0.378, 0.5, 0.9] {
            let bern = FastBernoulli::new(p);
            let n = 200_000;
            let hits = (0..n).filter(|_| bern.sample(&mut rng)).count();
            let rate = hits as f64 / n as f64;
            // 5σ tolerance for a binomial proportion.
            let tol = 5.0 * (p * (1.0 - p) / n as f64).sqrt();
            assert!((rate - p).abs() < tol, "p={p}, rate={rate}, tol={tol}");
        }
    }

    #[test]
    fn uniform_index_covers_range() {
        let mut rng = rng_from_seed(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[uniform_index(&mut rng, 10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rng_from_seed_reproducible() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
