//! Intentional exact float comparison — the one blessed `==` site.
//!
//! Rule D03 of the workspace lint (`crates/lint`) bans `==`/`!=` on
//! float-typed operands everywhere else: accidental float equality is a
//! rounding-sensitive bug waiting for a different libm or optimization
//! level. But the codebase *does* need a handful of exact comparisons —
//! sentinel checks against values that are stored, not computed
//! (`beta == 0.0` for "no attack configured", `scale == 1.0` for "corpus
//! unscaled", `v.fract() == 0.0` for "JSON number is integral"). Routing
//! them through this module keeps the intent auditable: a call to
//! [`exact_eq`] says "I mean bitwise-for-bitwise IEEE equality semantics,
//! and I know why that is safe here".
//!
//! These helpers are `#[inline]` identity wrappers over `==`; they
//! compile to the exact same instruction and preserve IEEE semantics
//! (`-0.0 == 0.0` is true, `NaN == NaN` is false), so converting a
//! legacy `a == b` site is bit-for-bit behavior-preserving.

/// Exact IEEE-754 equality, declared intentional.
///
/// Same semantics as `a == b` (`-0.0` equals `0.0`; `NaN` equals
/// nothing). Use only when both operands are stored values — never on
/// the result of arithmetic you expect to round-trip.
#[inline]
#[must_use]
pub fn exact_eq(a: f64, b: f64) -> bool {
    a == b
}

/// True when `x` is exactly `±0.0` — the common "field left at its
/// default / sentinel" check.
#[inline]
#[must_use]
pub fn exactly_zero(x: f64) -> bool {
    exact_eq(x, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_ieee_equality_semantics() {
        assert!(exact_eq(1.5, 1.5));
        assert!(!exact_eq(1.5, 1.5 + f64::EPSILON));
        assert!(exact_eq(0.0, -0.0), "signed zeros compare equal");
        assert!(!exact_eq(f64::NAN, f64::NAN), "NaN equals nothing");
        assert!(exact_eq(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn exactly_zero_is_the_zero_sentinel() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(f64::MIN_POSITIVE));
        assert!(!exactly_zero(f64::NAN));
    }
}
