//! Safe-code vectorized batch kernels for the Hadamard hot paths.
//!
//! The workspace is `#![forbid(unsafe_code)]`, so "SIMD" here means
//! *autovectorization-friendly shapes*, not intrinsics: fixed-stride
//! inner loops over paired slices obtained with `split_at_mut`/`zip`
//! (which lets LLVM prove bounds and emit packed integer adds), and
//! data-dependent control flow converted into arithmetic on 0/1 masks so
//! the loop body is straight-line code with no unpredictable branches.
//! The claims are verified empirically by the `crates/bench` suites and
//! the blessed perf trajectory, not assumed.
//!
//! Everything in this module is exact integer arithmetic — no floats —
//! so callers can swap a per-element loop for a kernel call without any
//! golden-file drift: the results are bitwise identical, only faster.

/// In-place fast Walsh–Hadamard transform: replaces `data` with `H·data`
/// where `H[x][y] = (−1)^popcount(x & y)` is the Sylvester-Hadamard
/// matrix of order `data.len()`.
///
/// `O(k log k)` instead of the `O(k²)` naive matrix product. The
/// butterfly works on two disjoint half-slices per block
/// (`split_at_mut` + `zip`), which is the shape LLVM autovectorizes:
/// provably in-bounds, fixed stride, and a loop body of one add and one
/// subtract per lane.
///
/// Entries may grow by a factor of `k` in magnitude; with support counts
/// bounded by the population size (`≤ 2^40`-ish) and `k ≤ 2^31`, `i64`
/// never overflows in this workspace.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (the Sylvester
/// construction is only defined there).
pub fn fwht_i64(data: &mut [i64]) {
    assert!(
        data.len().is_power_of_two(),
        "FWHT needs a power-of-two length, got {}",
        data.len()
    );
    let mut h = 1;
    while h < data.len() {
        for block in data.chunks_exact_mut(2 * h) {
            let (lo, hi) = block.split_at_mut(h);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let (x, y) = (*a, *b);
                *a = x + y;
                *b = x - y;
            }
        }
        h *= 2;
    }
}

/// Parity of `popcount(x & y)` as a 0/1 word: `0` where the Sylvester
/// entry `had(x, y)` is `+1`, `1` where it is `−1`.
#[inline(always)]
pub fn parity(x: u32, y: u32) -> u32 {
    (x & y).count_ones() & 1
}

/// Writes into `out` the columns `y ∈ 0..k` where row `row` of the
/// order-`k` Sylvester-Hadamard matrix is `+1`, in ascending order.
///
/// Branchless compaction: every column is written unconditionally at the
/// current cursor and the cursor advances by `1 − parity`, so the loop
/// body has no data-dependent branch for the predictor to miss (the
/// parity of `row & y` alternates at the row's lowest set bit — the
/// worst case for a branchy `filter`). `out` is cleared first and ends
/// with exactly `k/2` entries for any nonzero `row` (`k` for row 0).
///
/// # Panics
/// Panics if `k` is not a power of two or exceeds `u32` range.
pub fn positive_columns_into(row: u32, k: usize, out: &mut Vec<u32>) {
    assert!(k.is_power_of_two(), "Hadamard order must be a power of two");
    assert!(k <= 1 << 31, "Hadamard order must fit u32");
    out.clear();
    out.resize(k, 0);
    let mut cursor = 0usize;
    for y in 0..k as u32 {
        out[cursor] = y;
        cursor += (1 - parity(row, y)) as usize;
    }
    out.truncate(cursor);
}

/// Adds `1` to `counts[i]` for every `i` where the Sylvester entry
/// `had(base + i, mask)` is `+1` — the branchless per-report support
/// scatter of Hadamard Response (`base = 1`: item `i` owns row `i + 1`).
///
/// The loop body is pure arithmetic (`popcount`, mask, add), so it both
/// autovectorizes and never mispredicts, unlike the `if parity == 0`
/// formulation it replaces.
pub fn add_even_parity(mask: u32, base: u32, counts: &mut [u64]) {
    for (i, c) in counts.iter_mut().enumerate() {
        *c += u64::from(1 - parity(base.wrapping_add(i as u32), mask));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive `O(k²)` Sylvester product, the reference for the FWHT.
    fn naive_hadamard(data: &[i64]) -> Vec<i64> {
        let k = data.len();
        (0..k)
            .map(|x| {
                (0..k)
                    .map(|y| {
                        let sign = if parity(x as u32, y as u32) == 0 {
                            1
                        } else {
                            -1
                        };
                        sign * data[y]
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn fwht_matches_naive_product_up_to_1024() {
        // Deterministic pseudo-data (no RNG: the identity is exact, any
        // data works; an LCG keeps the values varied).
        for k in [1usize, 2, 4, 8, 16, 64, 256, 1024] {
            let mut state = 0x9E37_79B9u64;
            let data: Vec<i64> = (0..k)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as i64) - (1 << 30)
                })
                .collect();
            let mut fast = data.clone();
            fwht_i64(&mut fast);
            assert_eq!(fast, naive_hadamard(&data), "k={k}");
        }
    }

    #[test]
    fn fwht_is_an_involution_up_to_scale() {
        // H·H = k·I for Sylvester matrices.
        let data: Vec<i64> = (0..64).map(|i| (i * i - 37) as i64).collect();
        let mut twice = data.clone();
        fwht_i64(&mut twice);
        fwht_i64(&mut twice);
        assert!(twice.iter().zip(&data).all(|(&t, &d)| t == 64 * d));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn fwht_rejects_non_power_of_two() {
        fwht_i64(&mut [1, 2, 3]);
    }

    #[test]
    fn positive_columns_match_filter() {
        let mut out = Vec::new();
        for k in [2usize, 8, 64, 1024] {
            for row in 0..k.min(40) as u32 {
                positive_columns_into(row, k, &mut out);
                let expect: Vec<u32> = (0..k as u32).filter(|&y| parity(row, y) == 0).collect();
                assert_eq!(out, expect, "row={row}, k={k}");
                let want = if row == 0 { k } else { k / 2 };
                assert_eq!(out.len(), want, "row balance at row={row}, k={k}");
            }
        }
    }

    #[test]
    fn add_even_parity_matches_branchy_loop() {
        for mask in [0u32, 1, 5, 0b101010, 1023] {
            let mut fast = vec![7u64; 100];
            let mut slow = fast.clone();
            add_even_parity(mask, 1, &mut fast);
            for (i, c) in slow.iter_mut().enumerate() {
                if (((i as u32 + 1) & mask).count_ones()).is_multiple_of(2) {
                    *c += 1;
                }
            }
            assert_eq!(fast, slow, "mask={mask}");
        }
    }
}
