//! From-scratch xxhash64 and the seeded hash family used by OLH.
//!
//! The OLH protocol (Wang et al., USENIX Security 2017; §III-B of the
//! LDPRecover paper) requires a family `H` of hash functions mapping the item
//! domain `D` onto a small range `{0, …, g−1}` such that each item's hash is
//! (approximately) uniform and independent across family members. The paper
//! names xxhash as the concrete family, so we implement XXH64 from the
//! specification and key the family by the 64-bit seed each user samples.
//!
//! Only the short-input (< 32 bytes) code path is exercised by OLH — items
//! are hashed as 8-byte little-endian integers — but the full algorithm,
//! including the ≥ 32-byte stripe loop, is implemented and tested against the
//! published reference vectors so the hasher is usable as a general substrate.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline(always)]
fn read_u64_le(data: &[u8]) -> u64 {
    u64::from_le_bytes(data[..8].try_into().expect("8-byte read"))
}

#[inline(always)]
fn read_u32_le(data: &[u8]) -> u32 {
    u32::from_le_bytes(data[..4].try_into().expect("4-byte read"))
}

#[inline(always)]
fn xxh64_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline(always)]
fn xxh64_merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ xxh64_round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline(always)]
fn xxh64_avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^ (h >> 32)
}

/// One-shot XXH64 of `data` under `seed`, per the reference specification.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = xxh64_round(v1, read_u64_le(&rest[0..]));
            v2 = xxh64_round(v2, read_u64_le(&rest[8..]));
            v3 = xxh64_round(v3, read_u64_le(&rest[16..]));
            v4 = xxh64_round(v4, read_u64_le(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xxh64_merge_round(h, v1);
        h = xxh64_merge_round(h, v2);
        h = xxh64_merge_round(h, v3);
        h = xxh64_merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h ^= xxh64_round(0, read_u64_le(rest));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= u64::from(read_u32_le(rest)).wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= u64::from(byte).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }

    xxh64_avalanche(h)
}

/// Hashes a `u64` value (little-endian bytes) — the OLH item fast path.
///
/// Specialization of [`xxh64`] for exactly 8 bytes of input (the LE bytes of
/// `value`, so reading them back as a LE word is `value` itself). Keeping it
/// inline and branch-free matters because OLH aggregation performs n × d of
/// these (≈ 3 × 10⁸ at Fire scale).
#[inline(always)]
pub fn xxh64_u64(value: u64, seed: u64) -> u64 {
    let mut h = seed.wrapping_add(PRIME64_5).wrapping_add(8);
    h ^= xxh64_round(0, value);
    h = h
        .rotate_left(27)
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4);
    xxh64_avalanche(h)
}

/// A member of the OLH hash family: maps items of `D` onto `{0, …, g−1}`.
///
/// The family is keyed by the user-sampled 64-bit `seed`; the map is
/// `item ↦ xxh64(item; seed) mod g`. The modulo introduces a bias of at most
/// `g / 2⁶⁴`, which is negligible for the `g ≤ 100` range LDP uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OlhHash {
    seed: u64,
    g: u32,
}

impl OlhHash {
    /// Creates the family member with the given seed and range `g ≥ 2`.
    pub fn new(seed: u64, g: u32) -> Self {
        debug_assert!(g >= 2, "OLH hash range must be at least 2");
        Self { seed, g }
    }

    /// The seed identifying this family member.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The range size `g`.
    #[inline]
    pub fn range(&self) -> u32 {
        self.g
    }

    /// Hashes an item to `{0, …, g−1}`.
    #[inline(always)]
    pub fn hash(&self, item: usize) -> u32 {
        (xxh64_u64(item as u64, self.seed) % u64::from(self.g)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published XXH64 reference vectors (xxHash repository / RFC draft).
    #[test]
    fn reference_vectors_short() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn reference_vector_long() {
        // 43 bytes: exercises the ≥ 32-byte stripe loop plus the tail.
        assert_eq!(
            xxh64(b"The quick brown fox jumps over the lazy dog", 0),
            0x0B24_2D36_1FDA_71BC
        );
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abc", 1));
        assert_ne!(xxh64_u64(5, 0), xxh64_u64(5, 1));
    }

    #[test]
    fn u64_fast_path_matches_generic() {
        for value in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            for seed in [0u64, 1, 0xFFFF_FFFF_FFFF_FFFF, 123_456_789] {
                assert_eq!(
                    xxh64_u64(value, seed),
                    xxh64(&value.to_le_bytes(), seed),
                    "value={value}, seed={seed}"
                );
            }
        }
    }

    #[test]
    fn exercises_all_tail_lengths() {
        // Lengths 0..=40 cover: empty, <4, <8, 8..31, and ≥32 with every
        // tail residue. Only checks self-consistency + sensitivity here
        // (reference vectors above anchor absolute correctness).
        let data: Vec<u8> = (0..40u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=40 {
            let h = xxh64(&data[..len], 7);
            assert!(seen.insert(h), "collision at prefix length {len}");
        }
    }

    #[test]
    fn olh_hash_is_in_range_and_roughly_uniform() {
        let g = 3u32;
        let mut counts = [0usize; 3];
        // One fixed item across many seeds: the family must spread it
        // uniformly (this is the property OLH relies on).
        for seed in 0..30_000u64 {
            let h = OlhHash::new(seed, g);
            let b = h.hash(17);
            assert!(b < g);
            counts[b as usize] += 1;
        }
        let expected = 10_000.0;
        for &c in &counts {
            // 5σ for a multinomial cell.
            let sigma = (30_000.0f64 * (1.0 / 3.0) * (2.0 / 3.0)).sqrt();
            assert!(
                (c as f64 - expected).abs() < 5.0 * sigma,
                "counts={counts:?}"
            );
        }
    }

    #[test]
    fn olh_hash_distinct_items_roughly_independent() {
        // Under a random family member, P[H(a) == H(b)] ≈ 1/g for a ≠ b.
        let g = 4u32;
        let trials = 40_000u64;
        let collisions = (0..trials)
            .filter(|&seed| {
                let h = OlhHash::new(seed, g);
                h.hash(3) == h.hash(11)
            })
            .count();
        let p = collisions as f64 / trials as f64;
        let expect = 1.0 / f64::from(g);
        let sigma = (expect * (1.0 - expect) / trials as f64).sqrt();
        assert!((p - expect).abs() < 5.0 * sigma, "p={p}");
    }
}
