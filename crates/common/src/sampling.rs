//! Discrete sampling substrate: alias tables, Zipf weights, random
//! probability vectors, and subset sampling.
//!
//! The adaptive attack (paper §V-C) models *every* poisoning attack as
//! sampling malicious reports from an attacker-designed distribution `P`
//! over the encoded domain. Datasets are likewise materialized by sampling
//! items from a ground-truth distribution. Both paths need O(1)-per-draw
//! sampling from arbitrary discrete distributions, which is exactly what the
//! Walker/Vose alias method provides.

use rand::Rng;

use crate::error::{LdpError, Result};
use crate::rng::uniform_index;

/// O(1)-per-sample discrete distribution via the Vose alias method.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each column's "home" outcome.
    prob: Vec<f64>,
    /// Fallback outcome of each column.
    alias: Vec<u32>,
    /// The normalized probabilities the table was built from.
    weights: Vec<f64>,
}

impl AliasTable {
    /// Builds an alias table from non-negative `weights` (need not sum to 1).
    ///
    /// # Errors
    /// * [`LdpError::EmptyInput`] when `weights` is empty.
    /// * [`LdpError::InvalidParameter`] when any weight is negative or
    ///   non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(LdpError::EmptyInput("alias table weights"));
        }
        if weights.len() > u32::MAX as usize {
            return Err(LdpError::invalid(
                "alias table supports at most 2^32 outcomes",
            ));
        }
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(LdpError::invalid(format!(
                    "weight {i} is {w}; weights must be finite and non-negative"
                )));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(LdpError::invalid("all weights are zero"));
        }

        let n = weights.len();
        let normalized: Vec<f64> = weights.iter().map(|&w| w / total).collect();

        // Vose's algorithm with small/large worklists.
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut scaled: Vec<f64> = normalized.iter().map(|&p| p * n as f64).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically ≈ 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        Ok(Self {
            prob,
            alias,
            weights: normalized,
        })
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when the table has no outcomes (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The normalized probability vector the table realizes.
    #[inline]
    pub fn probabilities(&self) -> &[f64] {
        &self.weights
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let col = uniform_index(rng, self.prob.len());
        if rng.gen::<f64>() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// Samples a uniformly-random probability vector of length `d`
/// (a Dirichlet(1, …, 1) draw): iid Exp(1) variates, normalized.
///
/// This is how the adaptive attack "randomly generates the attacker-designed
/// distribution" (paper §VI-A.3).
pub fn random_distribution<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Vec<f64> {
    assert!(d >= 1, "distribution needs at least one outcome");
    let mut v: Vec<f64> = (0..d)
        .map(|_| {
            // Inverse-CDF Exp(1); `1 - U` keeps the argument strictly > 0.
            let u: f64 = rng.gen();
            -(1.0 - u).ln()
        })
        .collect();
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        // Astronomically unlikely; fall back to uniform.
        return vec![1.0 / d as f64; d];
    }
    for x in &mut v {
        *x /= total;
    }
    v
}

/// Zipf weights `w_k ∝ 1 / (k+1)^s` for `k = 0, …, d−1` (unnormalized).
pub fn zipf_weights(d: usize, s: f64) -> Vec<f64> {
    assert!(d >= 1);
    (0..d).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect()
}

/// Samples `k` distinct indices uniformly from `0..n` (Floyd's algorithm),
/// returned in random order.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_distinct<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct items from {n}");
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let mut set = std::collections::HashSet::with_capacity(k * 2);
    for j in (n - k)..n {
        let t = uniform_index(rng, j + 1);
        if set.insert(t) {
            chosen.push(t);
        } else {
            set.insert(j);
            chosen.push(j);
        }
    }
    // Floyd's produces a set biased in order; shuffle for random order.
    for i in (1..chosen.len()).rev() {
        chosen.swap(i, uniform_index(rng, i + 1));
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn alias_rejects_bad_inputs() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
        assert!(AliasTable::new(&[f64::INFINITY, 1.0]).is_err());
    }

    #[test]
    fn alias_normalizes_weights() {
        let t = AliasTable::new(&[2.0, 6.0]).unwrap();
        let p = t.probabilities();
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn alias_single_outcome() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = rng_from_seed(2);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn alias_matches_distribution_statistically() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = rng_from_seed(3);
        let n = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = weights[i] / 10.0;
            let rate = c as f64 / n as f64;
            let tol = 5.0 * (p * (1.0 - p) / n as f64).sqrt();
            assert!((rate - p).abs() < tol, "outcome {i}: rate={rate}, p={p}");
        }
    }

    #[test]
    fn random_distribution_is_on_simplex() {
        let mut rng = rng_from_seed(4);
        for d in [1usize, 2, 10, 500] {
            let p = random_distribution(d, &mut rng);
            assert_eq!(p.len(), d);
            assert!(p.iter().all(|&x| x >= 0.0));
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "d={d}, sum={sum}");
        }
    }

    #[test]
    fn zipf_weights_decrease() {
        let w = zipf_weights(10, 1.0);
        assert_eq!(w.len(), 10);
        for i in 1..10 {
            assert!(w[i] < w[i - 1]);
        }
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        // s = 0 gives uniform weights.
        let u = zipf_weights(5, 0.0);
        assert!(u.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = rng_from_seed(5);
        for (n, k) in [(10usize, 10usize), (100, 7), (5, 0), (1, 1)] {
            let s = sample_distinct(n, k, &mut rng);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates in {s:?}");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn sample_distinct_is_roughly_uniform() {
        let mut rng = rng_from_seed(6);
        let mut hits = [0usize; 6];
        let trials = 60_000;
        for _ in 0..trials {
            for i in sample_distinct(6, 2, &mut rng) {
                hits[i] += 1;
            }
        }
        // Each index appears with probability 2/6 per trial.
        let expect = trials as f64 * 2.0 / 6.0;
        for &h in &hits {
            assert!(
                (h as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "hits={hits:?}"
            );
        }
    }
}
