//! Discrete sampling substrate: alias tables, Zipf weights, random
//! probability vectors, subset sampling, and exact binomial / multinomial
//! count samplers.
//!
//! The adaptive attack (paper §V-C) models *every* poisoning attack as
//! sampling malicious reports from an attacker-designed distribution `P`
//! over the encoded domain. Datasets are likewise materialized by sampling
//! items from a ground-truth distribution. Both paths need O(1)-per-draw
//! sampling from arbitrary discrete distributions, which is exactly what the
//! Walker/Vose alias method provides.
//!
//! The count samplers ([`sample_binomial`], [`sample_multinomial`],
//! [`sample_multinomial_uniform`]) power the batched aggregation engine
//! end to end: population histograms are one multinomial draw
//! (`ldp-datasets`' `generate_counts`), and for GRR/OUE/SUE/HR the
//! aggregate support counts of a whole population are sums of independent
//! categorical/Bernoulli draws, so one binomial draw replaces up to
//! millions of per-user coin flips. They are exact
//! (inverse-CDF, no normal approximation) up to the ~2⁻⁵² probability
//! quantization inherent in `f64` arithmetic — the same tolerance class as
//! [`crate::rng::FastBernoulli`] — and fully deterministic under the
//! workspace RNG.

use rand::Rng;

use crate::error::{LdpError, Result};
use crate::rng::uniform_index;

/// O(1)-per-sample discrete distribution via the Vose alias method.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each column's "home" outcome.
    prob: Vec<f64>,
    /// Fallback outcome of each column.
    alias: Vec<u32>,
    /// The normalized probabilities the table was built from.
    weights: Vec<f64>,
}

impl AliasTable {
    /// Builds an alias table from non-negative `weights` (need not sum to 1).
    ///
    /// # Errors
    /// * [`LdpError::EmptyInput`] when `weights` is empty.
    /// * [`LdpError::InvalidParameter`] when any weight is negative or
    ///   non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(LdpError::EmptyInput("alias table weights"));
        }
        if weights.len() > u32::MAX as usize {
            return Err(LdpError::invalid(
                "alias table supports at most 2^32 outcomes",
            ));
        }
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(LdpError::invalid(format!(
                    "weight {i} is {w}; weights must be finite and non-negative"
                )));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(LdpError::invalid("all weights are zero"));
        }
        if !total.is_finite() {
            // Each weight is finite but the sum overflowed: normalizing
            // would zero every weight and silently skew the table.
            return Err(LdpError::invalid(
                "weights sum to +inf; rescale them before building the alias table",
            ));
        }

        let n = weights.len();
        let normalized: Vec<f64> = weights.iter().map(|&w| w / total).collect();

        // Vose's algorithm with small/large worklists.
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut scaled: Vec<f64> = normalized.iter().map(|&p| p * n as f64).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically ≈ 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        Ok(Self {
            prob,
            alias,
            weights: normalized,
        })
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when the table has no outcomes (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The normalized probability vector the table realizes.
    #[inline]
    pub fn probabilities(&self) -> &[f64] {
        &self.weights
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let col = uniform_index(rng, self.prob.len());
        if rng.gen::<f64>() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// Samples a uniformly-random probability vector of length `d`
/// (a Dirichlet(1, …, 1) draw): iid Exp(1) variates, normalized.
///
/// This is how the adaptive attack "randomly generates the attacker-designed
/// distribution" (paper §VI-A.3).
pub fn random_distribution<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Vec<f64> {
    assert!(d >= 1, "distribution needs at least one outcome");
    let mut v: Vec<f64> = (0..d)
        .map(|_| {
            // Inverse-CDF Exp(1); `1 - U` keeps the argument strictly > 0.
            let u: f64 = rng.gen();
            -(1.0 - u).ln()
        })
        .collect();
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        // Astronomically unlikely; fall back to uniform.
        return vec![1.0 / d as f64; d];
    }
    for x in &mut v {
        *x /= total;
    }
    v
}

/// Zipf weights `w_k ∝ 1 / (k+1)^s` for `k = 0, …, d−1` (unnormalized).
pub fn zipf_weights(d: usize, s: f64) -> Vec<f64> {
    assert!(d >= 1);
    (0..d).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect()
}

/// Samples `k` distinct indices uniformly from `0..n` (Floyd's algorithm),
/// returned in random order.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_distinct<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct items from {n}");
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let mut set = std::collections::HashSet::with_capacity(k * 2);
    for j in (n - k)..n {
        let t = uniform_index(rng, j + 1);
        if set.insert(t) {
            chosen.push(t);
        } else {
            set.insert(j);
            chosen.push(j);
        }
    }
    // Floyd's produces a set biased in order; shuffle for random order.
    for i in (1..chosen.len()).rev() {
        chosen.swap(i, uniform_index(rng, i + 1));
    }
    chosen
}

/// `ln k!` for `k = 0, …, 9` (exact integer factorials, then `ln`).
const LN_FACTORIAL_SMALL: [f64; 10] = [
    0.0,
    0.0,
    std::f64::consts::LN_2, // ln 2
    1.791_759_469_228_055,  // ln 6
    3.178_053_830_347_946,  // ln 24
    4.787_491_742_782_046,  // ln 120
    6.579_251_212_010_101,  // ln 720
    8.525_161_361_065_415,  // ln 5040
    10.604_602_902_745_25,  // ln 40320
    12.801_827_480_081_469, // ln 362880
];

/// `ln n!` via the Stirling series for `n ≥ 10` (absolute error < 1e−12),
/// exact table below.
fn ln_factorial(n: u64) -> f64 {
    if n < 10 {
        return LN_FACTORIAL_SMALL[n as usize];
    }
    let x = n as f64;
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    (x + 0.5) * x.ln() - x
        + 0.918_938_533_204_672_7 // ln √(2π)
        + inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0))
}

/// Draws `X ~ Binomial(n, p)` exactly (inverse CDF, no normal
/// approximation) with **one** uniform variate per call.
///
/// Two regimes, both exact up to `f64` probability quantization:
///
/// * small mean (`n·min(p,1−p) ≤ 16`): bottom-up CDF inversion from 0,
///   expected `O(n·p)` pmf steps;
/// * large mean: CDF inversion zig-zagging outward from the mode, expected
///   `O(√(n·p·(1−p)))` steps — ~400 steps at `n = 10⁶, p = ½`, versus the
///   10⁶ Bernoulli draws it replaces.
///
/// Out-of-range `p` is clamped to `[0, 1]`; NaN is treated as 0 (the
/// [`crate::rng::FastBernoulli`] convention).
pub fn sample_binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    if n == 0 || p.is_nan() || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - binomial_le_half(n, 1.0 - p, rng);
    }
    binomial_le_half(n, p, rng)
}

/// [`sample_binomial`] restricted to `p ∈ (0, ½]`.
fn binomial_le_half<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    debug_assert!(p > 0.0 && p <= 0.5);
    let u: f64 = rng.gen();
    let odds = p / (1.0 - p);
    let nf = n as f64;

    if nf * p <= 16.0 {
        // Bottom-up inversion: pmf(0) = (1−p)^n cannot underflow here
        // (n·p ≤ 16 and p ≤ ½ give (1−p)^n ≥ e^{−32}).
        //
        // Branchless chunked scan. The CDF is nondecreasing (pmf ≥ 0),
        // so the inverse-CDF answer is the *count* of prefix sums the
        // uniform still clears: k = min(n, #{j : u ≥ cdf_j}). Each chunk
        // advances the pmf/cdf recurrences straight-line and accumulates
        // that count as 0/1 arithmetic — no data-dependent branch inside
        // (the classic `while u >= cdf` exit mispredicts once per draw
        // at an unpredictable step). The float op order (pmf multiply
        // chain, sequential cdf adds) is exactly the old loop's, so
        // every draw is bit-identical — pinned by
        // `branchless_binomial_keeps_captured_draws` in
        // `tests/sampler_streams.rs`. Between chunks one predictable
        // branch early-exits, keeping the small-mean regime O(n·p), not
        // O(n).
        let mut pmf = (nf * (1.0 - p).ln()).exp();
        let mut cdf = pmf; // cdf_0
        let mut k = u64::from(u >= cdf); // counts level 0
        let mut j = 0u64; // levels 0..=j materialized
        const SCAN_CHUNK: u64 = 8;
        // Invariant: k = #{i ≤ j : u ≥ cdf_i}. Continue only while every
        // materialized level cleared (k == j+1) — a miss is final by
        // monotonicity — and levels remain (the old loop never checks
        // cdf_n, capping the draw at n).
        while k == j + 1 && j + 1 < n {
            let steps = SCAN_CHUNK.min(n - 1 - j);
            for _ in 0..steps {
                pmf *= (n - j) as f64 / (j + 1) as f64 * odds;
                j += 1;
                cdf += pmf;
                k += u64::from(u >= cdf);
            }
        }
        return k;
    }

    // Zig-zag inversion from the mode m = ⌊(n+1)p⌋: accumulate pmf mass
    // outward (right step, then left step, …) until the target quantile u
    // is covered. pmf(m) via `ln_factorial` is accurate to ~1e−12, far
    // below every statistical tolerance in the workspace.
    //
    // Unlike the bottom-up regime above, this loop keeps its per-step
    // exits: the mid-iteration `u < cdf` checks are semantically
    // load-bearing (the answer depends on *which* step covered u, and
    // the right-then-left cdf add order is pinned by the captured-vector
    // tests), and the expected trip count is only O(√(n·p·(1−p))) with
    // a single taken exit — there is no misprediction pile-up to shave.
    let m = (((n + 1) as f64) * p).floor() as u64;
    let m = m.min(n);
    let ln_pmf_m = ln_factorial(n) - ln_factorial(m) - ln_factorial(n - m)
        + m as f64 * p.ln()
        + (n - m) as f64 * (1.0 - p).ln();
    let pmf_m = ln_pmf_m.exp();
    let mut cdf = pmf_m;
    if u < cdf {
        return m;
    }
    let (mut lo, mut hi) = (m, m);
    let (mut pmf_lo, mut pmf_hi) = (pmf_m, pmf_m);
    loop {
        if hi < n {
            // pmf(hi+1)/pmf(hi) = (n−hi)/(hi+1) · p/(1−p).
            pmf_hi *= (n - hi) as f64 / (hi + 1) as f64 * odds;
            hi += 1;
            cdf += pmf_hi;
            if u < cdf {
                return hi;
            }
        }
        if lo > 0 {
            // pmf(lo−1)/pmf(lo) = lo/(n−lo+1) · (1−p)/p.
            pmf_lo *= lo as f64 / (n - lo + 1) as f64 / odds;
            lo -= 1;
            cdf += pmf_lo;
            if u < cdf {
                return lo;
            }
        }
        if lo == 0 && hi == n {
            // The full support is accumulated but rounding left
            // cdf < u < 1: attribute the residual mass to the mode.
            return m;
        }
    }
}

/// Draws counts `(X_0, …, X_{k−1}) ~ Multinomial(n, weights)` exactly via
/// conditional binomial splitting: `O(k)` binomial draws regardless of `n`.
///
/// `weights` need not be normalized. Any `f64` residue left after the last
/// positive-weight bin (the conditional fractions are computed in floating
/// point) is attributed to that bin — a ≤ 2⁻⁵²-probability event per draw.
///
/// # Errors
/// Same contract as [`AliasTable::new`]: empty, negative, non-finite, or
/// all-zero weights are rejected.
pub fn sample_multinomial<R: Rng + ?Sized>(
    n: u64,
    weights: &[f64],
    rng: &mut R,
) -> Result<Vec<u64>> {
    if weights.is_empty() {
        return Err(LdpError::EmptyInput("multinomial weights"));
    }
    let mut total = 0.0f64;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(LdpError::invalid(format!(
                "weight {i} is {w}; weights must be finite and non-negative"
            )));
        }
        if w > 0.0 {
            last_positive = Some(i);
        }
        total += w;
    }
    let Some(last_positive) = last_positive else {
        return Err(LdpError::invalid("all weights are zero"));
    };
    if !total.is_finite() {
        // Per-weight finiteness does not imply a finite sum; an overflowed
        // total would send every conditional fraction to 0 and dump all
        // `n` draws on the last positive bin.
        return Err(LdpError::invalid(
            "weights sum to +inf; rescale them before sampling",
        ));
    }

    let mut counts = vec![0u64; weights.len()];
    let mut remaining_n = n;
    let mut remaining_mass = total;
    for (i, &w) in weights.iter().enumerate() {
        if remaining_n == 0 {
            break;
        }
        if i == last_positive {
            break;
        }
        if w <= 0.0 {
            continue;
        }
        let frac = (w / remaining_mass).clamp(0.0, 1.0);
        let x = sample_binomial(remaining_n, frac, rng);
        counts[i] = x;
        remaining_n -= x;
        remaining_mass -= w;
    }
    counts[last_positive] += remaining_n;
    Ok(counts)
}

/// Draws counts from `Multinomial(n, uniform over bins)` exactly.
///
/// Picks the cheaper of two exact strategies: `n` individual uniform draws
/// when `n < bins` (the counts of iid uniform draws *are* the multinomial),
/// conditional binomial splitting (`O(bins)` draws) otherwise.
///
/// Allocates the output vector; hot loops that already own a count buffer
/// should use [`add_multinomial_uniform`] instead.
///
/// # Panics
/// Panics if `bins == 0` while `n > 0`.
pub fn sample_multinomial_uniform<R: Rng + ?Sized>(n: u64, bins: usize, rng: &mut R) -> Vec<u64> {
    let mut counts = vec![0u64; bins];
    add_multinomial_uniform(n, &mut counts, rng);
    counts
}

/// Zero-alloc [`sample_multinomial_uniform`]: draws
/// `Multinomial(n, uniform over counts.len())` and **adds** each bin's
/// count into `counts` in place. Consumes exactly the RNG draws of the
/// allocating variant, so the two are bitwise interchangeable per seed.
///
/// # Panics
/// Panics if `counts` is empty while `n > 0`.
pub fn add_multinomial_uniform<R: Rng + ?Sized>(n: u64, counts: &mut [u64], rng: &mut R) {
    if n == 0 {
        return;
    }
    let bins = counts.len();
    assert!(bins >= 1, "cannot scatter {n} draws over zero bins");
    if n < bins as u64 {
        for _ in 0..n {
            counts[uniform_index(rng, bins)] += 1;
        }
        return;
    }
    let mut remaining = n;
    for (i, c) in counts.iter_mut().enumerate() {
        if remaining == 0 {
            break;
        }
        let left = (bins - i) as u64;
        if left == 1 {
            *c += remaining;
            break;
        }
        let x = sample_binomial(remaining, 1.0 / left as f64, rng);
        *c += x;
        remaining -= x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn alias_rejects_bad_inputs() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
        assert!(AliasTable::new(&[f64::INFINITY, 1.0]).is_err());
    }

    #[test]
    fn alias_normalizes_weights() {
        let t = AliasTable::new(&[2.0, 6.0]).unwrap();
        let p = t.probabilities();
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn alias_single_outcome() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = rng_from_seed(2);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn alias_matches_distribution_statistically() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = rng_from_seed(3);
        let n = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = weights[i] / 10.0;
            let rate = c as f64 / n as f64;
            let tol = 5.0 * (p * (1.0 - p) / n as f64).sqrt();
            assert!((rate - p).abs() < tol, "outcome {i}: rate={rate}, p={p}");
        }
    }

    #[test]
    fn random_distribution_is_on_simplex() {
        let mut rng = rng_from_seed(4);
        for d in [1usize, 2, 10, 500] {
            let p = random_distribution(d, &mut rng);
            assert_eq!(p.len(), d);
            assert!(p.iter().all(|&x| x >= 0.0));
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "d={d}, sum={sum}");
        }
    }

    #[test]
    fn zipf_weights_decrease() {
        let w = zipf_weights(10, 1.0);
        assert_eq!(w.len(), 10);
        for i in 1..10 {
            assert!(w[i] < w[i - 1]);
        }
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        // s = 0 gives uniform weights.
        let u = zipf_weights(5, 0.0);
        assert!(u.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = rng_from_seed(5);
        for (n, k) in [(10usize, 10usize), (100, 7), (5, 0), (1, 1)] {
            let s = sample_distinct(n, k, &mut rng);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates in {s:?}");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn ln_factorial_matches_direct_summation() {
        let mut acc = 0.0f64;
        for k in 1..=200u64 {
            acc += (k as f64).ln();
            assert!(
                (ln_factorial(k) - acc).abs() < 1e-10 * acc.max(1.0),
                "k={k}: {} vs {acc}",
                ln_factorial(k)
            );
        }
        assert_eq!(ln_factorial(0), 0.0);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = rng_from_seed(10);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(100, -0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, f64::NAN, &mut rng), 0);
        assert_eq!(sample_binomial(100, 1.0, &mut rng), 100);
        assert_eq!(sample_binomial(100, 1.5, &mut rng), 100);
        for _ in 0..1000 {
            assert!(sample_binomial(1, 0.5, &mut rng) <= 1);
        }
    }

    #[test]
    fn binomial_is_deterministic() {
        let mut a = rng_from_seed(11);
        let mut b = rng_from_seed(11);
        for &(n, p) in &[(10u64, 0.3), (1_000_000, 0.5), (50, 0.97)] {
            assert_eq!(sample_binomial(n, p, &mut a), sample_binomial(n, p, &mut b));
        }
    }

    #[test]
    fn binomial_mean_and_variance_match_in_both_regimes() {
        // Covers bottom-up inversion (small n·p), zig-zag from the mode
        // (large n·p), and the p > ½ reflection.
        let mut rng = rng_from_seed(12);
        for &(n, p) in &[
            (40u64, 0.1),        // small-mean regime
            (1_000u64, 0.004),   // small mean at large n
            (100_000u64, 0.37),  // mode regime
            (1_000_000u64, 0.5), // mode regime, paper-scale n
            (2_000u64, 0.93),    // reflection
        ] {
            let trials = 3_000usize;
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            for _ in 0..trials {
                let x = sample_binomial(n, p, &mut rng) as f64;
                assert!(x <= n as f64);
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / trials as f64;
            let var = sum_sq / trials as f64 - mean * mean;
            let expect_mean = n as f64 * p;
            let expect_var = n as f64 * p * (1.0 - p);
            let mean_tol = 6.0 * (expect_var / trials as f64).sqrt();
            assert!(
                (mean - expect_mean).abs() < mean_tol,
                "n={n}, p={p}: mean={mean}, expect={expect_mean}"
            );
            // Sample variance of a binomial: se ≈ Var·√(2/trials) plus a
            // kurtosis term; 8σ keeps the test non-flaky.
            let var_tol = 8.0 * expect_var * (2.0 / trials as f64).sqrt();
            assert!(
                (var - expect_var).abs() < var_tol,
                "n={n}, p={p}: var={var}, expect={expect_var}"
            );
        }
    }

    #[test]
    fn binomial_small_n_matches_exact_pmf() {
        // χ²-style check against the exact Binomial(8, 0.3) distribution.
        let (n, p) = (8u64, 0.3f64);
        let mut rng = rng_from_seed(13);
        let trials = 200_000usize;
        let mut hist = [0usize; 9];
        for _ in 0..trials {
            hist[sample_binomial(n, p, &mut rng) as usize] += 1;
        }
        let mut pmf = (1.0 - p).powi(8);
        for (k, &observed) in hist.iter().enumerate() {
            let expect = pmf * trials as f64;
            let sigma = (pmf * (1.0 - pmf) * trials as f64).sqrt();
            assert!(
                (observed as f64 - expect).abs() < 6.0 * sigma.max(1.0),
                "k={k}: {observed} vs {expect}"
            );
            pmf *= (n - k as u64) as f64 / (k + 1) as f64 * p / (1.0 - p);
        }
    }

    #[test]
    fn multinomial_rejects_bad_weights() {
        let mut rng = rng_from_seed(14);
        assert!(sample_multinomial(10, &[], &mut rng).is_err());
        assert!(sample_multinomial(10, &[1.0, -1.0], &mut rng).is_err());
        assert!(sample_multinomial(10, &[0.0, 0.0], &mut rng).is_err());
        assert!(sample_multinomial(10, &[f64::NAN], &mut rng).is_err());
        assert!(sample_multinomial(10, &[f64::INFINITY, 1.0], &mut rng).is_err());
    }

    #[test]
    fn multinomial_rejects_overflowing_weight_totals() {
        // Every weight finite, but the *sum* overflows to +inf: the old
        // code normalized by it, zeroing every conditional fraction and
        // silently dumping all n draws on the last positive bin.
        let mut rng = rng_from_seed(140);
        let overflow = [f64::MAX, f64::MAX, 1.0];
        let err = sample_multinomial(10, &overflow, &mut rng).unwrap_err();
        assert!(err.to_string().contains("inf"), "{err}");
        assert!(AliasTable::new(&overflow).is_err());
        // Large-but-finite totals stay valid.
        let big = [f64::MAX / 4.0, f64::MAX / 4.0];
        let counts = sample_multinomial(10, &big, &mut rng).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert!(AliasTable::new(&big).is_ok());
    }

    #[test]
    fn multinomial_edge_cases_conserve_totals() {
        let mut rng = rng_from_seed(141);
        // Single category: every draw lands in it.
        for n in [0u64, 1, 12_345] {
            assert_eq!(sample_multinomial(n, &[0.7], &mut rng).unwrap(), vec![n]);
        }
        // n = 0 with many categories: all zeros, no RNG consumed panic-free.
        assert_eq!(
            sample_multinomial(0, &[1.0, 2.0, 3.0], &mut rng).unwrap(),
            vec![0, 0, 0]
        );
        // Unnormalized weights (sum ≫ 1 and sum ≪ 1) conserve the total.
        for weights in [&[300.0, 500.0, 200.0][..], &[3e-9, 5e-9, 2e-9][..]] {
            let counts = sample_multinomial(100_000, weights, &mut rng).unwrap();
            assert_eq!(counts.iter().sum::<u64>(), 100_000);
        }
        // Subnormal-but-positive weights still behave.
        let tiny = [f64::MIN_POSITIVE, f64::MIN_POSITIVE];
        let counts = sample_multinomial(1_000, &tiny, &mut rng).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 1_000);
    }

    #[test]
    fn add_multinomial_uniform_matches_allocating_variant_bitwise() {
        // The zero-alloc variant must consume the identical RNG stream —
        // it is what the batched samplers' hot loops now call.
        for (n, bins) in [(0u64, 4usize), (5, 100), (5_000, 16), (64, 64), (7, 1)] {
            let mut a = rng_from_seed(18);
            let mut b = rng_from_seed(18);
            let alloc = sample_multinomial_uniform(n, bins, &mut a);
            let mut added = vec![3u64; bins]; // pre-seeded: must add, not overwrite
            add_multinomial_uniform(n, &mut added, &mut b);
            for (x, y) in alloc.iter().zip(&added) {
                assert_eq!(x + 3, *y, "n={n} bins={bins}");
            }
            assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "RNG streams diverged");
        }
    }

    #[test]
    fn multinomial_conserves_total_and_respects_zeros() {
        let mut rng = rng_from_seed(15);
        let weights = [0.0, 3.0, 1.0, 0.0, 6.0, 0.0];
        for n in [0u64, 1, 17, 100_000] {
            let counts = sample_multinomial(n, &weights, &mut rng).unwrap();
            assert_eq!(counts.iter().sum::<u64>(), n);
            assert_eq!(counts[0], 0);
            assert_eq!(counts[3], 0);
            assert_eq!(counts[5], 0);
        }
    }

    #[test]
    fn multinomial_matches_weights_statistically() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let n = 40_000u64;
        let trials = 300usize;
        let mut rng = rng_from_seed(16);
        let mut sums = [0.0f64; 4];
        for _ in 0..trials {
            let counts = sample_multinomial(n, &weights, &mut rng).unwrap();
            for (s, &c) in sums.iter_mut().zip(&counts) {
                *s += c as f64;
            }
        }
        for (i, &s) in sums.iter().enumerate() {
            let p = weights[i] / 10.0;
            let expect = n as f64 * p;
            let mean = s / trials as f64;
            let tol = 6.0 * (n as f64 * p * (1.0 - p) / trials as f64).sqrt();
            assert!((mean - expect).abs() < tol, "bin {i}: {mean} vs {expect}");
        }
    }

    #[test]
    fn multinomial_uniform_both_strategies() {
        let mut rng = rng_from_seed(17);
        // n < bins: per-draw path. n ≥ bins: splitting path.
        for (n, bins) in [(5u64, 100usize), (0, 10), (5_000, 16), (64, 64)] {
            let counts = sample_multinomial_uniform(n, bins, &mut rng);
            assert_eq!(counts.len(), bins);
            assert_eq!(counts.iter().sum::<u64>(), n);
        }
        // Uniformity of the splitting path.
        let bins = 8usize;
        let trials = 400usize;
        let n = 8_000u64;
        let mut sums = vec![0.0f64; bins];
        for _ in 0..trials {
            for (s, &c) in sums
                .iter_mut()
                .zip(&sample_multinomial_uniform(n, bins, &mut rng))
            {
                *s += c as f64;
            }
        }
        let p = 1.0 / bins as f64;
        let expect = n as f64 * p;
        let tol = 6.0 * (n as f64 * p * (1.0 - p) / trials as f64).sqrt();
        for (i, &s) in sums.iter().enumerate() {
            let mean = s / trials as f64;
            assert!((mean - expect).abs() < tol, "bin {i}: {mean} vs {expect}");
        }
    }

    #[test]
    fn sample_distinct_is_roughly_uniform() {
        let mut rng = rng_from_seed(6);
        let mut hits = [0usize; 6];
        let trials = 60_000;
        for _ in 0..trials {
            for i in sample_distinct(6, 2, &mut rng) {
                hits[i] += 1;
            }
        }
        // Each index appears with probability 2/6 per trial.
        let expect = trials as f64 * 2.0 / 6.0;
        for &h in &hits {
            assert!(
                (h as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "hits={hits:?}"
            );
        }
    }
}
