#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Shared substrate for the LDPRecover reproduction.
//!
//! This crate hosts everything the higher layers (protocols, attacks,
//! recovery, simulation) need but that is not specific to any of them:
//!
//! * [`domain`] — the categorical item domain `D = {0, .., d-1}`.
//! * [`error`] — the workspace-wide error type.
//! * [`rng`] — deterministic seed derivation and fast Bernoulli sampling.
//! * [`hash`] — a from-scratch xxhash64 plus the seeded hash family OLH uses.
//! * [`json`] — a minimal hand-rolled JSON value layer (reports, goldens,
//!   and streaming-engine checkpoints; no `serde_json` under the vendored
//!   dependency policy).
//! * [`bitvec`] — packed bit vectors backing OUE reports.
//! * [`sampling`] — alias tables, Zipf weights, random distributions,
//!   and subset sampling.
//! * [`kernels`] — safe-code vectorized batch kernels (the fast
//!   Walsh–Hadamard transform and branchless popcount-parity scans).
//! * [`population`] — shared population accounting (the canonical
//!   malicious-count formula).
//! * [`vecmath`] — dense `f64` vector helpers (MSE, norms, normalization).
//! * [`float`] — intentional exact float comparison (the one site rule
//!   D03 of `ldp-lint` blesses).
//! * [`stats`] — streaming moments, the normal distribution, and the
//!   Kolmogorov–Smirnov statistic used by the theory-validation tests.
//!
//! Everything is dependency-light (only `rand` and `serde`) and fully
//! deterministic given explicit RNGs, which is what makes the paper's
//! experiments exactly reproducible from a single master seed.

pub mod bitvec;
pub mod domain;
pub mod error;
pub mod float;
pub mod hash;
pub mod json;
pub mod kernels;
pub mod population;
pub mod rng;
pub mod sampling;
pub mod stats;
pub mod vecmath;

pub use bitvec::BitVec;
pub use domain::Domain;
pub use error::{LdpError, Result};
pub use json::{write_atomic, Json};
