//! The categorical item domain `D = {0, 1, …, d−1}`.
//!
//! Every LDP protocol in this workspace estimates frequencies over a finite
//! categorical domain. Items are dense `usize` indices; callers that have
//! string-valued items (city names, unit IDs) map them to indices once at
//! dataset-construction time (see `ldp-datasets`).

use serde::{Deserialize, Serialize};

use crate::error::{LdpError, Result};

/// A finite categorical domain of size `d ≥ 1`.
///
/// The domain is deliberately tiny (one word) and `Copy`: it is threaded
/// through every protocol, attack, and recovery call as a validity witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Domain {
    size: usize,
}

impl Domain {
    /// Creates a domain with `size` items.
    ///
    /// # Errors
    /// Returns [`LdpError::InvalidParameter`] if `size == 0`.
    pub fn new(size: usize) -> Result<Self> {
        if size == 0 {
            return Err(LdpError::invalid("domain size must be at least 1"));
        }
        Ok(Self { size })
    }

    /// Number of items `d = |D|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// `true` if `item` is a member of the domain.
    #[inline]
    pub fn contains(&self, item: usize) -> bool {
        item < self.size
    }

    /// Iterator over all items `0..d`.
    pub fn items(&self) -> impl ExactSizeIterator<Item = usize> {
        0..self.size
    }

    /// Validates a single item index.
    ///
    /// # Errors
    /// Returns [`LdpError::DomainMismatch`] when the item is out of range.
    pub fn check_item(&self, item: usize) -> Result<()> {
        if self.contains(item) {
            Ok(())
        } else {
            Err(LdpError::DomainMismatch {
                expected: self.size,
                got: item,
                context: "item index",
            })
        }
    }

    /// Validates that a dense vector (frequencies, counts) matches `d`.
    ///
    /// # Errors
    /// Returns [`LdpError::DomainMismatch`] on length mismatch.
    pub fn check_len<T>(&self, v: &[T], context: &'static str) -> Result<()> {
        if v.len() == self.size {
            Ok(())
        } else {
            Err(LdpError::DomainMismatch {
                expected: self.size,
                got: v.len(),
                context,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_domain() {
        assert!(Domain::new(0).is_err());
    }

    #[test]
    fn membership_and_iteration() {
        let d = Domain::new(5).unwrap();
        assert_eq!(d.size(), 5);
        assert!(d.contains(0));
        assert!(d.contains(4));
        assert!(!d.contains(5));
        let items: Vec<usize> = d.items().collect();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn check_item_reports_mismatch() {
        let d = Domain::new(3).unwrap();
        assert!(d.check_item(2).is_ok());
        let err = d.check_item(3).unwrap_err();
        assert!(matches!(err, LdpError::DomainMismatch { expected: 3, .. }));
    }

    #[test]
    fn check_len_matches_vectors() {
        let d = Domain::new(4).unwrap();
        assert!(d.check_len(&[0.0; 4], "freqs").is_ok());
        assert!(d.check_len(&[0.0; 3], "freqs").is_err());
    }
}
