//! Dense `f64` vector helpers used across protocols, recovery, and metrics.
//!
//! Everything operates on plain slices; nothing allocates unless it returns a
//! new vector. Summations that feed published metrics (MSE, frequency sums)
//! use Kahan compensation so that results do not drift with domain size.

/// Kahan-compensated sum of a slice.
pub fn kahan_sum(values: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for &v in values {
        let y = v - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Mean squared error `(1/d) Σ (a_i − b_i)²` — the paper's Eq. (36).
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "MSE requires equal-length vectors");
    assert!(!a.is_empty(), "MSE of empty vectors is undefined");
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let sq = (x - y) * (x - y);
        let t0 = sq - c;
        let t1 = sum + t0;
        c = (t1 - sum) - t0;
        sum = t1;
    }
    sum / a.len() as f64
}

/// L1 distance `Σ |a_i − b_i|` (Kahan-compensated, like [`mse`]).
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "L1 requires equal-length vectors");
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let term = (x - y).abs();
        let t0 = term - c;
        let t1 = sum + t0;
        c = (t1 - sum) - t0;
        sum = t1;
    }
    sum
}

/// L2 distance `√(Σ (a_i − b_i)²)` (Kahan-compensated, like [`mse`]).
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "L2 requires equal-length vectors");
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let sq = (x - y) * (x - y);
        let t0 = sq - c;
        let t1 = sum + t0;
        c = (t1 - sum) - t0;
        sum = t1;
    }
    sum.sqrt()
}

/// Rescales `v` in place so it sums to 1.
///
/// If the current sum is not strictly positive the vector is replaced by the
/// uniform distribution (the only sensible projection for an all-zero or
/// negative-mass estimate).
pub fn normalize_to_simplex_sum(v: &mut [f64]) {
    let total = kahan_sum(v);
    if total > 0.0 {
        for x in v.iter_mut() {
            *x /= total;
        }
    } else if !v.is_empty() {
        let u = 1.0 / v.len() as f64;
        v.fill(u);
    }
}

/// Clamps negative entries to zero in place; returns the clipped mass.
pub fn clamp_non_negative(v: &mut [f64]) -> f64 {
    let mut clipped = 0.0;
    for x in v.iter_mut() {
        if *x < 0.0 {
            clipped -= *x;
            *x = 0.0;
        }
    }
    clipped
}

/// `true` iff `v` is entrywise non-negative and sums to 1 within `tol`.
pub fn is_probability_vector(v: &[f64], tol: f64) -> bool {
    !v.is_empty()
        && v.iter().all(|&x| x >= -tol && x.is_finite())
        && (kahan_sum(v) - 1.0).abs() <= tol
}

/// Indices of the `k` largest entries of `v`, in decreasing value order.
///
/// Ties resolve to the lower index first (deterministic). `k` is clamped to
/// `v.len()`.
pub fn top_k_indices(v: &[f64], k: usize) -> Vec<usize> {
    let k = k.min(v.len());
    let mut idx: Vec<usize> = (0..v.len()).collect();
    // Stable ordering: by value descending, then by index ascending.
    idx.sort_by(|&a, &b| {
        v[b].partial_cmp(&v[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_sum_is_accurate() {
        // 10^7 copies of 0.1 plus a large head; naive sums drift here.
        let mut v = vec![0.1f64; 1_000_000];
        v.push(1e9);
        let s = kahan_sum(&v);
        assert!((s - (1e9 + 100_000.0)).abs() < 1e-4, "s={s}");
    }

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        let m = mse(&[1.0, 0.0], &[0.0, 0.0]);
        assert!((m - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mse_length_mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn distances() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 7.0];
        assert!((l1_distance(&a, &b) - 6.0).abs() < 1e-15);
        assert!((l2_distance(&a, &b) - 20.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn distances_are_compensated() {
        // A large head followed by many tiny terms: the naive `.sum()`
        // these used to run loses the tail entirely; Kahan keeps it.
        let n = 1_000_000usize;
        let mut a = vec![0.1f64; n + 1];
        a[0] = 1e9;
        let b = vec![0.0f64; n + 1];
        let expect = 1e9 + n as f64 * 0.1;
        assert!((l1_distance(&a, &b) - expect).abs() < 1e-4);

        let mut a2 = vec![1e-4f64; n + 1]; // squares to 1e-8 each
        a2[0] = 1e5; // squares to 1e10
        let expect_sq = 1e10 + n as f64 * 1e-8;
        // Tolerance: √ round-trip costs ~2·eps·1e10 ≈ 4e-6; the naive
        // sum lost the whole 0.01 tail.
        let l2 = l2_distance(&a2, &b);
        assert!((l2 * l2 - expect_sq).abs() < 1e-3, "l2²={}", l2 * l2);
    }

    #[test]
    fn normalize_handles_positive_and_degenerate() {
        let mut v = [2.0, 2.0];
        normalize_to_simplex_sum(&mut v);
        assert_eq!(v, [0.5, 0.5]);

        let mut z = [0.0, 0.0, 0.0, 0.0];
        normalize_to_simplex_sum(&mut z);
        assert!(z.iter().all(|&x| (x - 0.25).abs() < 1e-15));

        let mut neg = [-1.0, -3.0];
        normalize_to_simplex_sum(&mut neg);
        assert_eq!(neg, [0.5, 0.5]);
    }

    #[test]
    fn clamp_reports_clipped_mass() {
        let mut v = [0.5, -0.2, 0.1, -0.3];
        let clipped = clamp_non_negative(&mut v);
        assert!((clipped - 0.5).abs() < 1e-15);
        assert_eq!(v, [0.5, 0.0, 0.1, 0.0]);
    }

    #[test]
    fn probability_vector_check() {
        assert!(is_probability_vector(&[0.25; 4], 1e-9));
        assert!(!is_probability_vector(&[0.5, 0.6], 1e-9));
        assert!(!is_probability_vector(&[1.1, -0.1], 1e-9));
        assert!(!is_probability_vector(&[], 1e-9));
        assert!(!is_probability_vector(&[f64::NAN, 1.0], 1e-9));
    }

    #[test]
    fn top_k_orders_and_breaks_ties_deterministically() {
        let v = [0.1, 0.9, 0.9, 0.5];
        assert_eq!(top_k_indices(&v, 2), vec![1, 2]);
        assert_eq!(top_k_indices(&v, 3), vec![1, 2, 3]);
        assert_eq!(top_k_indices(&v, 10), vec![1, 2, 3, 0]);
        assert_eq!(top_k_indices(&v, 0), Vec::<usize>::new());
    }
}
