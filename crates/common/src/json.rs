//! Minimal hand-rolled JSON: a value tree, a pretty renderer, and a
//! recursive-descent parser.
//!
//! Scenario reports, golden files, and streaming-engine checkpoints are
//! JSON so external tooling can read them, but the workspace's dependency
//! policy (vendored, minimal stand-ins only — no `serde_json`) means we
//! carry our own ~200-line subset: objects, arrays, strings (with escape
//! handling), finite numbers, booleans, and null. That is exactly what
//! those artifacts need; non-finite floats render as `null`.
//!
//! The renderer emits the shortest round-tripping decimal form for every
//! finite `f64` (Rust's `Display`), so a render → parse cycle reproduces
//! numbers **bit-for-bit** — the property the stream checkpoint layer's
//! suspend/resume contract is built on. Integers that must survive beyond
//! 2⁵³ (e.g. full-width `u64` seeds) are stored as decimal strings by
//! their owners, never as numbers.

use crate::{LdpError, Result};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and a trailing newline (stable,
    /// diff-friendly output for checked-in goldens).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_number(*v, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] with a byte offset for malformed
    /// input or trailing garbage.
    pub fn parse(input: &str) -> Result<Json> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err_at(pos, "trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_number(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's `Display` for f64 emits the shortest round-tripping
        // decimal form, which is valid JSON.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err_at(pos: usize, what: &str) -> LdpError {
    LdpError::invalid(format!("JSON: {what} at byte {pos}"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err_at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &str, value: Json) -> Result<Json> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err_at(*pos, "unknown literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number span");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err_at(start, "malformed number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err_at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err_at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err_at(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err_at(*pos, "malformed \\u escape"))?;
                        // Surrogate pairs are not needed by our own emitter;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err_at(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (the input is a &str, so this is
                // always a valid boundary walk).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err_at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err_at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err_at(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err_at(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err_at(*pos, "expected ',' or '}'")),
        }
    }
}

/// Per-process monotone counter distinguishing concurrent [`write_atomic`]
/// temp files without reaching for wall-clock or ambient entropy (both
/// banned by the workspace determinism contract, lint rule D02).
static ATOMIC_WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Crash-atomic file write: the contents land in a temp file *in the
/// target's directory* (staying on the same filesystem so the final
/// `rename` is atomic), are flushed and fsynced, and only then renamed
/// over `path`. A reader — e.g. `ldp stream --resume` — therefore sees
/// either the previous complete file or the new complete file, never a
/// torn prefix.
///
/// # Errors
/// [`LdpError::Io`]-style invalid-input errors for any underlying I/O
/// failure; the temp file is removed on a failed write or rename.
pub fn write_atomic(path: &std::path::Path, contents: &str) -> Result<()> {
    use std::io::Write as _;

    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let stem = path
        .file_name()
        .ok_or_else(|| LdpError::invalid(format!("write_atomic: no file name in {path:?}")))?
        .to_string_lossy()
        .into_owned();
    let seq = ATOMIC_WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = dir.join(format!(".{stem}.tmp-{}-{seq}", std::process::id()));

    let write_all = |tmp: &std::path::Path| -> std::io::Result<()> {
        let mut file = std::fs::File::create(tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
        Ok(())
    };
    if let Err(e) = write_all(&tmp) {
        let _ = std::fs::remove_file(&tmp);
        return Err(LdpError::invalid(format!(
            "write_atomic: staging {}: {e}",
            tmp.display()
        )));
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(LdpError::invalid(format!(
            "write_atomic: rename into {}: {e}",
            path.display()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &Json) -> Json {
        Json::parse(&value.render()).unwrap()
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-1.5),
            Json::Num(1.42e-4),
            Json::Num(389_894.0),
            Json::Str("plain".into()),
            Json::Str("quote \" backslash \\ newline \n tab \t unit\u{1}".into()),
            Json::Str("η = 0.2 × β".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn finite_f64_roundtrips_are_bitwise() {
        // The checkpoint contract: render → parse reproduces any finite
        // f64 exactly (shortest round-tripping Display form).
        for v in [
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -f64::MAX,
            2f64.powi(-1074), // smallest subnormal
            6.02e23,
            -0.1 + 0.2,
        ] {
            let back = roundtrip(&Json::Num(v));
            assert_eq!(back.as_f64().unwrap().to_bits(), v.to_bits(), "{v:e}");
        }
    }

    #[test]
    fn nested_structure_roundtrips() {
        let v = Json::Obj(vec![
            ("figure".into(), Json::Str("fig3".into())),
            (
                "cells".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("id".into(), Json::Str("IPUMS/MGA-GRR".into())),
                        ("mean".into(), Json::Num(1.234e-3)),
                    ]),
                    Json::Obj(vec![]),
                    Json::Arr(vec![]),
                ]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn accessors() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("x".into())),
            ("n".into(), Json::Num(3.0)),
            ("flag".into(), Json::Bool(true)),
            ("list".into(), Json::Arr(vec![Json::Num(1.0)])),
        ]);
        assert_eq!(v.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("list").and_then(Json::as_array).map(<[_]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert!(Json::Num(1.0).get("x").is_none());
        assert!(Json::Num(1.0).as_bool().is_none());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render().trim(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render().trim(), "null");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] garbage",
            "{\"a\": \"\\x\"}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_interchange_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5e1 , \"\\u0041\\n\" ] } ").unwrap();
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-25.0));
        assert_eq!(arr[2], Json::Str("A\n".into()));
    }

    /// Torn-write scenario: a crash mid-write may leave a partial *temp*
    /// file behind, but the destination path only ever holds a complete
    /// old or complete new payload — the atomicity contract `--resume`
    /// depends on.
    #[test]
    fn write_atomic_never_exposes_a_torn_file() {
        let dir = std::env::temp_dir().join(format!("ldp-json-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("checkpoint.json");
        let old = "{\n  \"epoch\": 1\n}\n";
        let new = "{\n  \"epoch\": 2\n}\n";

        write_atomic(&target, old).unwrap();
        assert_eq!(std::fs::read_to_string(&target).unwrap(), old);

        // Simulate a crash mid-write: a truncated staging file appears in
        // the target directory (exactly what write_atomic stages before
        // its rename) and is never renamed into place.
        let torn = dir.join(".checkpoint.json.tmp-crashed");
        std::fs::write(&torn, &new[..5]).unwrap();
        assert_eq!(
            std::fs::read_to_string(&target).unwrap(),
            old,
            "a partial staging write must leave the old checkpoint intact"
        );

        // A completed atomic write replaces the payload wholesale.
        write_atomic(&target, new).unwrap();
        assert_eq!(std::fs::read_to_string(&target).unwrap(), new);

        // No staging residue from the successful writes.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-") && !n.ends_with("crashed"))
            .collect();
        assert!(leftovers.is_empty(), "staging residue: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_rejects_pathless_targets() {
        assert!(write_atomic(std::path::Path::new("/"), "x").is_err());
    }
}
