//! Packed bit vectors backing OUE reports.
//!
//! An OUE report is a `d`-bit binary vector; at Fire scale (d = 490,
//! n ≈ 667k) storing reports as `Vec<bool>` would cost 327 MB and thrash the
//! cache during aggregation. [`BitVec`] packs bits into `u64` blocks (41 MB
//! for the same workload) and exposes the exact operations the workspace
//! needs: single-bit set/get, set-bit iteration (aggregation), and masked
//! intersection counting (the Detection baseline).

use serde::{Deserialize, Serialize};

/// A fixed-length packed bit vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    blocks: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            blocks: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len` (debug and release: the shift is guarded).
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.blocks[i / 64] |= mask;
        } else {
            self.blocks[i / 64] &= !mask;
        }
    }

    /// Sets bit `i` to 1 (hot-path shorthand without the branch).
    #[inline(always)]
    pub fn set_one(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in increasing order.
    ///
    /// Aggregation visits only the ~`q·d` set bits per report instead of all
    /// `d` positions, which is the difference between 1.2 × 10⁸ and
    /// 3.3 × 10⁸ operations per Fire-scale trial.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
            len: self.len,
        }
    }

    /// Counts set bits shared with `mask` (i.e. `popcount(self & mask)`).
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn intersection_count(&self, mask: &BitVec) -> usize {
        assert_eq!(self.len, mask.len, "BitVec length mismatch");
        self.blocks
            .iter()
            .zip(&mask.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `true` iff every set bit of `mask` is also set in `self`.
    pub fn contains_all(&self, mask: &BitVec) -> bool {
        assert_eq!(self.len, mask.len, "BitVec length mismatch");
        self.blocks
            .iter()
            .zip(&mask.blocks)
            .all(|(a, b)| a & b == *b)
    }

    /// Builds a mask with the given bit indices set.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn mask_of(len: usize, indices: &[usize]) -> Self {
        let mut v = Self::zeros(len);
        for &i in indices {
            v.set_one(i);
        }
        v
    }
}

/// Iterator over set-bit indices; see [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
    len: usize,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                let idx = self.block_idx * 64 + tz;
                // Bits past `len` in the last block are never set by the
                // public API, so no filtering is required; debug-assert it.
                debug_assert!(idx < self.len);
                return Some(idx);
            }
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_get_set_roundtrip() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(65) && !v.get(128));
        assert_eq!(v.count_ones(), 4);
        v.set(63, false);
        assert!(!v.get(63));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(10);
        let _ = v.get(10);
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut v = BitVec::zeros(200);
        let idxs = [0usize, 5, 63, 64, 100, 127, 128, 199];
        for &i in &idxs {
            v.set_one(i);
        }
        let collected: Vec<usize> = v.iter_ones().collect();
        assert_eq!(collected, idxs);
    }

    #[test]
    fn iter_ones_empty_and_full() {
        let v = BitVec::zeros(70);
        assert_eq!(v.iter_ones().count(), 0);
        let mut full = BitVec::zeros(70);
        for i in 0..70 {
            full.set_one(i);
        }
        assert_eq!(full.iter_ones().count(), 70);
        assert_eq!(full.iter_ones().last(), Some(69));
    }

    #[test]
    fn intersection_and_containment() {
        let a = BitVec::mask_of(100, &[1, 2, 3, 50, 99]);
        let b = BitVec::mask_of(100, &[2, 3, 99]);
        assert_eq!(a.intersection_count(&b), 3);
        assert!(a.contains_all(&b));
        assert!(!b.contains_all(&a));
        let c = BitVec::mask_of(100, &[2, 4]);
        assert_eq!(a.intersection_count(&c), 1);
        assert!(!a.contains_all(&c));
    }

    #[test]
    fn mask_of_builds_expected_mask() {
        let m = BitVec::mask_of(65, &[64]);
        assert!(m.get(64));
        assert_eq!(m.count_ones(), 1);
    }
}
