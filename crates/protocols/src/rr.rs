//! Binary randomized response (Warner 1965) — the `d = 2` special case of
//! GRR, packaged separately because Harmony mean estimation (paper §VII-A)
//! is built directly on it and its reports are single bits.

use ldp_common::rng::FastBernoulli;
use ldp_common::{Domain, Result};
use rand::Rng;

use crate::params::{check_epsilon, PureParams};
use crate::traits::LdpFrequencyProtocol;

/// Binary randomized response with `p = e^ε/(1+e^ε)`.
#[derive(Debug, Clone, Copy)]
pub struct BinaryRandomizedResponse {
    epsilon: f64,
    params: PureParams,
    keep_true: FastBernoulli,
}

impl BinaryRandomizedResponse {
    /// Builds RR for privacy budget `epsilon`.
    ///
    /// # Errors
    /// Propagates ε validation failures.
    pub fn new(epsilon: f64) -> Result<Self> {
        check_epsilon(epsilon)?;
        let e_eps = epsilon.exp();
        let p = e_eps / (1.0 + e_eps);
        let q = 1.0 / (1.0 + e_eps);
        let params = PureParams::new(p, q, Domain::new(2).expect("binary domain"))?;
        Ok(Self {
            epsilon,
            params,
            keep_true: FastBernoulli::new(p),
        })
    }

    /// Perturbs one bit: keeps it with probability `p`, flips otherwise.
    #[inline]
    pub fn perturb_bit<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> bool {
        if self.keep_true.sample(rng) {
            bit
        } else {
            !bit
        }
    }
}

impl LdpFrequencyProtocol for BinaryRandomizedResponse {
    type Report = bool;

    fn name(&self) -> &'static str {
        "RR"
    }

    fn domain(&self) -> Domain {
        self.params.domain()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn params(&self) -> PureParams {
        self.params
    }

    fn perturb<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> bool {
        debug_assert!(item < 2, "RR item must be 0 or 1");
        self.perturb_bit(item == 1, rng)
    }

    fn encode_clean<R: Rng + ?Sized>(&self, item: usize, _rng: &mut R) -> bool {
        debug_assert!(item < 2, "RR item must be 0 or 1");
        item == 1
    }

    #[inline]
    fn supports(&self, report: &bool, v: usize) -> bool {
        usize::from(*report) == v
    }

    #[inline]
    fn accumulate(&self, report: &bool, counts: &mut [u64]) {
        debug_assert_eq!(counts.len(), 2);
        counts[usize::from(*report)] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    #[test]
    fn probabilities_are_warner() {
        let rr = BinaryRandomizedResponse::new(1.0).unwrap();
        let e = 1.0f64.exp();
        assert!((rr.params().p() - e / (1.0 + e)).abs() < 1e-15);
        assert!((rr.params().q() - 1.0 / (1.0 + e)).abs() < 1e-15);
        assert!((rr.params().p() + rr.params().q() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn keeps_bit_with_probability_p() {
        let rr = BinaryRandomizedResponse::new(0.5).unwrap();
        let mut rng = rng_from_seed(1);
        let n = 200_000;
        let kept = (0..n).filter(|_| rr.perturb_bit(true, &mut rng)).count();
        let rate = kept as f64 / n as f64;
        let p = rr.params().p();
        let tol = 5.0 * (p * (1.0 - p) / n as f64).sqrt();
        assert!((rate - p).abs() < tol);
    }

    #[test]
    fn support_and_accumulate() {
        let rr = BinaryRandomizedResponse::new(0.5).unwrap();
        assert!(rr.supports(&true, 1));
        assert!(rr.supports(&false, 0));
        assert!(!rr.supports(&true, 0));
        let mut counts = [0u64; 2];
        rr.accumulate(&true, &mut counts);
        rr.accumulate(&false, &mut counts);
        rr.accumulate(&true, &mut counts);
        assert_eq!(counts, [1, 2]);
    }

    #[test]
    fn matches_grr_with_domain_two() {
        use crate::grr::Grr;
        let rr = BinaryRandomizedResponse::new(0.7).unwrap();
        let grr = Grr::new(0.7, Domain::new(2).unwrap()).unwrap();
        assert!((rr.params().p() - grr.params().p()).abs() < 1e-15);
        assert!((rr.params().q() - grr.params().q()).abs() < 1e-15);
    }
}
