//! The statically-dispatched protocol interface.

use ldp_common::Domain;
use rand::Rng;

use crate::params::PureParams;

/// A pure LDP protocol for frequency estimation, specified by the algorithm
/// pair `(Ψ, Φ)` of the paper's §III-B plus the support relation of §III-C.
///
/// Implementors are cheap-to-copy descriptor objects holding the protocol
/// parameters; all randomness comes from the caller-supplied RNG, keeping
/// trials exactly reproducible.
pub trait LdpFrequencyProtocol {
    /// The wire format of one user report (`u32` item for GRR, a packed bit
    /// vector for OUE, a `(seed, value)` pair for OLH).
    type Report: Clone;

    /// Human-readable protocol name (`"GRR"`, `"OUE"`, `"OLH"`).
    fn name(&self) -> &'static str;

    /// The item domain `D`.
    fn domain(&self) -> Domain;

    /// The privacy budget `ε` this instance was built with.
    fn epsilon(&self) -> f64;

    /// The `(p, q, d)` support-probability triple used for aggregation.
    fn params(&self) -> PureParams;

    /// Ψ — perturbs a genuine user's item into a report.
    ///
    /// # Panics
    /// Panics (debug assertion) if `item` is outside the domain.
    fn perturb<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> Self::Report;

    /// The *clean* (un-perturbed) encoding of an item — what a malicious
    /// user who bypasses Ψ sends so that the aggregator counts `item`
    /// exactly once. This is the report model of the paper's adaptive
    /// attack (§V-C). The RNG is needed by OLH (seed choice).
    fn encode_clean<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> Self::Report;

    /// Support relation: does `report` support item `v`
    /// (i.e. `v ∈ S(report)`, paper Eq. (13))?
    fn supports(&self, report: &Self::Report, v: usize) -> bool;

    /// Adds `report`'s support indicator into `counts`
    /// (`counts[v] += 1` for every `v ∈ S(report)`).
    ///
    /// # Panics
    /// Panics if `counts.len() != d`.
    fn accumulate(&self, report: &Self::Report, counts: &mut [u64]);

    /// Adds a whole slice of reports' support indicators into `counts` —
    /// bitwise identical to looping [`Self::accumulate`], but protocols
    /// with a transform-domain aggregation override it (HR folds the
    /// batch through one fast Walsh–Hadamard transform, `O(n + K log K)`
    /// instead of `O(n·d)`). Consumes no randomness, so swapping a
    /// per-report loop for this call never perturbs an RNG stream.
    ///
    /// # Panics
    /// Panics if `counts.len() != d`.
    fn accumulate_all(&self, reports: &[Self::Report], counts: &mut [u64]) {
        for r in reports {
            self.accumulate(r, counts);
        }
    }

    /// Ψ + Φ for a whole population at once: samples the aggregate
    /// support-count vector of `item_counts[v]` genuine users holding each
    /// item `v`, exactly distributed as running [`Self::perturb`] +
    /// [`Self::accumulate`] per user (see `crate::batch`).
    ///
    /// Returns `Some` **iff the protocol has a closed-form count sampler**
    /// (i.e. [`Self::is_closed_form`] is `true`); `None` — the default —
    /// sends callers to the grouped per-user fallback
    /// (`crate::batch::grouped_support_counts`). Batched and per-user
    /// paths consume different RNG draws, so they are statistically, not
    /// bitwise, interchangeable.
    ///
    /// # Panics
    /// Implementations panic if `item_counts.len() != d`.
    fn batch_aggregate<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Option<Vec<u64>> {
        let _ = (item_counts, rng);
        None
    }

    /// Whether [`Self::batch_aggregate`] is a genuine closed-form count
    /// sampler (`O(d)`–`O(d·log n)`, no per-user loop). `false` — the
    /// default — means batched callers run the grouped per-user fallback,
    /// so "batched" buys bookkeeping but not asymptotics; reporting and
    /// bench labels use this to stay truthful about which one they
    /// measured. Contract: `is_closed_form() == batch_aggregate(..).is_some()`.
    fn is_closed_form(&self) -> bool {
        false
    }
}
