//! Optimized Local Hashing (paper §III-B, Eq. (8)–(10)).
//!
//! Each user samples a hash function `H` from the seeded xxhash64 family
//! (identified by its 64-bit seed), hashes her item into the small range
//! `{0, …, g−1}` with `g = ⌈e^ε + 1⌉`, perturbs the hashed value with GRR
//! over that range, and reports the pair `(H, value)`. A report supports all
//! items hashing to `value` under `H`, so the support probabilities are
//! `p = e^ε/(e^ε + g − 1)` (true item) and `q = 1/g` (any other item —
//! uniform hashing).

use ldp_common::hash::OlhHash;
use ldp_common::rng::{uniform_index, FastBernoulli};
use ldp_common::{Domain, LdpError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::params::{check_epsilon, PureParams};
use crate::traits::LdpFrequencyProtocol;

/// One OLH report: the sampled hash function (by seed) and the perturbed
/// hashed value in `{0, …, g−1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OlhReport {
    /// Seed identifying the hash-family member the user sampled.
    pub seed: u64,
    /// The (perturbed) hashed value.
    pub value: u32,
}

/// The OLH protocol instance for a fixed `(ε, D)`.
#[derive(Debug, Clone, Copy)]
pub struct Olh {
    domain: Domain,
    epsilon: f64,
    g: u32,
    params: PureParams,
    keep_true: FastBernoulli,
}

impl Olh {
    /// Builds OLH with the paper's default range `g = ⌈e^ε + 1⌉`.
    ///
    /// # Errors
    /// Propagates ε validation failures.
    pub fn new(epsilon: f64, domain: Domain) -> Result<Self> {
        check_epsilon(epsilon)?;
        let g = (epsilon.exp() + 1.0).ceil() as u32;
        Self::with_range(epsilon, domain, g.max(2))
    }

    /// Builds OLH with an explicit hash range `g ≥ 2` (for ablations).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when `g < 2`; otherwise propagates ε /
    /// probability validation failures.
    pub fn with_range(epsilon: f64, domain: Domain, g: u32) -> Result<Self> {
        check_epsilon(epsilon)?;
        if g < 2 {
            return Err(LdpError::invalid(format!(
                "OLH range g must be ≥ 2, got {g}"
            )));
        }
        let e_eps = epsilon.exp();
        // Support probabilities: the true item is supported iff the hashed
        // value survives GRR-over-[g] (prob p); any other item collides with
        // the reported value with probability 1/g by hash uniformity.
        let p = e_eps / (e_eps + f64::from(g) - 1.0);
        let q = 1.0 / f64::from(g);
        let params = PureParams::new(p, q, domain)?;
        Ok(Self {
            domain,
            epsilon,
            g,
            params,
            keep_true: FastBernoulli::new(p),
        })
    }

    /// The hash range `g`.
    #[inline]
    pub fn range(&self) -> u32 {
        self.g
    }

    /// The hash-family member identified by `seed`.
    #[inline]
    pub fn hasher(&self, seed: u64) -> OlhHash {
        OlhHash::new(seed, self.g)
    }
}

impl LdpFrequencyProtocol for Olh {
    type Report = OlhReport;

    fn name(&self) -> &'static str {
        "OLH"
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn params(&self) -> PureParams {
        self.params
    }

    fn perturb<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> OlhReport {
        debug_assert!(self.domain.contains(item), "item {item} out of domain");
        let seed: u64 = rng.gen();
        let hashed = self.hasher(seed).hash(item);
        // GRR over {0, …, g−1}: keep with probability p, else uniform other.
        let value = if self.keep_true.sample(rng) {
            hashed
        } else {
            let r = uniform_index(rng, self.g as usize - 1) as u32;
            if r >= hashed {
                r + 1
            } else {
                r
            }
        };
        OlhReport { seed, value }
    }

    fn encode_clean<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> OlhReport {
        debug_assert!(self.domain.contains(item), "item {item} out of domain");
        let seed: u64 = rng.gen();
        OlhReport {
            seed,
            value: self.hasher(seed).hash(item),
        }
    }

    #[inline]
    fn supports(&self, report: &OlhReport, v: usize) -> bool {
        self.hasher(report.seed).hash(v) == report.value
    }

    fn accumulate(&self, report: &OlhReport, counts: &mut [u64]) {
        debug_assert_eq!(counts.len(), self.domain.size());
        let hasher = self.hasher(report.seed);
        for (v, c) in counts.iter_mut().enumerate() {
            // O(d) hash evaluations per report — n·d total on the per-user
            // path (the batched λ-split sampler avoids them entirely);
            // xxh64_u64 keeps it a handful of ns each.
            if hasher.hash(v) == report.value {
                *c += 1;
            }
        }
    }

    fn batch_aggregate<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Option<Vec<u64>> {
        // Closed-form since the λ-split sampler (`crate::batch`): two
        // binomials per item, no per-user loop.
        Some(self.batch_support_counts(item_counts, rng))
    }

    fn is_closed_form(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    fn olh(eps: f64, d: usize) -> Olh {
        Olh::new(eps, Domain::new(d).unwrap()).unwrap()
    }

    #[test]
    fn default_range_matches_paper() {
        // ε = 0.5 ⇒ g = ⌈e^0.5 + 1⌉ = ⌈2.6487⌉ = 3.
        assert_eq!(olh(0.5, 100).range(), 3);
        // ε = 1.6 ⇒ g = ⌈e^1.6 + 1⌉ = ⌈5.953⌉ = 6.
        assert_eq!(olh(1.6, 100).range(), 6);
        // Tiny ε still keeps g ≥ 2.
        assert!(olh(0.01, 100).range() >= 2);
    }

    #[test]
    fn explicit_range_validation() {
        let d = Domain::new(10).unwrap();
        assert!(Olh::with_range(0.5, d, 1).is_err());
        assert!(Olh::with_range(0.5, d, 8).is_ok());
    }

    #[test]
    fn support_probabilities() {
        let o = olh(0.5, 64);
        let e = 0.5f64.exp();
        let g = 3.0;
        assert!((o.params().p() - e / (e + g - 1.0)).abs() < 1e-15);
        assert!((o.params().q() - 1.0 / g).abs() < 1e-15);
    }

    #[test]
    fn perturbed_report_supports_true_item_with_probability_p() {
        let o = olh(0.5, 32);
        let mut rng = rng_from_seed(1);
        let n = 120_000;
        let hits = (0..n)
            .filter(|_| {
                let r = o.perturb(13, &mut rng);
                o.supports(&r, 13)
            })
            .count();
        let rate = hits as f64 / n as f64;
        let p = o.params().p();
        let tol = 5.0 * (p * (1.0 - p) / n as f64).sqrt();
        assert!((rate - p).abs() < tol, "rate={rate}, p={p}");
    }

    #[test]
    fn perturbed_report_supports_other_items_with_probability_q() {
        let o = olh(0.5, 32);
        let mut rng = rng_from_seed(2);
        let n = 120_000;
        let hits = (0..n)
            .filter(|_| {
                let r = o.perturb(13, &mut rng);
                o.supports(&r, 14)
            })
            .count();
        let rate = hits as f64 / n as f64;
        let q = o.params().q();
        let tol = 5.0 * (q * (1.0 - q) / n as f64).sqrt();
        assert!((rate - q).abs() < tol, "rate={rate}, q={q}");
    }

    #[test]
    fn clean_encoding_always_supports_its_item() {
        let o = olh(0.5, 100);
        let mut rng = rng_from_seed(3);
        for item in [0usize, 17, 99] {
            let r = o.encode_clean(item, &mut rng);
            assert!(o.supports(&r, item));
        }
    }

    #[test]
    fn accumulate_matches_supports() {
        let o = olh(0.5, 40);
        let mut rng = rng_from_seed(4);
        let r = o.perturb(7, &mut rng);
        let mut counts = vec![0u64; 40];
        o.accumulate(&r, &mut counts);
        for (v, &count) in counts.iter().enumerate() {
            assert_eq!(count == 1, o.supports(&r, v), "item {v}");
        }
        // Roughly d/g items should be supported.
        let total: u64 = counts.iter().sum();
        assert!(total > 0 && total < 40);
    }
}
