#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Pure LDP protocols for frequency estimation.
//!
//! Implements the three protocols the LDPRecover paper evaluates (§III-B) —
//! **GRR** (generalized randomized response), **OUE** (optimized unary
//! encoding), and **OLH** (optimized local hashing) — plus the binary
//! randomized response / **Harmony** mean-estimation pair used in the
//! paper's discussion of other aggregation functions (§VII-A).
//!
//! All three frequency protocols are *pure* in the sense of Wang et al.
//! (USENIX Security 2017): a report `ỹ` *supports* a set of items `S(ỹ)`,
//! the true item is supported with probability `p`, any other fixed item
//! with probability `q < p`, and the server debiases raw support counts via
//! the shared estimator (paper Eq. (11))
//!
//! ```text
//! Φ(v) = (C(v) − N·q) / (p − q),       f̃(v) = Φ(v) / N.
//! ```
//!
//! # Structure
//!
//! * [`params::PureParams`] — the `(p, q, d)` triple plus the shared
//!   debiasing / variance algebra every layer above builds on.
//! * [`traits::LdpFrequencyProtocol`] — the statically-dispatched protocol
//!   interface (perturb, clean-encode, support, accumulate).
//! * [`grr`], [`oue`], [`olh`] — the concrete protocols.
//! * [`report::Report`] / [`report::AnyProtocol`] — a closed enum over the
//!   three protocols so heterogeneous experiment code stays monomorphic.
//! * [`accumulate::CountAccumulator`] — streaming support-count aggregation.
//! * [`batch`] — count-based batched aggregation: sample a whole
//!   population's support counts in `O(d)`–`O(d·log n)` instead of
//!   simulating `n` users (the `batch_aggregate` trait hook).
//! * [`rr`] / [`harmony`] — binary randomized response and Harmony mean
//!   estimation built on top of it.
//!
//! # Example
//!
//! ```
//! use ldp_common::{rng::rng_from_seed, Domain};
//! use ldp_protocols::{CountAccumulator, LdpFrequencyProtocol, ProtocolKind};
//!
//! let domain = Domain::new(16).unwrap();
//! let proto = ProtocolKind::Oue.build(1.0, domain).unwrap();
//! let mut rng = rng_from_seed(7);
//!
//! // 10k users all holding item 3.
//! let mut acc = CountAccumulator::new(domain);
//! for _ in 0..10_000 {
//!     let report = proto.perturb(3, &mut rng);
//!     acc.add(&proto, &report);
//! }
//! let freqs = acc.frequencies(proto.params()).unwrap();
//! assert!((freqs[3] - 1.0).abs() < 0.05); // unbiased: ≈ 1.0
//! ```

pub mod accumulate;
pub mod batch;
pub mod grr;
pub mod hadamard;
pub mod harmony;
pub mod olh;
pub mod oue;
pub mod params;
pub mod report;
pub mod rr;
pub mod sue;
pub mod traits;

pub use accumulate::CountAccumulator;
pub use batch::{HrScratch, ProtocolScratch};
pub use grr::Grr;
pub use hadamard::HadamardResponse;
pub use harmony::Harmony;
pub use olh::Olh;
pub use oue::Oue;
pub use params::PureParams;
pub use report::{AnyProtocol, ProtocolKind, Report};
pub use rr::BinaryRandomizedResponse;
pub use sue::Sue;
pub use traits::LdpFrequencyProtocol;
