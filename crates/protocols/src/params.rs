//! The shared `(p, q, d)` algebra of pure LDP protocols.
//!
//! Every pure protocol is summarized, for aggregation purposes, by
//! * `p` — probability that a report supports the reporter's true item,
//! * `q` — probability that it supports any fixed other item,
//! * `d` — the domain size.
//!
//! The debiased count estimator (paper Eq. (11)), its variance (the general
//! form of Eqs. (4), (7), (10)), and the malicious-frequency-sum constant of
//! LDPRecover's learning step (Eq. (21)) are all functions of this triple
//! alone, which is why it gets its own type: the recovery crate consumes
//! `PureParams` without knowing which protocol produced the counts.

use ldp_common::{Domain, LdpError, Result};
use serde::{Deserialize, Serialize};

/// Support probabilities of a pure LDP protocol over a given domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PureParams {
    p: f64,
    q: f64,
    domain: Domain,
}

impl PureParams {
    /// Creates the triple, validating `0 ≤ q < p ≤ 1`.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when the probabilities are out of
    /// range or not separated (`p ≤ q` would make debiasing singular).
    pub fn new(p: f64, q: f64, domain: Domain) -> Result<Self> {
        if !(p.is_finite() && q.is_finite()) {
            return Err(LdpError::invalid("p and q must be finite"));
        }
        if !(0.0..=1.0).contains(&p) || !(0.0..=1.0).contains(&q) {
            return Err(LdpError::invalid(format!(
                "probabilities out of range: p={p}, q={q}"
            )));
        }
        if p <= q {
            return Err(LdpError::invalid(format!(
                "pure protocol requires p > q, got p={p}, q={q}"
            )));
        }
        Ok(Self { p, q, domain })
    }

    /// Probability a report supports the true item.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability a report supports a fixed non-true item.
    #[inline]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The item domain.
    #[inline]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Domain size `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.domain.size()
    }

    /// Debiases one raw support count into an estimated *count* of users
    /// holding the item (paper Eq. (11)): `Φ(v) = (C(v) − N·q)/(p − q)`.
    #[inline]
    pub fn debias_count(&self, raw_count: f64, total_reports: f64) -> f64 {
        (raw_count - total_reports * self.q) / (self.p - self.q)
    }

    /// Debiases raw support counts into estimated *frequencies*
    /// `f̃(v) = Φ(v)/N`.
    ///
    /// # Errors
    /// [`LdpError::DomainMismatch`] when the count vector length is not `d`;
    /// [`LdpError::EmptyInput`] when `total_reports == 0`.
    pub fn debias_frequencies(&self, raw_counts: &[u64], total_reports: usize) -> Result<Vec<f64>> {
        self.domain.check_len(raw_counts, "raw support counts")?;
        if total_reports == 0 {
            return Err(LdpError::EmptyInput("reports (total_reports == 0)"));
        }
        let n = total_reports as f64;
        Ok(raw_counts
            .iter()
            .map(|&c| self.debias_count(c as f64, n) / n)
            .collect())
    }

    /// Variance of the debiased *count* estimator for an item of true
    /// frequency `f`, from `n` genuine reports — the general pure-protocol
    /// form specializing to the paper's Eqs. (4), (7), (10):
    ///
    /// ```text
    /// Var[Φ(v)] = n·q(1−q)/(p−q)² + n·f(v)·(1−p−q)/(p−q)
    /// ```
    pub fn variance_count(&self, f: f64, n: usize) -> f64 {
        let n = n as f64;
        let pq = self.p - self.q;
        n * self.q * (1.0 - self.q) / (pq * pq) + n * f * (1.0 - self.p - self.q) / pq
    }

    /// Variance of the *frequency* estimator `f̃(v) = Φ(v)/n`.
    pub fn variance_frequency(&self, f: f64, n: usize) -> f64 {
        self.variance_count(f, n) / (n as f64 * n as f64)
    }

    /// The expected sum of malicious aggregated frequencies under the
    /// adaptive attack (paper Eq. (20)/(21)):
    ///
    /// ```text
    /// Σ_v f̃_Y(v) = (1 − q·d)/(p − q)
    /// ```
    ///
    /// This constant exists because each malicious report bypasses Ψ and
    /// supports (in expectation) exactly one item, while the aggregation
    /// step still subtracts `q` per item as if it were genuine.
    pub fn malicious_frequency_sum(&self) -> f64 {
        (1.0 - self.q * self.d() as f64) / (self.p - self.q)
    }
}

/// Validates a privacy budget.
///
/// # Errors
/// [`LdpError::InvalidParameter`] unless `ε` is finite and strictly positive.
pub fn check_epsilon(epsilon: f64) -> Result<()> {
    if epsilon.is_finite() && epsilon > 0.0 {
        Ok(())
    } else {
        Err(LdpError::invalid(format!(
            "privacy budget must be finite and positive, got {epsilon}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(p: f64, q: f64, d: usize) -> PureParams {
        PureParams::new(p, q, Domain::new(d).unwrap()).unwrap()
    }

    #[test]
    fn rejects_invalid_probabilities() {
        let d = Domain::new(4).unwrap();
        assert!(PureParams::new(0.5, 0.5, d).is_err()); // p == q
        assert!(PureParams::new(0.3, 0.5, d).is_err()); // p < q
        assert!(PureParams::new(1.5, 0.5, d).is_err());
        assert!(PureParams::new(0.5, -0.1, d).is_err());
        assert!(PureParams::new(f64::NAN, 0.1, d).is_err());
    }

    #[test]
    fn debias_inverts_expected_counts() {
        // If n1 users hold v, E[C(v)] = n1·p + (N − n1)·q; debias must
        // return exactly n1 at the expectation.
        let pp = params(0.7, 0.2, 10);
        let n_total = 1000.0;
        let n1 = 340.0;
        let expected_raw = n1 * pp.p() + (n_total - n1) * pp.q();
        let est = pp.debias_count(expected_raw, n_total);
        assert!((est - n1).abs() < 1e-9);
    }

    #[test]
    fn debias_frequencies_validates_shape() {
        let pp = params(0.7, 0.2, 3);
        assert!(pp.debias_frequencies(&[1, 2], 10).is_err());
        assert!(pp.debias_frequencies(&[1, 2, 3], 0).is_err());
        let f = pp.debias_frequencies(&[5, 5, 5], 10).unwrap();
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn variance_matches_paper_oue_form() {
        // For OUE (p = 1/2, q = 1/(e^ε+1)): Eq. (7) says
        // Var[Φ] = n·4e^ε/(e^ε−1)². The general form must agree at f = 0,
        // and the f-dependent term vanishes because 1 − p − q = ... != 0;
        // Eq. (7) is the f→0 approximation the paper states. Check f = 0.
        let eps: f64 = 0.5;
        let p = 0.5;
        let q = 1.0 / (eps.exp() + 1.0);
        let pp = params(p, q, 100);
        let n = 10_000;
        let general = pp.variance_count(0.0, n);
        let paper = n as f64 * 4.0 * eps.exp() / (eps.exp() - 1.0).powi(2);
        assert!(
            (general - paper).abs() / paper < 1e-12,
            "general={general}, paper={paper}"
        );
    }

    #[test]
    fn variance_matches_paper_grr_form() {
        // GRR: p = e^ε/(d−1+e^ε), q = 1/(d−1+e^ε); Eq. (4) says
        // Var[Φ] = n(d−2+e^ε)/(e^ε−1)² + n·f(d−2)/(e^ε−1).
        let eps: f64 = 0.5;
        let d = 102usize;
        let e = eps.exp();
        let denom = d as f64 - 1.0 + e;
        let pp = params(e / denom, 1.0 / denom, d);
        let n = 389_894;
        for &f in &[0.0, 0.01, 0.3] {
            let general = pp.variance_count(f, n);
            let paper = n as f64 * (d as f64 - 2.0 + e) / (e - 1.0).powi(2)
                + n as f64 * f * (d as f64 - 2.0) / (e - 1.0);
            assert!(
                (general - paper).abs() / paper < 1e-10,
                "f={f}: general={general}, paper={paper}"
            );
        }
    }

    #[test]
    fn frequency_variance_scales_inverse_n() {
        let pp = params(0.5, 0.25, 10);
        let v1 = pp.variance_frequency(0.1, 1000);
        let v2 = pp.variance_frequency(0.1, 4000);
        assert!((v1 / v2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn malicious_sum_constant() {
        // GRR d=4, ε=ln 3: p = 3/6 = 0.5, q = 1/6.
        let pp = params(0.5, 1.0 / 6.0, 4);
        let s = pp.malicious_frequency_sum();
        let expect = (1.0 - 4.0 / 6.0) / (0.5 - 1.0 / 6.0);
        assert!((s - expect).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12); // happens to be exactly 1 here
    }

    #[test]
    fn epsilon_validation() {
        assert!(check_epsilon(0.5).is_ok());
        assert!(check_epsilon(0.0).is_err());
        assert!(check_epsilon(-1.0).is_err());
        assert!(check_epsilon(f64::INFINITY).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
    }
}
