//! Streaming support-count aggregation.
//!
//! The server side of every pure protocol is the same: accumulate support
//! counts `C(v)` over reports, then debias with the shared estimator. The
//! accumulator is deliberately independent of the protocol value so that
//! one type serves genuine, malicious, and mixed report streams (the
//! pipeline aggregates `X̃`, `Y`, and `Z = X̃ ∪ Y` separately to measure
//! the quantities in the paper's Fig. 7).

use ldp_common::{Domain, Result};

use crate::traits::LdpFrequencyProtocol;

/// Raw support counts plus the number of reports folded in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountAccumulator {
    counts: Vec<u64>,
    reports: usize,
}

impl CountAccumulator {
    /// Creates an empty accumulator over `domain`.
    pub fn new(domain: Domain) -> Self {
        Self {
            counts: vec![0u64; domain.size()],
            reports: 0,
        }
    }

    /// Wraps pre-computed support counts for `reports` reports — the entry
    /// point for the batched aggregation engine
    /// (`LdpFrequencyProtocol::batch_aggregate`), which samples the count
    /// vector without materializing individual reports.
    pub fn from_parts(counts: Vec<u64>, reports: usize) -> Self {
        Self { counts, reports }
    }

    /// Folds one report in.
    pub fn add<P: LdpFrequencyProtocol>(&mut self, protocol: &P, report: &P::Report) {
        protocol.accumulate(report, &mut self.counts);
        self.reports += 1;
    }

    /// Folds a batch of reports in.
    pub fn add_all<'a, P, I>(&mut self, protocol: &P, reports: I)
    where
        P: LdpFrequencyProtocol,
        P::Report: 'a,
        I: IntoIterator<Item = &'a P::Report>,
    {
        for r in reports {
            self.add(protocol, r);
        }
    }

    /// Folds a whole slice of reports in through the protocol's batch
    /// kernel ([`LdpFrequencyProtocol::accumulate_all`]) — bitwise
    /// identical to per-report [`CountAccumulator::add`] calls, but HR
    /// aggregates through one fast Walsh–Hadamard transform.
    pub fn add_batch<P: LdpFrequencyProtocol>(&mut self, protocol: &P, reports: &[P::Report]) {
        protocol.accumulate_all(reports, &mut self.counts);
        self.reports += reports.len();
    }

    /// Clears the accumulator for reuse over `domain`, keeping its
    /// allocation when the size matches (the trial-arena path).
    pub fn reset(&mut self, domain: Domain) {
        self.counts.clear();
        self.counts.resize(domain.size(), 0);
        self.reports = 0;
    }

    /// Merges another accumulator (e.g. genuine + malicious = poisoned).
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn merge(&mut self, other: &CountAccumulator) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge accumulators over different domains"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.reports += other.reports;
    }

    /// Raw support counts `C(v)`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of reports folded in (`N`).
    pub fn report_count(&self) -> usize {
        self.reports
    }

    /// Debiased frequency estimates `f̃(v)` under the given parameters
    /// (paper Eq. (11) divided by `N`).
    ///
    /// # Errors
    /// Propagates shape / emptiness validation from
    /// [`crate::params::PureParams::debias_frequencies`].
    pub fn frequencies(&self, params: crate::params::PureParams) -> Result<Vec<f64>> {
        params.debias_frequencies(&self.counts, self.reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ProtocolKind;
    use crate::traits::LdpFrequencyProtocol;
    use ldp_common::rng::rng_from_seed;
    use ldp_common::Domain;

    #[test]
    fn empty_accumulator_refuses_to_estimate() {
        let domain = Domain::new(5).unwrap();
        let p = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let acc = CountAccumulator::new(domain);
        assert!(acc.frequencies(p.params()).is_err());
    }

    #[test]
    fn merge_equals_joint_accumulation() {
        let domain = Domain::new(8).unwrap();
        let p = ProtocolKind::Oue.build(1.0, domain).unwrap();
        let mut rng = rng_from_seed(1);

        let reports_a: Vec<_> = (0..200).map(|_| p.perturb(1, &mut rng)).collect();
        let reports_b: Vec<_> = (0..300).map(|_| p.perturb(6, &mut rng)).collect();

        let mut joint = CountAccumulator::new(domain);
        joint.add_all(&p, reports_a.iter().chain(&reports_b));

        let mut a = CountAccumulator::new(domain);
        a.add_all(&p, &reports_a);
        let mut b = CountAccumulator::new(domain);
        b.add_all(&p, &reports_b);
        a.merge(&b);

        assert_eq!(a, joint);
        assert_eq!(a.report_count(), 500);
    }

    #[test]
    fn add_batch_matches_per_report_adds_for_every_protocol() {
        // The batch kernel contract: bitwise-identical counts to the
        // per-report loop (HR goes through the FWHT; the rest loop).
        let domain = Domain::new(37).unwrap();
        for kind in ProtocolKind::EXTENDED {
            let p = kind.build(0.7, domain).unwrap();
            let mut rng = rng_from_seed(9);
            let reports: Vec<_> = (0..800).map(|i| p.perturb(i % 37, &mut rng)).collect();

            let mut looped = CountAccumulator::new(domain);
            for r in &reports {
                looped.add(&p, r);
            }
            let mut batched = CountAccumulator::new(domain);
            batched.add_batch(&p, &reports);

            assert_eq!(looped, batched, "{kind}");
            assert_eq!(batched.report_count(), 800, "{kind}");
        }
    }

    #[test]
    fn reset_clears_counts_and_reports() {
        let domain = Domain::new(8).unwrap();
        let p = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let mut rng = rng_from_seed(2);
        let mut acc = CountAccumulator::new(domain);
        let r = p.perturb(3, &mut rng);
        acc.add(&p, &r);
        assert_eq!(acc.report_count(), 1);

        acc.reset(domain);
        assert_eq!(acc, CountAccumulator::new(domain));

        // Reuse over a different domain reshapes too.
        let wider = Domain::new(12).unwrap();
        acc.reset(wider);
        assert_eq!(acc.counts().len(), 12);
    }

    #[test]
    fn estimates_are_unbiased_for_each_protocol() {
        // 60k users, true distribution (0.5, 0.3, 0.2, 0, …): every
        // protocol must estimate within 6σ of truth.
        let domain = Domain::new(6).unwrap();
        let n = 60_000usize;
        let truth = [0.5, 0.3, 0.2, 0.0, 0.0, 0.0];
        for kind in ProtocolKind::ALL {
            let p = kind.build(1.0, domain).unwrap();
            let mut rng = rng_from_seed(42);
            let mut acc = CountAccumulator::new(domain);
            for i in 0..n {
                let u = i as f64 / n as f64;
                let item = if u < 0.5 {
                    0
                } else if u < 0.8 {
                    1
                } else {
                    2
                };
                let r = p.perturb(item, &mut rng);
                acc.add(&p, &r);
            }
            let est = acc.frequencies(p.params()).unwrap();
            for v in 0..6 {
                let sigma = p.params().variance_frequency(truth[v], n).sqrt();
                assert!(
                    (est[v] - truth[v]).abs() < 6.0 * sigma.max(1e-4),
                    "{kind:?} item {v}: est={}, truth={}",
                    est[v],
                    truth[v]
                );
            }
        }
    }
}
