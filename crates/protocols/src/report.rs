//! Heterogeneous protocol dispatch: the [`Report`] and [`AnyProtocol`]
//! closed enums plus the [`ProtocolKind`] factory.
//!
//! Experiment code runs the same pipeline over GRR, OUE, and OLH. A trait
//! object would erase the associated `Report` type; instead the workspace
//! uses closed enums — the protocol set is fixed by the paper — which keeps
//! the hot loops branch-predictable and the APIs object-safe-by-construction.

use ldp_common::{BitVec, Domain, LdpError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::grr::Grr;
use crate::hadamard::HadamardResponse;
use crate::olh::{Olh, OlhReport};
use crate::oue::Oue;
use crate::params::PureParams;
use crate::sue::Sue;
use crate::traits::LdpFrequencyProtocol;

/// A report from any of the three frequency protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Report {
    /// GRR: the (perturbed) item index.
    Grr(u32),
    /// OUE: the (perturbed) d-bit unary encoding.
    Oue(BitVec),
    /// OLH: the sampled hash function and (perturbed) hashed value.
    Olh(OlhReport),
    /// SUE: the (perturbed) d-bit unary encoding (extension protocol).
    Sue(BitVec),
    /// HR: the reported Hadamard column index (extension protocol).
    Hr(u32),
}

impl Report {
    /// Short tag for diagnostics.
    pub fn kind(&self) -> ProtocolKind {
        match self {
            Report::Grr(_) => ProtocolKind::Grr,
            Report::Oue(_) => ProtocolKind::Oue,
            Report::Olh(_) => ProtocolKind::Olh,
            Report::Sue(_) => ProtocolKind::Sue,
            Report::Hr(_) => ProtocolKind::Hr,
        }
    }
}

/// Which protocol an experiment runs (paper §VI-A.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Generalized randomized response.
    Grr,
    /// Optimized unary encoding.
    Oue,
    /// Optimized local hashing.
    Olh,
    /// Symmetric unary encoding (basic RAPPOR) — extension beyond the
    /// paper's trio; not part of [`ProtocolKind::ALL`].
    Sue,
    /// Hadamard response — extension beyond the paper's trio; not part of
    /// [`ProtocolKind::ALL`].
    Hr,
}

impl ProtocolKind {
    /// The paper's three protocols, in its presentation order.
    pub const ALL: [ProtocolKind; 3] = [ProtocolKind::Grr, ProtocolKind::Oue, ProtocolKind::Olh];

    /// The paper's trio plus the SUE and HR extensions.
    pub const EXTENDED: [ProtocolKind; 5] = [
        ProtocolKind::Grr,
        ProtocolKind::Oue,
        ProtocolKind::Olh,
        ProtocolKind::Sue,
        ProtocolKind::Hr,
    ];

    /// Instantiates the protocol for `(ε, D)`.
    ///
    /// # Errors
    /// Propagates the protocol constructors' validation failures.
    pub fn build(self, epsilon: f64, domain: Domain) -> Result<AnyProtocol> {
        Ok(match self {
            ProtocolKind::Grr => AnyProtocol::Grr(Grr::new(epsilon, domain)?),
            ProtocolKind::Oue => AnyProtocol::Oue(Oue::new(epsilon, domain)?),
            ProtocolKind::Olh => AnyProtocol::Olh(Olh::new(epsilon, domain)?),
            ProtocolKind::Sue => AnyProtocol::Sue(Sue::new(epsilon, domain)?),
            ProtocolKind::Hr => AnyProtocol::Hr(HadamardResponse::new(epsilon, domain)?),
        })
    }

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Grr => "GRR",
            ProtocolKind::Oue => "OUE",
            ProtocolKind::Olh => "OLH",
            ProtocolKind::Sue => "SUE",
            ProtocolKind::Hr => "HR",
        }
    }

    /// Parses `"GRR" | "OUE" | "OLH" | "SUE" | "HR"` (case-insensitive) —
    /// the paper's trio plus both extension protocols.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for unknown names.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_uppercase().as_str() {
            "GRR" => Ok(ProtocolKind::Grr),
            "OUE" => Ok(ProtocolKind::Oue),
            "OLH" => Ok(ProtocolKind::Olh),
            "SUE" => Ok(ProtocolKind::Sue),
            "HR" => Ok(ProtocolKind::Hr),
            other => Err(LdpError::invalid(format!("unknown protocol '{other}'"))),
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A closed sum over the three protocol instances, exposing the
/// [`LdpFrequencyProtocol`] surface with [`Report`] as the report type.
#[derive(Debug, Clone, Copy)]
pub enum AnyProtocol {
    /// Generalized randomized response.
    Grr(Grr),
    /// Optimized unary encoding.
    Oue(Oue),
    /// Optimized local hashing.
    Olh(Olh),
    /// Symmetric unary encoding (extension).
    Sue(Sue),
    /// Hadamard response (extension).
    Hr(HadamardResponse),
}

impl AnyProtocol {
    /// Which protocol this is.
    pub fn kind(&self) -> ProtocolKind {
        match self {
            AnyProtocol::Grr(_) => ProtocolKind::Grr,
            AnyProtocol::Oue(_) => ProtocolKind::Oue,
            AnyProtocol::Olh(_) => ProtocolKind::Olh,
            AnyProtocol::Sue(_) => ProtocolKind::Sue,
            AnyProtocol::Hr(_) => ProtocolKind::Hr,
        }
    }

    /// Panics with a clear message when a report of the wrong protocol is
    /// fed in — that is always a harness bug, never a runtime condition.
    #[cold]
    fn report_mismatch(&self, report: &Report) -> ! {
        panic!(
            "report kind {:?} fed to protocol {}",
            report.kind(),
            self.kind()
        );
    }
}

impl LdpFrequencyProtocol for AnyProtocol {
    type Report = Report;

    fn name(&self) -> &'static str {
        self.kind().name()
    }

    fn domain(&self) -> Domain {
        match self {
            AnyProtocol::Grr(x) => x.domain(),
            AnyProtocol::Oue(x) => x.domain(),
            AnyProtocol::Olh(x) => x.domain(),
            AnyProtocol::Sue(x) => x.domain(),
            AnyProtocol::Hr(x) => x.domain(),
        }
    }

    fn epsilon(&self) -> f64 {
        match self {
            AnyProtocol::Grr(x) => x.epsilon(),
            AnyProtocol::Oue(x) => x.epsilon(),
            AnyProtocol::Olh(x) => x.epsilon(),
            AnyProtocol::Sue(x) => x.epsilon(),
            AnyProtocol::Hr(x) => x.epsilon(),
        }
    }

    fn params(&self) -> PureParams {
        match self {
            AnyProtocol::Grr(x) => x.params(),
            AnyProtocol::Oue(x) => x.params(),
            AnyProtocol::Olh(x) => x.params(),
            AnyProtocol::Sue(x) => x.params(),
            AnyProtocol::Hr(x) => x.params(),
        }
    }

    fn perturb<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> Report {
        match self {
            AnyProtocol::Grr(x) => Report::Grr(x.perturb(item, rng)),
            AnyProtocol::Oue(x) => Report::Oue(x.perturb(item, rng)),
            AnyProtocol::Olh(x) => Report::Olh(x.perturb(item, rng)),
            AnyProtocol::Sue(x) => Report::Sue(x.perturb(item, rng)),
            AnyProtocol::Hr(x) => Report::Hr(x.perturb(item, rng)),
        }
    }

    fn encode_clean<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> Report {
        match self {
            AnyProtocol::Grr(x) => Report::Grr(x.encode_clean(item, rng)),
            AnyProtocol::Oue(x) => Report::Oue(x.encode_clean(item, rng)),
            AnyProtocol::Olh(x) => Report::Olh(x.encode_clean(item, rng)),
            AnyProtocol::Sue(x) => Report::Sue(x.encode_clean(item, rng)),
            AnyProtocol::Hr(x) => Report::Hr(x.encode_clean(item, rng)),
        }
    }

    fn supports(&self, report: &Report, v: usize) -> bool {
        match (self, report) {
            (AnyProtocol::Grr(x), Report::Grr(r)) => x.supports(r, v),
            (AnyProtocol::Oue(x), Report::Oue(r)) => x.supports(r, v),
            (AnyProtocol::Olh(x), Report::Olh(r)) => x.supports(r, v),
            (AnyProtocol::Sue(x), Report::Sue(r)) => x.supports(r, v),
            (AnyProtocol::Hr(x), Report::Hr(r)) => x.supports(r, v),
            _ => self.report_mismatch(report),
        }
    }

    fn accumulate(&self, report: &Report, counts: &mut [u64]) {
        match (self, report) {
            (AnyProtocol::Grr(x), Report::Grr(r)) => x.accumulate(r, counts),
            (AnyProtocol::Oue(x), Report::Oue(r)) => x.accumulate(r, counts),
            (AnyProtocol::Olh(x), Report::Olh(r)) => x.accumulate(r, counts),
            (AnyProtocol::Sue(x), Report::Sue(r)) => x.accumulate(r, counts),
            (AnyProtocol::Hr(x), Report::Hr(r)) => x.accumulate(r, counts),
            _ => self.report_mismatch(report),
        }
    }

    fn accumulate_all(&self, reports: &[Report], counts: &mut [u64]) {
        // HR gets the FWHT batch kernel; the other protocols' batch
        // accumulation is the plain loop either way, so the default
        // suffices (and keeps per-report mismatch checking).
        if let AnyProtocol::Hr(x) = self {
            x.accumulate_columns(
                reports.iter().map(|r| match r {
                    Report::Hr(c) => *c,
                    other => self.report_mismatch(other),
                }),
                counts,
            );
        } else {
            for r in reports {
                self.accumulate(r, counts);
            }
        }
    }

    fn batch_aggregate<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Option<Vec<u64>> {
        match self {
            AnyProtocol::Grr(x) => x.batch_aggregate(item_counts, rng),
            AnyProtocol::Oue(x) => x.batch_aggregate(item_counts, rng),
            AnyProtocol::Olh(x) => x.batch_aggregate(item_counts, rng),
            AnyProtocol::Sue(x) => x.batch_aggregate(item_counts, rng),
            AnyProtocol::Hr(x) => x.batch_aggregate(item_counts, rng),
        }
    }

    fn is_closed_form(&self) -> bool {
        match self {
            AnyProtocol::Grr(x) => x.is_closed_form(),
            AnyProtocol::Oue(x) => x.is_closed_form(),
            AnyProtocol::Olh(x) => x.is_closed_form(),
            AnyProtocol::Sue(x) => x.is_closed_form(),
            AnyProtocol::Hr(x) => x.is_closed_form(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    #[test]
    fn factory_builds_each_kind() {
        let domain = Domain::new(10).unwrap();
        for kind in ProtocolKind::EXTENDED {
            let p = kind.build(0.5, domain).unwrap();
            assert_eq!(p.kind(), kind);
            assert_eq!(p.domain().size(), 10);
            assert_eq!(p.epsilon(), 0.5);
        }
    }

    #[test]
    fn parse_roundtrips() {
        for kind in ProtocolKind::EXTENDED {
            assert_eq!(ProtocolKind::parse(kind.name()).unwrap(), kind);
            assert_eq!(
                ProtocolKind::parse(&kind.name().to_lowercase()).unwrap(),
                kind
            );
        }
        assert!(ProtocolKind::parse("RAPPOR").is_err());
        // Near-misses of the extension names must be rejected too, not
        // silently coerced (regression for the SUE/HR parse-doc drift).
        assert!(ProtocolKind::parse("").is_err());
        assert!(ProtocolKind::parse("SUE2").is_err());
        assert!(ProtocolKind::parse("H R").is_err());
    }

    #[test]
    fn dispatch_is_consistent_with_concrete_protocols() {
        let domain = Domain::new(12).unwrap();
        let mut rng = rng_from_seed(5);
        for kind in ProtocolKind::EXTENDED {
            let p = kind.build(0.8, domain).unwrap();
            let r = p.perturb(4, &mut rng);
            assert_eq!(r.kind(), kind);
            let mut counts = vec![0u64; 12];
            p.accumulate(&r, &mut counts);
            for (v, &count) in counts.iter().enumerate() {
                assert_eq!(count == 1, p.supports(&r, v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "report kind")]
    fn mismatched_report_panics() {
        let domain = Domain::new(4).unwrap();
        let grr = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let mut counts = vec![0u64; 4];
        grr.accumulate(&Report::Oue(BitVec::zeros(4)), &mut counts);
    }
}
