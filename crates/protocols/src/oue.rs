//! Optimized Unary Encoding (paper §III-B, Eq. (5)–(7)).
//!
//! Each user one-hot-encodes her item into a `d`-bit vector and perturbs
//! every bit independently: the true-item bit is reported as 1 with
//! probability `p = 1/2`, every other bit with probability `q = 1/(e^ε+1)`.
//! A report supports exactly the items whose bits are set.
//!
//! Perturbation is the hottest loop of the whole simulator (`n × d`
//! Bernoulli draws, ≈ 3.3 × 10⁸ per Fire-scale trial), so the zero-bits are
//! flipped with [`FastBernoulli`] (one `u64` compare per bit) rather than
//! `f64` draws.

use ldp_common::rng::FastBernoulli;
use ldp_common::{BitVec, Domain, Result};
use rand::Rng;

use crate::params::{check_epsilon, PureParams};
use crate::traits::LdpFrequencyProtocol;

/// The OUE protocol instance for a fixed `(ε, D)`.
#[derive(Debug, Clone, Copy)]
pub struct Oue {
    domain: Domain,
    epsilon: f64,
    params: PureParams,
    one_bit: FastBernoulli,
    zero_bit: FastBernoulli,
}

impl Oue {
    /// Builds OUE for privacy budget `epsilon` over `domain`.
    ///
    /// # Errors
    /// Propagates ε / probability validation failures.
    pub fn new(epsilon: f64, domain: Domain) -> Result<Self> {
        check_epsilon(epsilon)?;
        let p = 0.5;
        let q = 1.0 / (epsilon.exp() + 1.0);
        let params = PureParams::new(p, q, domain)?;
        Ok(Self {
            domain,
            epsilon,
            params,
            one_bit: FastBernoulli::new(p),
            zero_bit: FastBernoulli::new(q),
        })
    }

    /// Expected number of set bits in a *genuine* report for an arbitrary
    /// input: `p + (d−1)·q`. The precise MGA attack pads its crafted
    /// reports to this count to evade count-based detection.
    pub fn expected_ones(&self) -> f64 {
        self.params.p() + (self.domain.size() as f64 - 1.0) * self.params.q()
    }
}

impl LdpFrequencyProtocol for Oue {
    type Report = BitVec;

    fn name(&self) -> &'static str {
        "OUE"
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn params(&self) -> PureParams {
        self.params
    }

    fn perturb<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> BitVec {
        debug_assert!(self.domain.contains(item), "item {item} out of domain");
        let d = self.domain.size();
        let mut bits = BitVec::zeros(d);
        for v in 0..d {
            let on = if v == item {
                self.one_bit.sample(rng)
            } else {
                self.zero_bit.sample(rng)
            };
            if on {
                bits.set_one(v);
            }
        }
        bits
    }

    fn encode_clean<R: Rng + ?Sized>(&self, item: usize, _rng: &mut R) -> BitVec {
        debug_assert!(self.domain.contains(item), "item {item} out of domain");
        let mut bits = BitVec::zeros(self.domain.size());
        bits.set_one(item);
        bits
    }

    #[inline]
    fn supports(&self, report: &BitVec, v: usize) -> bool {
        report.get(v)
    }

    fn accumulate(&self, report: &BitVec, counts: &mut [u64]) {
        debug_assert_eq!(counts.len(), self.domain.size());
        for v in report.iter_ones() {
            counts[v] += 1;
        }
    }

    fn batch_aggregate<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Option<Vec<u64>> {
        Some(self.batch_support_counts(item_counts, rng))
    }

    fn is_closed_form(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    fn oue(eps: f64, d: usize) -> Oue {
        Oue::new(eps, Domain::new(d).unwrap()).unwrap()
    }

    #[test]
    fn parameters_match_paper_equation_5() {
        let o = oue(0.5, 490);
        assert_eq!(o.params().p(), 0.5);
        let q = 1.0 / (0.5f64.exp() + 1.0);
        assert!((o.params().q() - q).abs() < 1e-15);
    }

    #[test]
    fn bit_flip_rates_match_p_and_q() {
        let o = oue(1.0, 32);
        let mut rng = rng_from_seed(1);
        let n = 30_000;
        let mut ones = vec![0usize; 32];
        for _ in 0..n {
            let r = o.perturb(9, &mut rng);
            for v in r.iter_ones() {
                ones[v] += 1;
            }
        }
        let p = o.params().p();
        let q = o.params().q();
        for (v, &c) in ones.iter().enumerate() {
            let target = if v == 9 { p } else { q };
            let rate = c as f64 / n as f64;
            let tol = 5.5 * (target * (1.0 - target) / n as f64).sqrt();
            assert!(
                (rate - target).abs() < tol,
                "bit {v}: rate={rate}, target={target}"
            );
        }
    }

    #[test]
    fn clean_encoding_sets_exactly_one_bit() {
        let o = oue(0.5, 100);
        let mut rng = rng_from_seed(2);
        let r = o.encode_clean(42, &mut rng);
        assert_eq!(r.count_ones(), 1);
        assert!(o.supports(&r, 42));
        assert!(!o.supports(&r, 41));
    }

    #[test]
    fn accumulate_counts_all_set_bits() {
        let o = oue(0.5, 8);
        let mut counts = vec![0u64; 8];
        let r = BitVec::mask_of(8, &[0, 3, 7]);
        o.accumulate(&r, &mut counts);
        assert_eq!(counts, vec![1, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn expected_ones_formula() {
        let o = oue(0.5, 490);
        let q = 1.0 / (0.5f64.exp() + 1.0);
        let expect = 0.5 + 489.0 * q;
        assert!((o.expected_ones() - expect).abs() < 1e-12);
    }
}
