//! Count-based batched aggregation: sample aggregate support counts
//! directly instead of simulating users one report at a time.
//!
//! For a pure protocol, the support-count vector of `n` genuine users is a
//! sum of `n` independent draws whose law depends only on each user's true
//! item. Grouping users by item therefore lets the server-side counts be
//! sampled *exactly* — same joint distribution as the per-user loop — in
//! `O(d)`–`O(d·log n)` work instead of `O(n·d)`:
//!
//! * **GRR** — the perturbation kernel is the mixture
//!   `λ·δ_v + (1−λ)·Uniform(D)` with `λ = 1 − q·d` (check:
//!   `λ + (1−λ)/d = p` and `(1−λ)/d = q`). One binomial per occupied item
//!   splits keep-vs-uniform, and all uniform draws pool into a **single**
//!   d-outcome multinomial.
//! * **OUE / SUE** — bits are independent across users *and* columns, so
//!   each column's count is `Binomial(c_v, p) + Binomial(n − c_v, q)`:
//!   two binomials per column.
//! * **HR** — a report is a Hadamard column drawn from the mixture
//!   `(2p−1)·Uniform(positives of row_v) + (2−2p)·Uniform(all K columns)`
//!   (valid since `p > ½`). Per occupied item one binomial plus a
//!   multinomial over that row's `K/2` positive columns; the uniform part
//!   pools into a single K-outcome multinomial. Support counts then read
//!   off the column histogram.
//! * **OLH** — GRR over the hashed range `[g]` is the mixture
//!   `λ·δ_{h(v)} + (1−λ)·Uniform(g)` with `λ = (p·g − 1)/(g − 1)` (check:
//!   `λ + (1−λ)/g = p` and `(1−λ)/g = (1−p)/(g−1)`, i.e. exactly
//!   GRR-over-`[g]`). Under hash uniformity an item `w` is supported by a
//!   λ-branch report of a `w`-holder always, and by any other report with
//!   probability `1/g`, so per item two binomials suffice:
//!   `C(w) = k_w + Binomial(n − k_w, 1/g)` with `k_w ~ Binomial(c_w, λ)` —
//!   `O(d)` total, no per-user loop. Per-item marginals (mean *and*
//!   variance) match the per-user path exactly; only the within-report
//!   cross-item hash-collision correlation is idealized away (see
//!   `Olh::batch_support_counts`).
//!
//! Batched sampling consumes different RNG draws than the per-user loop,
//! so a batched trial is statistically — not bitwise — equivalent to a
//! per-user trial at the same seed. Each mode is individually
//! deterministic: same seed, same counts.

use ldp_common::kernels::{fwht_i64, positive_columns_into};
use ldp_common::sampling::{add_multinomial_uniform, sample_binomial};
use rand::Rng;

use crate::grr::Grr;
use crate::hadamard::HadamardResponse;
use crate::olh::Olh;
use crate::oue::Oue;
use crate::params::PureParams;
use crate::report::AnyProtocol;
use crate::sue::Sue;
use crate::traits::LdpFrequencyProtocol;

/// Reusable scratch for [`HadamardResponse::batch_support_counts_with`]:
/// the `K`-column histogram, the positive-column and split buffers of the
/// per-item mixture, and the FWHT workspace. One instance per worker
/// amortizes all four allocations across an experiment's trials.
#[derive(Debug, Default, Clone)]
pub struct HrScratch {
    col_counts: Vec<u64>,
    positives: Vec<u32>,
    split: Vec<u64>,
    fwht: Vec<i64>,
}

/// Per-worker scratch reused across batched aggregations of any
/// [`AnyProtocol`]. Only HR needs transform workspace today; the struct
/// exists so the trial arena has one stable slot as protocols grow.
#[derive(Debug, Default, Clone)]
pub struct ProtocolScratch {
    /// Hadamard Response workspace (unused by the other protocols).
    pub hr: HrScratch,
}

impl AnyProtocol {
    /// [`LdpFrequencyProtocol::batch_aggregate`] with caller-owned
    /// scratch: identical draws, identical counts, no per-call transform
    /// allocations for HR. Protocols that need no scratch simply ignore
    /// it.
    pub fn batch_aggregate_with<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
        scratch: &mut ProtocolScratch,
    ) -> Option<Vec<u64>> {
        match self {
            AnyProtocol::Hr(x) => {
                Some(x.batch_support_counts_with(item_counts, rng, &mut scratch.hr))
            }
            other => other.batch_aggregate(item_counts, rng),
        }
    }
}

/// Grouped per-user aggregation over item counts — the fallback for any
/// future protocol whose `batch_aggregate` keeps the trait default, and
/// the reference implementation the closed-form samplers are
/// differential-tested against (`tests/batched_aggregation.rs`). Walks the
/// item groups calling the concrete protocol's `perturb` + `accumulate`:
/// still `O(n·d)`, but with per-report enum dispatch, `Report` wrapping,
/// and item-array chasing hoisted out.
///
/// # Panics
/// Panics if `item_counts.len()` differs from the protocol's domain size.
pub fn grouped_support_counts<P, R>(protocol: &P, item_counts: &[u64], rng: &mut R) -> Vec<u64>
where
    P: LdpFrequencyProtocol,
    R: Rng + ?Sized,
{
    let d = protocol.domain().size();
    assert_eq!(item_counts.len(), d, "item counts must cover the domain");
    let mut counts = vec![0u64; d];
    for (item, &c) in item_counts.iter().enumerate() {
        for _ in 0..c {
            let report = protocol.perturb(item, rng);
            protocol.accumulate(&report, &mut counts);
        }
    }
    counts
}

/// Shared OUE/SUE column sampler: holders of `v` set bit `v` with
/// probability `p`, everyone else with probability `q`, independently.
fn unary_batch_support_counts<R: Rng + ?Sized>(
    params: PureParams,
    item_counts: &[u64],
    rng: &mut R,
) -> Vec<u64> {
    let n: u64 = item_counts.iter().sum();
    let (p, q) = (params.p(), params.q());
    item_counts
        .iter()
        .map(|&c| sample_binomial(c, p, rng) + sample_binomial(n - c, q, rng))
        .collect()
}

impl Grr {
    /// Samples the aggregate support counts of `item_counts[v]` users per
    /// item `v` in one pass: one keep-vs-uniform binomial per occupied
    /// item, then a single pooled uniform multinomial over the domain.
    ///
    /// # Panics
    /// Panics if `item_counts.len()` differs from the domain size.
    pub fn batch_support_counts<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Vec<u64> {
        let d = self.domain().size();
        assert_eq!(item_counts.len(), d, "item counts must cover the domain");
        // Mixture weight of "report the true item verbatim". λ > 0 for
        // every ε > 0 (q·d = d/(d−1+e^ε) < 1); the max(0) guards f64 dust.
        let lambda = (1.0 - self.params().q() * d as f64).max(0.0);
        let mut counts = vec![0u64; d];
        let mut pooled_uniform = 0u64;
        for (v, &c) in item_counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let kept = sample_binomial(c, lambda, rng);
            counts[v] += kept;
            pooled_uniform += c - kept;
        }
        add_multinomial_uniform(pooled_uniform, &mut counts, rng);
        counts
    }
}

impl Oue {
    /// Samples the aggregate support counts column-wise: bit `v` is set by
    /// `Binomial(c_v, p) + Binomial(n − c_v, q)` reporters.
    ///
    /// # Panics
    /// Panics if `item_counts.len()` differs from the domain size.
    pub fn batch_support_counts<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Vec<u64> {
        assert_eq!(
            item_counts.len(),
            self.domain().size(),
            "item counts must cover the domain"
        );
        unary_batch_support_counts(self.params(), item_counts, rng)
    }
}

impl Sue {
    /// Samples the aggregate support counts column-wise (same independence
    /// structure as [`Oue::batch_support_counts`], SUE's `(p, q)`).
    ///
    /// # Panics
    /// Panics if `item_counts.len()` differs from the domain size.
    pub fn batch_support_counts<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Vec<u64> {
        assert_eq!(
            item_counts.len(),
            self.domain().size(),
            "item counts must cover the domain"
        );
        unary_batch_support_counts(self.params(), item_counts, rng)
    }
}

impl HadamardResponse {
    /// Samples the aggregate support counts via a column histogram: per
    /// occupied item, a binomial splits row-targeted vs pooled-uniform
    /// reports; the histogram then folds into per-item support counts.
    ///
    /// # Panics
    /// Panics if `item_counts.len()` differs from the domain size.
    pub fn batch_support_counts<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Vec<u64> {
        self.batch_support_counts_with(item_counts, rng, &mut HrScratch::default())
    }

    /// [`HadamardResponse::batch_support_counts`] with caller-owned
    /// scratch — same RNG draws in the same order, bitwise-identical
    /// counts, zero transform allocations when `scratch` is reused.
    ///
    /// # Panics
    /// Panics if `item_counts.len()` differs from the domain size.
    pub fn batch_support_counts_with<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
        scratch: &mut HrScratch,
    ) -> Vec<u64> {
        let d = self.domain().size();
        assert_eq!(item_counts.len(), d, "item counts must cover the domain");
        let k = self.order() as usize;
        // Mixture weight of "uniform over the K/2 positive columns of the
        // user's row"; the complement is uniform over all K columns.
        // Valid because p = e^ε/(1+e^ε) > ½ for every ε > 0.
        let lambda = (2.0 * self.params().p() - 1.0).max(0.0);
        scratch.col_counts.clear();
        scratch.col_counts.resize(k, 0);
        let mut pooled_uniform = 0u64;
        for (item, &c) in item_counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let targeted = sample_binomial(c, lambda, rng);
            pooled_uniform += c - targeted;
            if targeted == 0 {
                continue;
            }
            // Branchless enumeration of the row's K/2 positive columns,
            // ascending — the same order the old `filter` produced, so
            // the multinomial scatter consumes identical draws.
            positive_columns_into(self.row_of(item), k, &mut scratch.positives);
            scratch.split.clear();
            scratch.split.resize(scratch.positives.len(), 0);
            add_multinomial_uniform(targeted, &mut scratch.split, rng);
            for (&col, &extra) in scratch.positives.iter().zip(&scratch.split) {
                scratch.col_counts[col as usize] += extra;
            }
        }
        add_multinomial_uniform(pooled_uniform, &mut scratch.col_counts, rng);
        // C(w) = Σ_y h_y · [had⁺(row_w, y)] = (N + (H·h)[row_w]) / 2,
        // one FWHT (O(K log K)) instead of the O(d·K) per-item filter
        // sums. Integer-exact: N + (H·h)[x] is a sum of even terms.
        let total: i64 = scratch.col_counts.iter().map(|&c| c as i64).sum();
        scratch.fwht.clear();
        scratch
            .fwht
            .extend(scratch.col_counts.iter().map(|&c| c as i64));
        fwht_i64(&mut scratch.fwht);
        (0..d)
            .map(|w| ((total + scratch.fwht[self.row_of(w) as usize]) / 2) as u64)
            .collect()
    }
}

impl Olh {
    /// Samples the aggregate support counts in closed form, `O(d)` — two
    /// binomials per item instead of `n` per-user reports with `O(d)` hash
    /// evaluations each.
    ///
    /// GRR over the hashed range is the mixture
    /// `λ·δ_{h(v)} + (1−λ)·Uniform(g)` with `λ = (p·g − 1)/(g − 1)`. A
    /// λ-branch report of a `v`-holder supports `v` deterministically;
    /// every other report supports `v` with probability `q = 1/g` exactly
    /// (both mixture branches collide with `h(v)` at rate `1/g` under hash
    /// uniformity). Hence per item:
    /// `C(v) = k_v + Binomial(n − k_v, 1/g)`, `k_v ~ Binomial(c_v, λ)`.
    ///
    /// Per-item marginals are exact: mean `c_v·p + (n−c_v)·q` and variance
    /// `c_v·p(1−p) + (n−c_v)·q(1−q)`, identical to the per-user loop
    /// (differential-tested in `tests/batched_aggregation.rs`). The one
    /// idealization is *cross-item*: within a single report, two items
    /// colliding under the same hash function support together, a
    /// covariance this sampler drops. The estimator and every recovery arm
    /// consume the counts item-wise, so expectations of all downstream
    /// metrics are unchanged.
    ///
    /// # Panics
    /// Panics if `item_counts.len()` differs from the domain size.
    pub fn batch_support_counts<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Vec<u64> {
        let d = self.domain().size();
        assert_eq!(item_counts.len(), d, "item counts must cover the domain");
        let n: u64 = item_counts.iter().sum();
        let g = f64::from(self.range());
        // λ > 0 for every ε > 0 (p > 1/g exactly when e^ε > 1); the max(0)
        // guards f64 dust at tiny ε.
        let lambda = ((self.params().p() * g - 1.0) / (g - 1.0)).max(0.0);
        let q = self.params().q();
        let mut counts = vec![0u64; d];
        for (slot, &c) in counts.iter_mut().zip(item_counts) {
            let kept = sample_binomial(c, lambda, rng);
            *slot = kept + sample_binomial(n - kept, q, rng);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulate::CountAccumulator;
    use crate::report::ProtocolKind;
    use ldp_common::rng::rng_from_seed;
    use ldp_common::Domain;

    /// A small skewed population over `d` items, `n` users total.
    fn population(d: usize, n: u64) -> Vec<u64> {
        let mut counts = vec![0u64; d];
        let mut remaining = n;
        for slot in &mut counts {
            let c = (remaining / 2).max(1).min(remaining);
            *slot = c;
            remaining -= c;
            if remaining == 0 {
                break;
            }
        }
        counts
    }

    fn per_user_counts(
        kind: ProtocolKind,
        epsilon: f64,
        item_counts: &[u64],
        rng: &mut impl rand::Rng,
    ) -> Vec<u64> {
        let domain = Domain::new(item_counts.len()).unwrap();
        let protocol = kind.build(epsilon, domain).unwrap();
        let mut acc = CountAccumulator::new(domain);
        for (item, &c) in item_counts.iter().enumerate() {
            for _ in 0..c {
                let r = protocol.perturb(item, rng);
                acc.add(&protocol, &r);
            }
        }
        acc.counts().to_vec()
    }

    #[test]
    fn batched_counts_total_is_bounded_by_support_geometry() {
        // GRR: exactly one supported item per report. OUE/SUE/HR/OLH: at
        // most d per report. Totals must respect that.
        let d = 24;
        let n = 10_000u64;
        let item_counts = population(d, n);
        let domain = Domain::new(d).unwrap();
        let mut rng = rng_from_seed(1);
        for kind in ProtocolKind::EXTENDED {
            let protocol = kind.build(0.5, domain).unwrap();
            let counts = protocol
                .batch_aggregate(&item_counts, &mut rng)
                .expect("all enum protocols support batching");
            assert_eq!(counts.len(), d);
            let total: u64 = counts.iter().sum();
            match kind {
                ProtocolKind::Grr => assert_eq!(total, n, "{kind}"),
                _ => assert!(total <= n * d as u64, "{kind}"),
            }
        }
    }

    #[test]
    fn batched_is_deterministic_per_seed() {
        let d = 16;
        let item_counts = population(d, 5_000);
        let domain = Domain::new(d).unwrap();
        for kind in ProtocolKind::EXTENDED {
            let protocol = kind.build(1.0, domain).unwrap();
            let a = protocol
                .batch_aggregate(&item_counts, &mut rng_from_seed(7))
                .unwrap();
            let b = protocol
                .batch_aggregate(&item_counts, &mut rng_from_seed(7))
                .unwrap();
            assert_eq!(a, b, "{kind}");
            let c = protocol
                .batch_aggregate(&item_counts, &mut rng_from_seed(8))
                .unwrap();
            assert_ne!(a, c, "{kind}: distinct seeds must differ");
        }
    }

    #[test]
    fn batched_matches_per_user_in_mean_and_variance() {
        // The statistical-equivalence contract: for every protocol, the
        // batched sampler and the per-user loop draw from the *same*
        // distribution. Per item, E[C(v)] = c_v·p + (n−c_v)·q and (users
        // independent) Var[C(v)] = c_v·p(1−p) + (n−c_v)·q(1−q); both paths
        // must sit within 6σ of the analytic mean, and their sample
        // variances within 8·se of the analytic variance.
        let d = 12;
        let n = 4_000u64;
        let item_counts = population(d, n);
        let domain = Domain::new(d).unwrap();
        let reps = 220usize;
        for kind in ProtocolKind::EXTENDED {
            let protocol = kind.build(0.8, domain).unwrap();
            let params = protocol.params();
            let (p, q) = (params.p(), params.q());

            let mut rng = rng_from_seed(100);
            let mut batched_sum = vec![0.0f64; d];
            let mut batched_sq = vec![0.0f64; d];
            let mut user_sum = vec![0.0f64; d];
            let mut user_sq = vec![0.0f64; d];
            for _ in 0..reps {
                let b = protocol.batch_aggregate(&item_counts, &mut rng).unwrap();
                let u = per_user_counts(kind, 0.8, &item_counts, &mut rng);
                for v in 0..d {
                    batched_sum[v] += b[v] as f64;
                    batched_sq[v] += (b[v] as f64).powi(2);
                    user_sum[v] += u[v] as f64;
                    user_sq[v] += (u[v] as f64).powi(2);
                }
            }

            for v in 0..d {
                let c = item_counts[v] as f64;
                let expect_mean = c * p + (n as f64 - c) * q;
                let expect_var = c * p * (1.0 - p) + (n as f64 - c) * q * (1.0 - q);
                let mean_tol = 6.0 * (expect_var / reps as f64).sqrt();
                let var_tol = 8.0 * expect_var * (2.0 / reps as f64).sqrt();
                for (label, sum, sq) in [
                    ("batched", &batched_sum, &batched_sq),
                    ("per-user", &user_sum, &user_sq),
                ] {
                    let mean = sum[v] / reps as f64;
                    let var = sq[v] / reps as f64 - mean * mean;
                    assert!(
                        (mean - expect_mean).abs() < mean_tol,
                        "{kind} {label} item {v}: mean={mean}, expect={expect_mean}"
                    );
                    assert!(
                        (var - expect_var).abs() < var_tol,
                        "{kind} {label} item {v}: var={var}, expect={expect_var}"
                    );
                }
            }
        }
    }

    #[test]
    fn grr_batched_mixture_is_exactly_the_kernel() {
        // Single-occupied-item population: the batched GRR marginal at the
        // true item must be Binomial(n, p), at any other item
        // Binomial-mean n·q. Checked via tight mean bounds.
        let d = 10;
        let n = 2_000u64;
        let mut item_counts = vec![0u64; d];
        item_counts[3] = n;
        let grr = Grr::new(0.7, Domain::new(d).unwrap()).unwrap();
        let (p, q) = (grr.params().p(), grr.params().q());
        let reps = 400usize;
        let mut rng = rng_from_seed(5);
        let mut sums = vec![0.0f64; d];
        for _ in 0..reps {
            for (s, c) in sums
                .iter_mut()
                .zip(grr.batch_support_counts(&item_counts, &mut rng))
            {
                *s += c as f64;
            }
        }
        for (v, &s) in sums.iter().enumerate() {
            let mean = s / reps as f64;
            let target = if v == 3 { n as f64 * p } else { n as f64 * q };
            let var = if v == 3 {
                n as f64 * p * (1.0 - p)
            } else {
                n as f64 * q * (1.0 - q)
            };
            let tol = 6.0 * (var / reps as f64).sqrt();
            assert!((mean - target).abs() < tol, "item {v}: {mean} vs {target}");
        }
    }

    #[test]
    fn every_enum_protocol_is_closed_form() {
        // The trait signal must be truthful: `is_closed_form()` iff
        // `batch_aggregate` returns `Some` — and since the OLH λ-split
        // sampler, all five enum protocols are genuinely closed-form.
        let domain = Domain::new(8).unwrap();
        let mut rng = rng_from_seed(3);
        for kind in ProtocolKind::EXTENDED {
            let protocol = kind.build(0.5, domain).unwrap();
            assert!(protocol.is_closed_form(), "{kind}");
            assert_eq!(
                protocol.is_closed_form(),
                protocol.batch_aggregate(&[1; 8], &mut rng).is_some(),
                "{kind}: signal out of sync with batch_aggregate"
            );
        }
    }

    #[test]
    fn olh_closed_form_mixture_is_exactly_the_kernel() {
        // Single-occupied-item population: the OLH marginal at the true
        // item must have mean n·p and variance n·p(1−p); at any other
        // item mean n·q, variance n·q(1−q). The closed-form sampler is
        // O(d), so a high rep count is cheap.
        let d = 10;
        let n = 2_000u64;
        let mut item_counts = vec![0u64; d];
        item_counts[3] = n;
        let olh = Olh::new(0.7, Domain::new(d).unwrap()).unwrap();
        let (p, q) = (olh.params().p(), olh.params().q());
        let reps = 600usize;
        let mut rng = rng_from_seed(6);
        let mut sums = vec![0.0f64; d];
        let mut sqs = vec![0.0f64; d];
        for _ in 0..reps {
            for ((s, sq), c) in sums
                .iter_mut()
                .zip(sqs.iter_mut())
                .zip(olh.batch_support_counts(&item_counts, &mut rng))
            {
                *s += c as f64;
                *sq += (c as f64).powi(2);
            }
        }
        for v in 0..d {
            let (mp, vp) = if v == 3 { (p, p) } else { (q, q) };
            let target = n as f64 * mp;
            let var_target = n as f64 * vp * (1.0 - vp);
            let mean = sums[v] / reps as f64;
            let var = sqs[v] / reps as f64 - mean * mean;
            let mean_tol = 6.0 * (var_target / reps as f64).sqrt();
            assert!(
                (mean - target).abs() < mean_tol,
                "item {v}: mean {mean} vs {target}"
            );
            let var_tol = 8.0 * var_target * (2.0 / reps as f64).sqrt();
            assert!(
                (var - var_target).abs() < var_tol,
                "item {v}: var {var} vs {var_target}"
            );
        }
    }

    #[test]
    fn batched_rejects_wrong_domain_shape() {
        let domain = Domain::new(8).unwrap();
        let grr = Grr::new(0.5, domain).unwrap();
        let result = std::panic::catch_unwind(|| {
            let mut rng = rng_from_seed(1);
            grr.batch_support_counts(&[1, 2, 3], &mut rng)
        });
        assert!(result.is_err(), "shape mismatch must panic");
    }
}
