//! Symmetric Unary Encoding (SUE) — basic RAPPOR (Erlingsson et al., CCS
//! 2014), included as an extension beyond the paper's protocol trio.
//!
//! Like OUE, each user one-hot-encodes her item; unlike OUE, both bit
//! states share one keep-probability: the true bit stays 1 with
//! `p = e^{ε/2}/(1 + e^{ε/2})` and every other bit flips to 1 with
//! `q = 1 − p = 1/(1 + e^{ε/2})`. OUE dominates SUE in variance — that is
//! the "optimized" in its name — which makes SUE a useful ablation point:
//! every attack and the entire LDPRecover stack apply unchanged because
//! SUE is a pure protocol with the same report shape as OUE.

use ldp_common::rng::FastBernoulli;
use ldp_common::{BitVec, Domain, Result};
use rand::Rng;

use crate::params::{check_epsilon, PureParams};
use crate::traits::LdpFrequencyProtocol;

/// The SUE protocol instance for a fixed `(ε, D)`.
#[derive(Debug, Clone, Copy)]
pub struct Sue {
    domain: Domain,
    epsilon: f64,
    params: PureParams,
    one_bit: FastBernoulli,
    zero_bit: FastBernoulli,
}

impl Sue {
    /// Builds SUE for privacy budget `epsilon` over `domain`.
    ///
    /// # Errors
    /// Propagates ε / probability validation failures.
    pub fn new(epsilon: f64, domain: Domain) -> Result<Self> {
        check_epsilon(epsilon)?;
        let half = (epsilon / 2.0).exp();
        let p = half / (1.0 + half);
        let q = 1.0 - p;
        let params = PureParams::new(p, q, domain)?;
        Ok(Self {
            domain,
            epsilon,
            params,
            one_bit: FastBernoulli::new(p),
            zero_bit: FastBernoulli::new(q),
        })
    }

    /// Expected number of set bits in a genuine report: `p + (d−1)·q`.
    pub fn expected_ones(&self) -> f64 {
        self.params.p() + (self.domain.size() as f64 - 1.0) * self.params.q()
    }
}

impl LdpFrequencyProtocol for Sue {
    type Report = BitVec;

    fn name(&self) -> &'static str {
        "SUE"
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn params(&self) -> PureParams {
        self.params
    }

    fn perturb<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> BitVec {
        debug_assert!(self.domain.contains(item), "item {item} out of domain");
        let d = self.domain.size();
        let mut bits = BitVec::zeros(d);
        for v in 0..d {
            let on = if v == item {
                self.one_bit.sample(rng)
            } else {
                self.zero_bit.sample(rng)
            };
            if on {
                bits.set_one(v);
            }
        }
        bits
    }

    fn encode_clean<R: Rng + ?Sized>(&self, item: usize, _rng: &mut R) -> BitVec {
        debug_assert!(self.domain.contains(item), "item {item} out of domain");
        let mut bits = BitVec::zeros(self.domain.size());
        bits.set_one(item);
        bits
    }

    #[inline]
    fn supports(&self, report: &BitVec, v: usize) -> bool {
        report.get(v)
    }

    fn accumulate(&self, report: &BitVec, counts: &mut [u64]) {
        debug_assert_eq!(counts.len(), self.domain.size());
        for v in report.iter_ones() {
            counts[v] += 1;
        }
    }

    fn batch_aggregate<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Option<Vec<u64>> {
        Some(self.batch_support_counts(item_counts, rng))
    }

    fn is_closed_form(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oue::Oue;
    use ldp_common::rng::rng_from_seed;

    fn sue(eps: f64, d: usize) -> Sue {
        Sue::new(eps, Domain::new(d).unwrap()).unwrap()
    }

    #[test]
    fn probabilities_are_symmetric_rappor() {
        let s = sue(1.0, 32);
        let half = 0.5f64.exp();
        assert!((s.params().p() - half / (1.0 + half)).abs() < 1e-15);
        assert!((s.params().p() + s.params().q() - 1.0).abs() < 1e-15);
        // ε-LDP for unary encodings holds at ε/2 per bit pair:
        // (p/q)² = e^ε.
        let ratio = s.params().p() / s.params().q();
        assert!((ratio * ratio - 1.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn oue_dominates_sue_in_variance() {
        // The reason OUE exists (Wang et al. 2017): strictly lower variance
        // at equal ε for reasonable budgets.
        let domain = Domain::new(100).unwrap();
        for &eps in &[0.5f64, 1.0, 2.0] {
            let sue = Sue::new(eps, domain).unwrap();
            let oue = Oue::new(eps, domain).unwrap();
            let vs = sue.params().variance_frequency(0.01, 10_000);
            let vo = oue.params().variance_frequency(0.01, 10_000);
            assert!(vo < vs, "eps={eps}: OUE {vo} !< SUE {vs}");
        }
    }

    #[test]
    fn estimates_are_unbiased() {
        let s = sue(1.0, 8);
        let mut rng = rng_from_seed(1);
        let n = 40_000;
        let mut counts = vec![0u64; 8];
        for _ in 0..n {
            let r = s.perturb(3, &mut rng);
            s.accumulate(&r, &mut counts);
        }
        let freqs = s.params().debias_frequencies(&counts, n).unwrap();
        let sigma = s.params().variance_frequency(1.0, n).sqrt();
        assert!((freqs[3] - 1.0).abs() < 6.0 * sigma, "f={}", freqs[3]);
        for (v, &f) in freqs.iter().enumerate() {
            if v != 3 {
                let sigma0 = s.params().variance_frequency(0.0, n).sqrt();
                assert!(f.abs() < 6.0 * sigma0, "item {v}: f={f}");
            }
        }
    }

    #[test]
    fn clean_encoding_is_one_hot() {
        let s = sue(0.5, 16);
        let mut rng = rng_from_seed(2);
        let r = s.encode_clean(9, &mut rng);
        assert_eq!(r.count_ones(), 1);
        assert!(s.supports(&r, 9));
    }

    #[test]
    fn expected_ones_exceeds_oue() {
        // SUE's q is larger than OUE's at ε = 0.5, so genuine SUE reports
        // are denser.
        let domain = Domain::new(100).unwrap();
        let s = Sue::new(0.5, domain).unwrap();
        let o = Oue::new(0.5, domain).unwrap();
        assert!(s.expected_ones() > o.expected_ones());
    }
}
