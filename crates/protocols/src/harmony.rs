//! Harmony mean estimation over `[−1, 1]` (Nguyên et al. 2016), the case
//! study of the paper's §VII-A: an aggregation function that decomposes into
//! binary frequency estimation, and therefore inherits LDPRecover's
//! recovery guarantees.
//!
//! Each user discretizes her value `x ∈ [−1, 1]` into a bit
//! (`1` with probability `(1+x)/2`, else `0` ≙ `−1`), perturbs the bit with
//! binary randomized response, and reports it. The server estimates the
//! frequency `f₁` of bit `1` with the standard pure-protocol debiasing and
//! converts back: `mean = 2·f₁ − 1`.

use ldp_common::rng::FastBernoulli;
use ldp_common::{LdpError, Result};
use rand::Rng;

use crate::rr::BinaryRandomizedResponse;
use crate::traits::LdpFrequencyProtocol;

/// Harmony single-attribute mean estimation.
#[derive(Debug, Clone, Copy)]
pub struct Harmony {
    rr: BinaryRandomizedResponse,
}

impl Harmony {
    /// Builds Harmony for privacy budget `epsilon`.
    ///
    /// # Errors
    /// Propagates ε validation failures.
    pub fn new(epsilon: f64) -> Result<Self> {
        Ok(Self {
            rr: BinaryRandomizedResponse::new(epsilon)?,
        })
    }

    /// The underlying binary randomized response protocol; LDPRecover
    /// operates on this frequency-estimation view.
    pub fn rr(&self) -> &BinaryRandomizedResponse {
        &self.rr
    }

    /// Client side: discretize + perturb one value.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when `x ∉ [−1, 1]`.
    pub fn perturb_value<R: Rng + ?Sized>(&self, x: f64, rng: &mut R) -> Result<bool> {
        if !(-1.0..=1.0).contains(&x) {
            return Err(LdpError::invalid(format!(
                "Harmony input must lie in [-1, 1], got {x}"
            )));
        }
        let bit = FastBernoulli::new((1.0 + x) / 2.0).sample(rng);
        Ok(self.rr.perturb_bit(bit, rng))
    }

    /// Server side: mean estimate from bit counts
    /// `counts = [#zeros, #ones]`.
    ///
    /// # Errors
    /// Propagates debiasing validation (wrong shape / zero reports).
    pub fn estimate_mean(&self, counts: &[u64], total_reports: usize) -> Result<f64> {
        let freqs = self.rr.params().debias_frequencies(counts, total_reports)?;
        Ok(Self::frequencies_to_mean(&freqs))
    }

    /// Converts a (possibly post-processed) binary frequency vector
    /// `[f₀, f₁]` into the mean estimate `2·f₁ − 1`.
    ///
    /// This is the hook LDPRecover uses: recover the binary frequencies
    /// first, then map back to the mean.
    pub fn frequencies_to_mean(freqs: &[f64]) -> f64 {
        assert_eq!(freqs.len(), 2, "Harmony frequency vector must be binary");
        2.0 * freqs[1] - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    #[test]
    fn rejects_out_of_range_inputs() {
        let h = Harmony::new(1.0).unwrap();
        let mut rng = rng_from_seed(1);
        assert!(h.perturb_value(1.5, &mut rng).is_err());
        assert!(h.perturb_value(-1.01, &mut rng).is_err());
        assert!(h.perturb_value(f64::NAN, &mut rng).is_err());
        assert!(h.perturb_value(1.0, &mut rng).is_ok());
        assert!(h.perturb_value(-1.0, &mut rng).is_ok());
    }

    #[test]
    fn mean_estimate_is_unbiased() {
        let h = Harmony::new(1.0).unwrap();
        let mut rng = rng_from_seed(2);
        let n = 400_000usize;
        let true_mean = 0.3;
        let mut counts = [0u64; 2];
        for _ in 0..n {
            // All users hold x = 0.3 exactly.
            let bit = h.perturb_value(true_mean, &mut rng).unwrap();
            counts[usize::from(bit)] += 1;
        }
        let est = h.estimate_mean(&counts, n).unwrap();
        // σ of the mean estimate ≈ 2·σ_f1; generous 6σ bound.
        let sigma = 2.0 * h.rr().params().variance_frequency(0.65, n).sqrt();
        assert!(
            (est - true_mean).abs() < 6.0 * sigma,
            "est={est}, true={true_mean}"
        );
    }

    #[test]
    fn extreme_values_map_to_extreme_means() {
        let h = Harmony::new(2.0).unwrap();
        // With f1 = 1 the mean is exactly 1; with f1 = 0 it is −1.
        assert_eq!(Harmony::frequencies_to_mean(&[0.0, 1.0]), 1.0);
        assert_eq!(Harmony::frequencies_to_mean(&[1.0, 0.0]), -1.0);
        assert_eq!(Harmony::frequencies_to_mean(&[0.5, 0.5]), 0.0);
        let _ = h;
    }
}
