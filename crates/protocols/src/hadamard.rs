//! Hadamard Response (Acharya, Sun & Zhang, 2019) — extension protocol.
//!
//! The user's item indexes a row of the implicit `K × K` Sylvester-Hadamard
//! matrix (`K` = smallest power of two > `d`; entry `had(x, y) = (−1)^{
//! popcount(x & y)}`). She reports a column index `y`: with probability
//! `p = e^ε/(1+e^ε)` a uniform column where her row is `+1`, otherwise a
//! uniform column where it is `−1`.
//!
//! This is a *pure* protocol with an unusual support geometry: a report
//! supports the `≈ d/2` items whose rows are `+1` at the reported column,
//! giving support probabilities `p = e^ε/(1+e^ε)` (true item) and exactly
//! `q = 1/2` (any other item, by row orthogonality). Communication is
//! `log₂ K` bits — far below OUE's `d` — at GRR-free variance, which is
//! why HR matters in the LDP literature and why it makes a good
//! stress-test for LDPRecover: the malicious-sum constant
//! `(1 − q·d)/(p − q)` is *large and negative* here (q = 1/2), like OUE.
//!
//! Rows are indexed by `item + 1` so that row 0 (all `+1`, which carries
//! no signal) is never used; this requires `K > d`.

use ldp_common::kernels::{add_even_parity, fwht_i64};
use ldp_common::rng::{uniform_index, FastBernoulli};
use ldp_common::{Domain, LdpError, Result};
use rand::Rng;

use crate::params::{check_epsilon, PureParams};
use crate::traits::LdpFrequencyProtocol;

/// Sylvester-Hadamard entry: `+1` iff `popcount(x & y)` is even.
#[inline(always)]
pub fn hadamard_positive(x: u32, y: u32) -> bool {
    (x & y).count_ones().is_multiple_of(2)
}

/// The Hadamard Response protocol instance for a fixed `(ε, D)`.
#[derive(Debug, Clone, Copy)]
pub struct HadamardResponse {
    domain: Domain,
    epsilon: f64,
    /// Matrix order `K` (power of two, `K > d`).
    k: u32,
    params: PureParams,
    keep_true: FastBernoulli,
}

impl HadamardResponse {
    /// Builds HR for privacy budget `epsilon` over `domain`.
    ///
    /// # Errors
    /// Propagates ε validation; fails for domains above `2³¹ − 1` items
    /// (the implicit matrix index must fit `u32`).
    pub fn new(epsilon: f64, domain: Domain) -> Result<Self> {
        check_epsilon(epsilon)?;
        let d = domain.size();
        if d >= (1usize << 31) {
            return Err(LdpError::invalid("HR supports domains below 2^31 items"));
        }
        // K = smallest power of two strictly greater than d (rows 1..=d).
        let k = (d as u32 + 1).next_power_of_two().max(2);
        let e_eps = epsilon.exp();
        let p = e_eps / (1.0 + e_eps);
        // Any non-true row is +1 at exactly half the columns of either
        // half-space (orthogonality) ⇒ support probability exactly 1/2.
        let params = PureParams::new(p, 0.5, domain)?;
        Ok(Self {
            domain,
            epsilon,
            k,
            params,
            keep_true: FastBernoulli::new(p),
        })
    }

    /// The implicit Hadamard order `K`.
    #[inline]
    pub fn order(&self) -> u32 {
        self.k
    }

    /// The matrix row assigned to `item` (row 0 is reserved).
    #[inline]
    pub fn row_of(&self, item: usize) -> u32 {
        debug_assert!(self.domain.contains(item));
        item as u32 + 1
    }

    /// Adds the support counts of a whole batch of reported columns in
    /// one transform: builds the `K`-column histogram `h`, applies the
    /// fast Walsh–Hadamard transform, and reads off
    /// `C(w) += (N + (H·h)[row_w]) / 2` — `O(N + K log K)` instead of the
    /// per-report scatter's `O(N·d)`.
    ///
    /// Exact integer arithmetic throughout: `N + (H·h)[x] = Σ_y h_y·(1 +
    /// had(x, y))` is a sum of even non-negative terms, so the halving is
    /// exact and the result is bitwise identical to looping
    /// [`LdpFrequencyProtocol::accumulate`].
    ///
    /// # Panics
    /// Panics if a column is outside `0..K` or `counts.len() != d`.
    pub fn accumulate_columns<I>(&self, columns: I, counts: &mut [u64])
    where
        I: IntoIterator<Item = u32>,
    {
        assert_eq!(counts.len(), self.domain.size());
        let mut hist = vec![0i64; self.k as usize];
        let mut total = 0i64;
        for y in columns {
            hist[y as usize] += 1;
            total += 1;
        }
        fwht_i64(&mut hist);
        for (w, c) in counts.iter_mut().enumerate() {
            *c += ((total + hist[w + 1]) / 2) as u64;
        }
    }

    /// Samples a uniform column where `row` has the requested sign.
    ///
    /// Exactly half of the `K` columns qualify for any nonzero row, so
    /// rejection sampling terminates in 2 expected draws.
    fn sample_column<R: Rng + ?Sized>(&self, row: u32, positive: bool, rng: &mut R) -> u32 {
        loop {
            let y = uniform_index(rng, self.k as usize) as u32;
            if hadamard_positive(row, y) == positive {
                return y;
            }
        }
    }
}

impl LdpFrequencyProtocol for HadamardResponse {
    type Report = u32;

    fn name(&self) -> &'static str {
        "HR"
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn params(&self) -> PureParams {
        self.params
    }

    fn perturb<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> u32 {
        debug_assert!(self.domain.contains(item), "item {item} out of domain");
        let row = self.row_of(item);
        let positive = self.keep_true.sample(rng);
        self.sample_column(row, positive, rng)
    }

    fn encode_clean<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> u32 {
        debug_assert!(self.domain.contains(item), "item {item} out of domain");
        // The clean encoding is a (uniform) column supporting the item.
        self.sample_column(self.row_of(item), true, rng)
    }

    #[inline]
    fn supports(&self, report: &u32, v: usize) -> bool {
        hadamard_positive(self.row_of(v), *report)
    }

    fn accumulate(&self, report: &u32, counts: &mut [u64]) {
        debug_assert_eq!(counts.len(), self.domain.size());
        // Branchless parity scatter (item v owns row v + 1).
        add_even_parity(*report, 1, counts);
    }

    fn accumulate_all(&self, reports: &[u32], counts: &mut [u64]) {
        self.accumulate_columns(reports.iter().copied(), counts);
    }

    fn batch_aggregate<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Option<Vec<u64>> {
        Some(self.batch_support_counts(item_counts, rng))
    }

    fn is_closed_form(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    fn hr(eps: f64, d: usize) -> HadamardResponse {
        HadamardResponse::new(eps, Domain::new(d).unwrap()).unwrap()
    }

    #[test]
    fn order_is_smallest_power_of_two_above_d() {
        assert_eq!(hr(1.0, 3).order(), 4);
        assert_eq!(hr(1.0, 4).order(), 8); // rows 1..=4 need K > 4
        assert_eq!(hr(1.0, 102).order(), 128);
        assert_eq!(hr(1.0, 490).order(), 512);
    }

    #[test]
    fn hadamard_entries_match_small_matrix() {
        // The 4×4 Sylvester matrix: H[x][y] = (−1)^{popcount(x & y)}.
        let expect = [
            [true, true, true, true],
            [true, false, true, false],
            [true, true, false, false],
            [true, false, false, true],
        ];
        for x in 0..4u32 {
            for y in 0..4u32 {
                assert_eq!(
                    hadamard_positive(x, y),
                    expect[x as usize][y as usize],
                    "x={x}, y={y}"
                );
            }
        }
    }

    #[test]
    fn rows_are_balanced_and_orthogonal() {
        let k = 64u32;
        for row in 1..k {
            let positives = (0..k).filter(|&y| hadamard_positive(row, y)).count();
            assert_eq!(positives, 32, "row {row} not balanced");
        }
        // Orthogonality ⇒ any two distinct nonzero rows agree at exactly
        // half the columns.
        for (a, b) in [(1u32, 2u32), (3, 7), (5, 60)] {
            let agree = (0..k)
                .filter(|&y| hadamard_positive(a, y) == hadamard_positive(b, y))
                .count();
            assert_eq!(agree, 32, "rows {a},{b}");
        }
    }

    #[test]
    fn support_probabilities_match_params() {
        let h = hr(1.0, 20);
        let mut rng = rng_from_seed(1);
        let n = 120_000;
        let mut true_hits = 0usize;
        let mut other_hits = 0usize;
        for _ in 0..n {
            let r = h.perturb(5, &mut rng);
            if h.supports(&r, 5) {
                true_hits += 1;
            }
            if h.supports(&r, 11) {
                other_hits += 1;
            }
        }
        let p = h.params().p();
        let tol = 5.0 * (0.25_f64 / n as f64).sqrt();
        assert!(((true_hits as f64 / n as f64) - p).abs() < tol);
        assert!(((other_hits as f64 / n as f64) - 0.5).abs() < tol);
    }

    #[test]
    fn estimates_are_unbiased() {
        let h = hr(1.0, 8);
        let mut rng = rng_from_seed(2);
        let n = 60_000usize;
        let mut counts = vec![0u64; 8];
        for i in 0..n {
            let item = if i % 2 == 0 { 3 } else { 6 };
            let r = h.perturb(item, &mut rng);
            h.accumulate(&r, &mut counts);
        }
        let freqs = h.params().debias_frequencies(&counts, n).unwrap();
        for (v, &truth) in [0.0, 0.0, 0.0, 0.5, 0.0, 0.0, 0.5, 0.0].iter().enumerate() {
            let sigma = h.params().variance_frequency(truth, n).sqrt();
            assert!(
                (freqs[v] - truth).abs() < 6.0 * sigma,
                "item {v}: {} vs {truth}",
                freqs[v]
            );
        }
    }

    #[test]
    fn fwht_batch_accumulation_is_bitwise_identical_to_the_loop() {
        // The transform-domain path must agree with the per-report
        // scatter exactly (integer arithmetic, no tolerance) — including
        // non-power-of-two domains where K > d + 1.
        for d in [3usize, 8, 102, 490] {
            let h = hr(0.9, d);
            let mut rng = rng_from_seed(17);
            let reports: Vec<u32> = (0..2_000).map(|i| h.perturb(i % d, &mut rng)).collect();
            let mut looped = vec![0u64; d];
            for r in &reports {
                h.accumulate(r, &mut looped);
            }
            let mut batched = vec![5u64; d]; // nonzero base: must *add*
            h.accumulate_columns(reports.iter().copied(), &mut batched);
            for (b, l) in batched.iter().zip(&looped) {
                assert_eq!(*b, l + 5, "d={d}");
            }
        }
    }

    #[test]
    fn clean_encoding_always_supports_its_item() {
        let h = hr(0.5, 100);
        let mut rng = rng_from_seed(3);
        for item in [0usize, 42, 99] {
            let r = h.encode_clean(item, &mut rng);
            assert!(h.supports(&r, item));
        }
    }

    #[test]
    fn communication_is_logarithmic() {
        // The report is one column index: ⌈log₂ K⌉ bits, versus d bits for
        // OUE — the protocol's raison d'être.
        let h = hr(0.5, 490);
        assert!(f64::from(h.order()).log2() <= 9.0 + f64::EPSILON);
    }

    #[test]
    fn privacy_ratio_is_e_epsilon() {
        // P[y | v supports y] / P[y | w ¬supports y] = p/(1−p) = e^ε.
        for eps in [0.5f64, 1.0, 2.0] {
            let h = hr(eps, 16);
            let p = h.params().p();
            assert!(((p / (1.0 - p)) - eps.exp()).abs() < 1e-9);
        }
    }
}
