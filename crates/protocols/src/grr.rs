//! Generalized Randomized Response (paper §III-B, Eq. (2)–(4)).
//!
//! Each user reports her true item with probability `p = e^ε/(d−1+e^ε)` and
//! any *specific* other item with probability `q = 1/(d−1+e^ε)`. A report
//! supports exactly the single item it names, so the support probabilities
//! coincide with the perturbation probabilities.

use ldp_common::rng::{uniform_index, FastBernoulli};
use ldp_common::{Domain, Result};
use rand::Rng;

use crate::params::{check_epsilon, PureParams};
use crate::traits::LdpFrequencyProtocol;

/// The GRR protocol instance for a fixed `(ε, D)`.
#[derive(Debug, Clone, Copy)]
pub struct Grr {
    domain: Domain,
    epsilon: f64,
    params: PureParams,
    keep_true: FastBernoulli,
}

impl Grr {
    /// Builds GRR for privacy budget `epsilon` over `domain`.
    ///
    /// # Errors
    /// Propagates parameter validation failures (ε ≤ 0; degenerate domains
    /// where `p = q`, which happens only for `d = 1`... never, since
    /// `p/q = e^ε > 1` whenever ε > 0).
    pub fn new(epsilon: f64, domain: Domain) -> Result<Self> {
        check_epsilon(epsilon)?;
        let d = domain.size() as f64;
        let e_eps = epsilon.exp();
        let p = e_eps / (d - 1.0 + e_eps);
        let q = 1.0 / (d - 1.0 + e_eps);
        let params = PureParams::new(p, q, domain)?;
        Ok(Self {
            domain,
            epsilon,
            params,
            keep_true: FastBernoulli::new(p),
        })
    }
}

impl LdpFrequencyProtocol for Grr {
    type Report = u32;

    fn name(&self) -> &'static str {
        "GRR"
    }

    fn domain(&self) -> Domain {
        self.domain
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn params(&self) -> PureParams {
        self.params
    }

    fn perturb<R: Rng + ?Sized>(&self, item: usize, rng: &mut R) -> u32 {
        debug_assert!(self.domain.contains(item), "item {item} out of domain");
        let d = self.domain.size();
        if d == 1 || self.keep_true.sample(rng) {
            return item as u32;
        }
        // Uniform over the d−1 non-true items.
        let r = uniform_index(rng, d - 1);
        (if r >= item { r + 1 } else { r }) as u32
    }

    fn encode_clean<R: Rng + ?Sized>(&self, item: usize, _rng: &mut R) -> u32 {
        debug_assert!(self.domain.contains(item), "item {item} out of domain");
        item as u32
    }

    #[inline]
    fn supports(&self, report: &u32, v: usize) -> bool {
        *report as usize == v
    }

    #[inline]
    fn accumulate(&self, report: &u32, counts: &mut [u64]) {
        debug_assert_eq!(counts.len(), self.domain.size());
        counts[*report as usize] += 1;
    }

    fn batch_aggregate<R: Rng + ?Sized>(
        &self,
        item_counts: &[u64],
        rng: &mut R,
    ) -> Option<Vec<u64>> {
        Some(self.batch_support_counts(item_counts, rng))
    }

    fn is_closed_form(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    fn grr(eps: f64, d: usize) -> Grr {
        Grr::new(eps, Domain::new(d).unwrap()).unwrap()
    }

    #[test]
    fn parameters_match_paper_equation_2() {
        let g = grr(0.5, 102);
        let e = 0.5f64.exp();
        assert!((g.params().p() - e / (101.0 + e)).abs() < 1e-15);
        assert!((g.params().q() - 1.0 / (101.0 + e)).abs() < 1e-15);
        // ε-LDP: p/q = e^ε.
        assert!((g.params().p() / g.params().q() - e).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(Grr::new(0.0, Domain::new(4).unwrap()).is_err());
        assert!(Grr::new(-1.0, Domain::new(4).unwrap()).is_err());
    }

    #[test]
    fn perturb_keeps_true_item_with_probability_p() {
        let g = grr(1.0, 8);
        let mut rng = rng_from_seed(1);
        let n = 200_000;
        let kept = (0..n).filter(|_| g.perturb(5, &mut rng) == 5).count();
        let rate = kept as f64 / n as f64;
        let p = g.params().p();
        let tol = 5.0 * (p * (1.0 - p) / n as f64).sqrt();
        assert!((rate - p).abs() < tol, "rate={rate}, p={p}");
    }

    #[test]
    fn perturb_spreads_uniformly_over_other_items() {
        let g = grr(1.0, 5);
        let mut rng = rng_from_seed(2);
        let n = 250_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[g.perturb(2, &mut rng) as usize] += 1;
        }
        let q = g.params().q();
        for (v, &c) in counts.iter().enumerate() {
            if v == 2 {
                continue;
            }
            let rate = c as f64 / n as f64;
            let tol = 5.0 * (q * (1.0 - q) / n as f64).sqrt();
            assert!((rate - q).abs() < tol, "item {v}: rate={rate}, q={q}");
        }
    }

    #[test]
    fn clean_encoding_is_identity_and_supports_only_itself() {
        let g = grr(0.5, 10);
        let mut rng = rng_from_seed(3);
        let r = g.encode_clean(7, &mut rng);
        assert_eq!(r, 7);
        assert!(g.supports(&r, 7));
        assert!(!g.supports(&r, 6));
        let mut counts = vec![0u64; 10];
        g.accumulate(&r, &mut counts);
        assert_eq!(counts[7], 1);
        assert_eq!(counts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn degenerate_single_item_domain() {
        let g = grr(0.5, 1);
        let mut rng = rng_from_seed(4);
        assert_eq!(g.perturb(0, &mut rng), 0);
    }
}
