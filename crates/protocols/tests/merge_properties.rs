//! Property tests for the shard-merge algebra of [`CountAccumulator`].
//!
//! The streaming ingestion engine (`ldp_sim::stream`) is built on merging
//! per-shard accumulators "at epoch boundaries, in any grouping, on any
//! machine" — which is only sound if merge is a commutative monoid over
//! accumulators of one domain, and if `from_parts` + `merge` conserves
//! both support counts and report counts exactly. These properties gate
//! that algebra over random count vectors and domains.

use ldp_protocols::CountAccumulator;
use proptest::prelude::*;

/// Builds an accumulator from raw parts; reports is derived from the
/// counts so the pair stays internally plausible (not that merge cares).
fn acc(counts: &[u64], reports: usize) -> CountAccumulator {
    CountAccumulator::from_parts(counts.to_vec(), reports)
}

/// `a ∪ b` without mutating the inputs.
fn merged(a: &CountAccumulator, b: &CountAccumulator) -> CountAccumulator {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging is commutative: genuine ∪ malicious == malicious ∪ genuine,
    /// shard 0 ∪ shard 1 == shard 1 ∪ shard 0.
    #[test]
    fn merge_is_commutative(
        counts_a in prop::collection::vec(0u64..10_000, 1..64),
        counts_b in prop::collection::vec(0u64..10_000, 1..64),
        reports_a in 0usize..100_000,
        reports_b in 0usize..100_000,
    ) {
        let d = counts_a.len().min(counts_b.len());
        let a = acc(&counts_a[..d], reports_a);
        let b = acc(&counts_b[..d], reports_b);
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// Merging is associative: shards can fold in any grouping — pairwise
    /// trees, sequential scans, per-machine partials — with identical
    /// results.
    #[test]
    fn merge_is_associative(
        counts_a in prop::collection::vec(0u64..10_000, 1..64),
        counts_b in prop::collection::vec(0u64..10_000, 1..64),
        counts_c in prop::collection::vec(0u64..10_000, 1..64),
        reports in prop::collection::vec(0usize..100_000, 3),
    ) {
        let d = counts_a.len().min(counts_b.len()).min(counts_c.len());
        let a = acc(&counts_a[..d], reports[0]);
        let b = acc(&counts_b[..d], reports[1]);
        let c = acc(&counts_c[..d], reports[2]);
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    /// The empty accumulator is the identity on both sides.
    #[test]
    fn empty_accumulator_is_the_merge_identity(
        counts in prop::collection::vec(0u64..10_000, 1..64),
        reports in 0usize..100_000,
    ) {
        let a = acc(&counts, reports);
        let empty = acc(&vec![0; counts.len()], 0);
        prop_assert_eq!(merged(&a, &empty), a.clone());
        prop_assert_eq!(merged(&empty, &a), a);
    }

    /// `from_parts` + merge conserves totals exactly: every support count
    /// and every report of every shard survives the fold, in `u64` /
    /// `usize` arithmetic with no rounding anywhere.
    #[test]
    fn from_parts_and_merge_preserve_totals(
        shards in prop::collection::vec(
            prop::collection::vec(0u64..10_000, 16), 1..8),
        reports in prop::collection::vec(0usize..100_000, 1..8),
    ) {
        let n = shards.len().min(reports.len());
        let mut folded = acc(&[0; 16], 0);
        for (counts, &r) in shards[..n].iter().zip(&reports[..n]) {
            folded.merge(&acc(counts, r));
        }
        let expect_reports: usize = reports[..n].iter().sum();
        prop_assert_eq!(folded.report_count(), expect_reports);
        for v in 0..16 {
            let expect: u64 = shards[..n].iter().map(|c| c[v]).sum();
            prop_assert_eq!(folded.counts()[v], expect, "item {}", v);
        }
    }
}

#[test]
fn merge_rejects_mismatched_domains() {
    let mut a = acc(&[1, 2, 3], 6);
    let b = acc(&[1, 2], 3);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.merge(&b)));
    assert!(result.is_err(), "cross-domain merge must panic");
}
