#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Key-value LDP collection under poisoning — the LDPRecover paper's
//! stated future work ("extend LDPRecover to poisoning attacks on LDP
//! protocols for more complex tasks, such as key-value pairs collection"),
//! built out as a working extension.
//!
//! # The protocol ([`protocol::KvProtocol`])
//!
//! A single-round PrivKV-style mechanism (Ye et al., S&P 2019), simplified
//! to one ⟨key, value⟩ pair per user with `value ∈ [−1, 1]`:
//!
//! 1. The user samples a uniform probe index `j ∈ D` and forms a presence
//!    bit `b = [j == her key]` plus a sign bit `s` (discretized value when
//!    present, fair coin otherwise).
//! 2. Both bits are perturbed by binary randomized response with budget
//!    `ε/2` each (sequential composition ⇒ ε-LDP overall).
//! 3. The server groups reports by probe index: per key it estimates the
//!    *frequency* (debiased presence rate, scaled by the probe rate) and
//!    the *mean* (debiased sign counts, corrected for false presences).
//!
//! # The attack ([`attack::M2ga`])
//!
//! The maximal-gain key-value attack (after Wu et al. 2022): every fake
//! user probes a target key and reports `(present, +1)` unperturbed,
//! inflating both the key's frequency and its mean.
//!
//! # The recovery ([`recover::KvRecover`])
//!
//! Key frequencies are a frequency-estimation problem, so LDPRecover's
//! machinery transfers — with one twist the flat protocols don't have: the
//! attacker must *also* skew the probe-index histogram (fake users choose
//! their probe), which is publicly observable. LDPRecover-KV therefore
//! learns the per-key malicious report mass from the probe-count anomaly
//! (expected `N/d` per key), applies the genuine frequency estimator
//! per-key, projects onto the simplex (Algorithm 1), and removes the
//! implied all-`+1` malicious sign mass from the mean estimates.
//!
//! # Example
//!
//! ```
//! use ldp_common::{rng::rng_from_seed, Domain};
//! use ldp_kv::{KvProtocol, KvRecover, M2ga};
//!
//! let kv = KvProtocol::new(2.0, Domain::new(8).unwrap()).unwrap();
//! let mut rng = rng_from_seed(1);
//!
//! // 20k genuine users hold key 0 with value −0.5 …
//! let mut reports: Vec<_> = (0..20_000)
//!     .map(|_| kv.perturb(0, -0.5, &mut rng).unwrap())
//!     .collect();
//! // … and 1k fakes promote key 5.
//! reports.extend(M2ga::new(vec![5]).craft(&kv, 1_000, &mut rng));
//!
//! let aggregate = kv.aggregate(&reports).unwrap();
//! let recovered = KvRecover::default().recover(&kv, &aggregate).unwrap();
//! assert!(recovered.frequencies[5] < 0.05);      // promotion undone
//! assert!(recovered.malicious_probes[5] > 500.0); // fakes localized
//! ```

pub mod attack;
pub mod protocol;
pub mod recover;

pub use attack::M2ga;
pub use protocol::{KvAggregate, KvEstimate, KvProtocol, KvReport};
pub use recover::{KvRecover, KvRecovery};
