//! The maximal key-value gain attack (after Wu et al., 2022).

use ldp_common::rng::uniform_index;
use ldp_common::sampling::sample_distinct;
use ldp_common::Domain;
use rand::Rng;

use crate::protocol::{KvProtocol, KvReport};

/// M2GA: every fake user probes a uniformly-chosen target key and reports
/// `(present, +1)` unperturbed — the report that maximally inflates both
/// the key's frequency and its mean.
#[derive(Debug, Clone)]
pub struct M2ga {
    targets: Vec<usize>,
}

impl M2ga {
    /// Builds the attack for an explicit target set.
    ///
    /// # Panics
    /// Panics if `targets` is empty.
    pub fn new(targets: Vec<usize>) -> Self {
        assert!(!targets.is_empty(), "M2GA requires at least one target");
        Self { targets }
    }

    /// Samples `r` distinct target keys uniformly.
    ///
    /// # Panics
    /// Panics if `r == 0` or `r > d`.
    pub fn random_targets<R: Rng + ?Sized>(domain: Domain, r: usize, rng: &mut R) -> Self {
        assert!(r >= 1 && r <= domain.size(), "need 1 ≤ r ≤ d");
        Self::new(sample_distinct(domain.size(), r, rng))
    }

    /// The attacker-chosen target keys.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Crafts the `m` malicious reports.
    pub fn craft<R: Rng + ?Sized>(
        &self,
        protocol: &KvProtocol,
        m: usize,
        rng: &mut R,
    ) -> Vec<KvReport> {
        (0..m)
            .map(|_| {
                let t = self.targets[uniform_index(rng, self.targets.len())];
                protocol.craft_clean(t, true, true)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    #[test]
    fn crafted_reports_hit_targets_with_full_presence() {
        let domain = Domain::new(16).unwrap();
        let kv = KvProtocol::new(1.0, domain).unwrap();
        let mut rng = rng_from_seed(1);
        let attack = M2ga::new(vec![3, 9]);
        for r in attack.craft(&kv, 500, &mut rng) {
            assert!([3u32, 9].contains(&r.index));
            assert!(r.present && r.positive);
        }
    }

    #[test]
    fn attack_inflates_frequency_and_mean() {
        let domain = Domain::new(8).unwrap();
        let kv = KvProtocol::new(1.0, domain).unwrap();
        let mut rng = rng_from_seed(2);
        let n = 120_000usize;
        // Everyone holds key 0 with value −0.5; target key 5 is unheld.
        let mut reports: Vec<KvReport> = (0..n)
            .map(|_| kv.perturb(0, -0.5, &mut rng).unwrap())
            .collect();
        let clean = kv.estimate(&kv.aggregate(&reports).unwrap()).unwrap();

        let attack = M2ga::new(vec![5]);
        reports.extend(attack.craft(&kv, n / 20, &mut rng));
        let poisoned = kv.estimate(&kv.aggregate(&reports).unwrap()).unwrap();

        assert!(
            poisoned.frequencies[5] > clean.frequencies[5] + 0.05,
            "freq gain: {} -> {}",
            clean.frequencies[5],
            poisoned.frequencies[5]
        );
        assert!(
            poisoned.means[5] > 0.5,
            "mean pushed toward +1, got {}",
            poisoned.means[5]
        );
    }

    #[test]
    fn random_targets_are_distinct() {
        let mut rng = rng_from_seed(3);
        let attack = M2ga::random_targets(Domain::new(30).unwrap(), 10, &mut rng);
        let set: std::collections::HashSet<_> = attack.targets().iter().collect();
        assert_eq!(set.len(), 10);
    }
}
