//! LDPRecover-KV: frequency + mean recovery for poisoned key-value
//! aggregates.
//!
//! The key observation (ours, extending the paper): in index-probed
//! key-value protocols the attacker cannot inject presence mass without
//! also inflating the *probe histogram* of the targeted keys, and probe
//! indices are sent in the clear. Genuine users probe uniformly, so every
//! key's probe count concentrates around a common level — estimated
//! robustly by the **median** probe count (immune to contamination below
//! the d/2 breakdown point). A key whose count exceeds the median by more
//! than `z` binomial standard deviations is attributed the whole excess:
//!
//! ```text
//! m̂_k = (n_k − median)·[n_k − median > z·√(median·(1−1/d))]
//! ```
//!
//! From this per-key malicious mass estimate LDPRecover-KV:
//!
//! 1. rebuilds the per-key malicious presence estimate
//!    `f̂_Y(k) = (1 − q)/(p − q)` (an unperturbed `present = true` report,
//!    debiased as if genuine — the KV analog of the base paper's Eq. 20),
//! 2. applies the genuine frequency estimator per key with the *local*
//!    ratio `η_k = m̂_k/(n_k − m̂_k)` (the probe partition makes η
//!    key-specific, unlike the flat protocols),
//! 3. projects the corrected frequencies onto the simplex (Algorithm 1),
//! 4. removes the implied all-`+1` malicious sign mass from the mean
//!    estimator's counts and re-debiases the means.

use ldp_common::float::exactly_zero;
use ldp_common::{LdpError, Result};
use ldprecover::solve::norm_sub;
use serde::{Deserialize, Serialize};

use crate::protocol::{KvAggregate, KvProtocol};

/// Configured key-value recovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvRecover {
    /// Probe-excess detection threshold in standard deviations (z-score).
    pub probe_z: f64,
}

impl Default for KvRecover {
    fn default() -> Self {
        Self { probe_z: 3.0 }
    }
}

/// What the recovery produced.
#[derive(Debug, Clone, PartialEq)]
pub struct KvRecovery {
    /// Recovered key frequencies (non-negative, sum to 1).
    pub frequencies: Vec<f64>,
    /// Recovered key means.
    pub means: Vec<f64>,
    /// Estimated malicious report count per key (`m̂_k`).
    pub malicious_probes: Vec<f64>,
}

impl KvRecover {
    /// Creates the recovery with an explicit probe z-score threshold.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for non-positive thresholds.
    pub fn new(probe_z: f64) -> Result<Self> {
        if probe_z.is_nan() || probe_z <= 0.0 || !probe_z.is_finite() {
            return Err(LdpError::invalid(format!(
                "probe z-threshold must be positive and finite, got {probe_z}"
            )));
        }
        Ok(Self { probe_z })
    }

    /// Recovers frequencies and means from a (possibly poisoned) aggregate.
    ///
    /// # Errors
    /// Propagates estimation failures (empty aggregate).
    pub fn recover(&self, protocol: &KvProtocol, agg: &KvAggregate) -> Result<KvRecovery> {
        if agg.total == 0 {
            return Err(LdpError::EmptyInput("key-value reports"));
        }
        let d = protocol.domain().size();
        let params = protocol.bit_params();
        let (p, q) = (params.p(), params.q());

        // Step 1: probe-excess malicious mass per key. The genuine probe
        // baseline is the *median* probe count — robust to the attacker's
        // contamination as long as fewer than half the keys are targeted
        // (the classical breakdown point; a d/2-target attacker could
        // defeat this, at the cost of diluting per-key gain to nothing).
        let mut sorted_probes: Vec<u64> = agg.probes.clone();
        sorted_probes.sort_unstable();
        let baseline = sorted_probes[d / 2] as f64;
        // Binomial fluctuation of a genuine key's probe count around the
        // baseline (≈ Poisson for large d).
        let sigma = (baseline.max(1.0) * (1.0 - 1.0 / d as f64)).sqrt();
        let malicious_probes: Vec<f64> = agg
            .probes
            .iter()
            .map(|&n_k| {
                let excess = n_k as f64 - baseline;
                if excess > self.probe_z * sigma {
                    excess
                } else {
                    0.0
                }
            })
            .collect();

        // Steps 2–4: per-key estimator correction.
        let malicious_presence = (1.0 - q) / (p - q); // debiased clean "present"
        let mut frequencies = vec![0.0; d];
        let mut means = vec![0.0; d];
        for k in 0..d {
            let n_k = agg.probes[k] as f64;
            if exactly_zero(n_k) {
                continue;
            }
            let m_k = malicious_probes[k].min(n_k - 1.0).max(0.0);
            let genuine_probes = n_k - m_k;
            let c_k = agg.presences[k] as f64;
            let poisoned_f = (c_k / n_k - q) / (p - q);
            let eta_k = if genuine_probes > 0.0 {
                m_k / genuine_probes
            } else {
                0.0
            };
            // Genuine frequency estimator (paper Eq. 19), per key.
            frequencies[k] = (1.0 + eta_k) * poisoned_f - eta_k * malicious_presence;

            // Mean recovery: strip the m̂_k all-(present, +1) reports from
            // the counts, then run the standard mean debias.
            let c_gen = (c_k - m_k).max(0.0);
            let p_gen = (agg.positives[k] as f64 - m_k).max(0.0);
            let holders = genuine_probes * frequencies[k].clamp(0.0, 1.0);
            let holder_present = holders * p;
            let other_present = (c_gen - holder_present).max(0.0);
            if holder_present > 0.0 {
                let rr_m = ((p_gen - other_present * 0.5) / holder_present).clamp(0.0, 1.0);
                means[k] = (2.0 * (rr_m - q) / (p - q) - 1.0).clamp(-1.0, 1.0);
            }
        }

        // Step 3: constraint inference — Σf = 1, f ≥ 0 (Algorithm 1).
        let frequencies = norm_sub(&frequencies);

        Ok(KvRecovery {
            frequencies,
            means,
            malicious_probes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::M2ga;
    use crate::protocol::KvReport;
    use ldp_common::rng::rng_from_seed;
    use ldp_common::vecmath::is_probability_vector;
    use ldp_common::Domain;

    fn population(kv: &KvProtocol, n: usize, seed: u64) -> (Vec<KvReport>, Vec<f64>, Vec<f64>) {
        // Keys 0..4 with geometric-ish frequencies, alternating means.
        let freqs = [0.4, 0.25, 0.2, 0.1, 0.05];
        let means = [0.6, -0.6, 0.2, -0.2, 0.0];
        let mut rng = rng_from_seed(seed);
        let mut reports = Vec::with_capacity(n);
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            let mut acc = 0.0;
            let mut key = 0;
            for (k, &f) in freqs.iter().enumerate() {
                acc += f;
                if u < acc {
                    key = k;
                    break;
                }
            }
            reports.push(kv.perturb(key, means[key], &mut rng).unwrap());
        }
        (reports, freqs.to_vec(), means.to_vec())
    }

    #[test]
    fn validation() {
        assert!(KvRecover::new(0.0).is_err());
        assert!(KvRecover::new(f64::NAN).is_err());
        assert!(KvRecover::new(2.5).is_ok());
    }

    #[test]
    fn recovery_on_clean_data_is_benign() {
        let domain = Domain::new(5).unwrap();
        let kv = KvProtocol::new(2.0, domain).unwrap();
        let (reports, freqs, _) = population(&kv, 200_000, 1);
        let agg = kv.aggregate(&reports).unwrap();
        let rec = KvRecover::default().recover(&kv, &agg).unwrap();
        assert!(is_probability_vector(&rec.frequencies, 1e-9));
        for (k, &f) in freqs.iter().enumerate() {
            assert!(
                (rec.frequencies[k] - f).abs() < 0.04,
                "key {k}: {} vs {f}",
                rec.frequencies[k]
            );
        }
        // No probe anomaly ⇒ no malicious mass inferred.
        assert!(rec.malicious_probes.iter().sum::<f64>() < 0.02 * 200_000.0);
    }

    #[test]
    fn recovery_undoes_m2ga_frequency_and_mean_gains() {
        let domain = Domain::new(5).unwrap();
        let kv = KvProtocol::new(2.0, domain).unwrap();
        let n = 200_000usize;
        let (mut reports, freqs, means) = population(&kv, n, 2);
        let clean_est = kv.estimate(&kv.aggregate(&reports).unwrap()).unwrap();

        let mut rng = rng_from_seed(3);
        let attack = M2ga::new(vec![4]); // the rarest key
        reports.extend(attack.craft(&kv, n / 20, &mut rng));
        let agg = kv.aggregate(&reports).unwrap();
        let poisoned = kv.estimate(&agg).unwrap();
        let recovered = KvRecover::default().recover(&kv, &agg).unwrap();

        // Attack inflated frequency and mean of key 4…
        assert!(poisoned.frequencies[4] > freqs[4] + 0.1);
        assert!(poisoned.means[4] > means[4] + 0.3);
        // …and recovery pulls both most of the way back.
        let freq_gain_before = poisoned.frequencies[4] - clean_est.frequencies[4];
        let freq_gain_after = recovered.frequencies[4] - clean_est.frequencies[4];
        assert!(
            freq_gain_after.abs() < 0.3 * freq_gain_before,
            "freq gain {freq_gain_before} -> {freq_gain_after}"
        );
        assert!(
            (recovered.means[4] - means[4]).abs() < (poisoned.means[4] - means[4]).abs(),
            "mean {} -> {} (true {})",
            poisoned.means[4],
            recovered.means[4],
            means[4]
        );
        assert!(is_probability_vector(&recovered.frequencies, 1e-9));
        // The probe anomaly localized the attack.
        let inferred: f64 = recovered.malicious_probes[4];
        assert!(
            inferred > 0.5 * (n as f64 / 20.0),
            "inferred {inferred} of {} malicious probes",
            n / 20
        );
    }

    #[test]
    fn empty_aggregate_rejected() {
        let domain = Domain::new(3).unwrap();
        let kv = KvProtocol::new(1.0, domain).unwrap();
        let agg = kv.aggregate(&[]).unwrap();
        assert!(KvRecover::default().recover(&kv, &agg).is_err());
    }
}
