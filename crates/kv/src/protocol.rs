//! The PrivKV-style single-round key-value protocol.

use ldp_common::float::exactly_zero;
use ldp_common::rng::{uniform_index, FastBernoulli};
use ldp_common::{Domain, LdpError, Result};
use ldp_protocols::BinaryRandomizedResponse;
use ldp_protocols::LdpFrequencyProtocol as _;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One user's report: the probe index plus perturbed presence / sign bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KvReport {
    /// The probed key index `j ∈ D`.
    pub index: u32,
    /// Perturbed presence bit.
    pub present: bool,
    /// Perturbed sign bit (`true` = +1). Meaningful only when `present`;
    /// carried unconditionally to keep the wire format fixed-size.
    pub positive: bool,
}

/// The key-value protocol instance for a fixed `(ε, D)`.
#[derive(Debug, Clone, Copy)]
pub struct KvProtocol {
    domain: Domain,
    epsilon: f64,
    rr: BinaryRandomizedResponse,
    half_positive: FastBernoulli,
}

/// Raw per-key aggregation state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvAggregate {
    /// Reports probing each key (`n_k`).
    pub probes: Vec<u64>,
    /// Reports probing each key with `present = true` (`C_k`).
    pub presences: Vec<u64>,
    /// Present reports with `positive = true` (`P_k`).
    pub positives: Vec<u64>,
    /// Total reports folded in.
    pub total: usize,
}

/// Debiased per-key estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct KvEstimate {
    /// Key frequencies (sum ≈ 1 for one pair per user).
    pub frequencies: Vec<f64>,
    /// Key means in `[−1, 1]` (clamped).
    pub means: Vec<f64>,
}

impl KvProtocol {
    /// Builds the protocol: `ε/2` to the presence bit, `ε/2` to the sign
    /// bit (sequential composition).
    ///
    /// # Errors
    /// Propagates ε validation.
    pub fn new(epsilon: f64, domain: Domain) -> Result<Self> {
        Ok(Self {
            domain,
            epsilon,
            rr: BinaryRandomizedResponse::new(epsilon / 2.0)?,
            half_positive: FastBernoulli::new(0.5),
        })
    }

    /// The key domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Total privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The per-bit randomized-response parameters (`p = e^{ε/2}/(1+e^{ε/2})`).
    pub fn bit_params(&self) -> ldp_protocols::PureParams {
        self.rr.params()
    }

    /// Client side: perturbs one ⟨key, value⟩ pair.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when the value is outside `[−1, 1]`
    /// or the key outside the domain.
    pub fn perturb<R: Rng + ?Sized>(
        &self,
        key: usize,
        value: f64,
        rng: &mut R,
    ) -> Result<KvReport> {
        self.domain.check_item(key)?;
        if !(-1.0..=1.0).contains(&value) {
            return Err(LdpError::invalid(format!(
                "value must lie in [-1, 1], got {value}"
            )));
        }
        let index = uniform_index(rng, self.domain.size());
        let holds = index == key;
        let sign = if holds {
            FastBernoulli::new((1.0 + value) / 2.0).sample(rng)
        } else {
            self.half_positive.sample(rng)
        };
        Ok(KvReport {
            index: index as u32,
            present: self.rr.perturb_bit(holds, rng),
            positive: self.rr.perturb_bit(sign, rng),
        })
    }

    /// Attacker side: a crafted report that bypasses perturbation (the
    /// threat model of the base paper, lifted to key-value reports).
    pub fn craft_clean(&self, key: usize, present: bool, positive: bool) -> KvReport {
        debug_assert!(self.domain.contains(key));
        KvReport {
            index: key as u32,
            present,
            positive,
        }
    }

    /// Aggregates reports into per-key counts.
    ///
    /// # Errors
    /// [`LdpError::DomainMismatch`] when a report probes an out-of-domain
    /// key.
    pub fn aggregate(&self, reports: &[KvReport]) -> Result<KvAggregate> {
        let d = self.domain.size();
        let mut agg = KvAggregate {
            probes: vec![0; d],
            presences: vec![0; d],
            positives: vec![0; d],
            total: reports.len(),
        };
        for r in reports {
            let k = r.index as usize;
            self.domain.check_item(k)?;
            agg.probes[k] += 1;
            if r.present {
                agg.presences[k] += 1;
                if r.positive {
                    agg.positives[k] += 1;
                }
            }
        }
        Ok(agg)
    }

    /// Debiases an aggregate into frequency / mean estimates.
    ///
    /// Frequency of key `k`: among the `n_k` probes of `k`, presence is
    /// reported at rate `f_k·p + (1−f_k)·q` ⇒ invert the RR. Mean of `k`:
    /// the expected positive count decomposes into the contribution of
    /// true holders (rate `(1+m_k)/2` through two RRs) and of everyone
    /// else (a fair coin through one RR, i.e. rate 1/2); subtract and
    /// invert (see inline derivation).
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] when the aggregate holds no reports.
    pub fn estimate(&self, agg: &KvAggregate) -> Result<KvEstimate> {
        if agg.total == 0 {
            return Err(LdpError::EmptyInput("key-value reports"));
        }
        let params = self.bit_params();
        let (p, q) = (params.p(), params.q());
        let d = self.domain.size();
        let mut frequencies = vec![0.0; d];
        let mut means = vec![0.0; d];
        for k in 0..d {
            let n_k = agg.probes[k] as f64;
            if exactly_zero(n_k) {
                continue; // no probes: leave 0 (the caller's priors apply)
            }
            let c_k = agg.presences[k] as f64;
            let f = (c_k / n_k - q) / (p - q);
            frequencies[k] = f;

            // Positive-count decomposition, with h = n_k·f true holders:
            //   E[P_k] = h·[p·rr((1+m)/2) + (1−p)·1/2]        (holders)
            //          + (n_k − h)·[q·1/2 + ... ] …
            // Every non-holder's sign bit is a fair coin, and RR preserves
            // fairness, so *any* report that ends up `present` contributes
            // 1/2 unless it came from a holder whose presence bit survived
            // (probability p), in which case its sign carries the value
            // signal through one RR: rate rr_m = q + (p−q)·(1+m)/2.
            let holders = n_k * f;
            let holder_present = holders * p; // presences from true holders
            let other_present = c_k - holder_present; // flips + non-holders
            if holder_present <= 0.0 {
                means[k] = 0.0;
                continue;
            }
            let p_k = agg.positives[k] as f64;
            // p_k ≈ holder_present·rr_m + other_present·1/2
            let rr_m = ((p_k - other_present * 0.5) / holder_present).clamp(0.0, 1.0);
            // rr_m = q + (p−q)·(1+m)/2  ⇒  m = 2·(rr_m − q)/(p−q) − 1
            means[k] = (2.0 * (rr_m - q) / (p - q) - 1.0).clamp(-1.0, 1.0);
        }
        Ok(KvEstimate { frequencies, means })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    fn proto(eps: f64, d: usize) -> KvProtocol {
        KvProtocol::new(eps, Domain::new(d).unwrap()).unwrap()
    }

    #[test]
    fn rejects_bad_inputs() {
        let kv = proto(1.0, 4);
        let mut rng = rng_from_seed(1);
        assert!(kv.perturb(0, 1.5, &mut rng).is_err());
        assert!(kv.perturb(0, f64::NAN, &mut rng).is_err());
        assert!(kv.perturb(4, 0.0, &mut rng).is_err());
        assert!(kv.perturb(3, -1.0, &mut rng).is_ok());
    }

    #[test]
    fn estimates_are_unbiased() {
        // 3 keys with frequencies (0.5, 0.3, 0.2) and means (0.8, -0.4, 0).
        let kv = proto(2.0, 3);
        let mut rng = rng_from_seed(2);
        let n = 300_000usize;
        let mut reports = Vec::with_capacity(n);
        for i in 0..n {
            let u = i as f64 / n as f64;
            let (key, value) = if u < 0.5 {
                (0usize, 0.8)
            } else if u < 0.8 {
                (1, -0.4)
            } else {
                (2, 0.0)
            };
            reports.push(kv.perturb(key, value, &mut rng).unwrap());
        }
        let est = kv.estimate(&kv.aggregate(&reports).unwrap()).unwrap();
        for (k, (&f_true, &m_true)) in [0.5, 0.3, 0.2].iter().zip(&[0.8, -0.4, 0.0]).enumerate() {
            assert!(
                (est.frequencies[k] - f_true).abs() < 0.03,
                "key {k} freq {} vs {f_true}",
                est.frequencies[k]
            );
            assert!(
                (est.means[k] - m_true).abs() < 0.08,
                "key {k} mean {} vs {m_true}",
                est.means[k]
            );
        }
        let total: f64 = est.frequencies.iter().sum();
        assert!((total - 1.0).abs() < 0.05, "freqs sum to {total}");
    }

    #[test]
    fn aggregate_counts_consistently() {
        let kv = proto(1.0, 4);
        let reports = vec![
            kv.craft_clean(2, true, true),
            kv.craft_clean(2, true, false),
            kv.craft_clean(1, false, true),
        ];
        let agg = kv.aggregate(&reports).unwrap();
        assert_eq!(agg.probes, vec![0, 1, 2, 0]);
        assert_eq!(agg.presences, vec![0, 0, 2, 0]);
        assert_eq!(agg.positives, vec![0, 0, 1, 0]);
        assert_eq!(agg.total, 3);
    }

    #[test]
    fn empty_aggregate_refuses_estimation() {
        let kv = proto(1.0, 4);
        let agg = kv.aggregate(&[]).unwrap();
        assert!(kv.estimate(&agg).is_err());
    }

    #[test]
    fn unprobed_keys_estimate_to_zero() {
        let kv = proto(1.0, 8);
        let reports = vec![kv.craft_clean(0, true, true)];
        let est = kv.estimate(&kv.aggregate(&reports).unwrap()).unwrap();
        for k in 1..8 {
            assert_eq!(est.frequencies[k], 0.0);
            assert_eq!(est.means[k], 0.0);
        }
    }
}
