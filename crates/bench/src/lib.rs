#![forbid(unsafe_code)]
//! Experiment harness shared by the `fig*` / `table1` / `repro` binaries.
//!
//! Every binary regenerates one table or figure of the LDPRecover paper
//! by fetching its declarative definition from the shared scenario
//! catalog (`ldp_sim::scenario::catalog`) and handing it to the scenario
//! engine — the binaries own no grid loops or table code of their own.
//! Absolute numbers depend on the synthetic dataset stand-ins and the
//! scale; the *shape* — which method wins, by roughly what factor, where
//! crossovers fall — is the reproduction target.
//!
//! # Common flags
//!
//! ```text
//! --trials N        trials per cell (default: the scale's preset — 5 for
//!                   small, 10 for paper and explicit fractions)
//! --scale S         small | paper | fraction in (0,1]   (default: 0.25)
//! --seed N          master seed                         (default: 0x1DB05EED)
//! --quick           shorthand for --trials 3 --scale 0.05
//! --full            shorthand for --scale paper
//! --csv             emit CSV instead of aligned tables
//! --json PATH       also write the structured report as JSON
//! ```
//!
//! The same reports are reachable through `ldp repro --figure <id>` and
//! are regression-gated at `--scale small` by `tests/golden_repro.rs`.

use ldp_common::{LdpError, Result};
use ldp_datasets::ScalePreset;
use ldp_sim::scenario::{catalog, run_scenario, RunScale, ScaleSpec};
use ldp_sim::DEFAULT_SEED;

pub use ldp_sim::scenario::catalog::{
    BETA_GRID_FINE, BETA_GRID_WIDE, EPSILON_GRID, ETA_GRID, FIGURE_IDS, XI_GRID,
};

/// Parsed common command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Explicit `--trials`, when given; otherwise the scale's preset
    /// default applies (see [`Cli::run_scale`]).
    pub trials: Option<usize>,
    /// Population scale (named preset or uniform fraction).
    pub scale: ScaleSpec,
    /// Master seed.
    pub seed: u64,
    /// Emit CSV instead of aligned tables.
    pub csv: bool,
    /// Also write the structured JSON report(s) here (a file for one
    /// figure, a directory when several figures run).
    pub json: Option<std::path::PathBuf>,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            trials: None,
            scale: ScaleSpec::Fraction(0.25),
            seed: DEFAULT_SEED,
            csv: false,
            json: None,
        }
    }
}

impl Cli {
    /// Parses `std::env::args()`, exiting with usage help on `--help`.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for malformed flags or values.
    pub fn parse() -> Result<Self> {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (testable).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for malformed flags or values.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self> {
        let mut cli = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--trials" => {
                    cli.trials = Some(
                        next_value(&mut iter, "--trials")?
                            .parse()
                            .map_err(|e| LdpError::invalid(format!("--trials: {e}")))?,
                    );
                }
                "--scale" => {
                    cli.scale = ScaleSpec::parse(&next_value(&mut iter, "--scale")?)?;
                }
                "--seed" => {
                    cli.seed = next_value(&mut iter, "--seed")?
                        .parse()
                        .map_err(|e| LdpError::invalid(format!("--seed: {e}")))?;
                }
                "--quick" => {
                    cli.trials = Some(3);
                    cli.scale = ScaleSpec::Fraction(0.05);
                }
                "--full" => {
                    cli.scale = ScaleSpec::Preset(ScalePreset::Paper);
                }
                "--csv" => cli.csv = true,
                "--json" => {
                    cli.json = Some(next_value(&mut iter, "--json")?.into());
                }
                "--help" | "-h" => {
                    println!(
                        "flags: --trials N  --scale small|paper|F  --seed N  --quick  --full  \
                         --csv  --json PATH"
                    );
                    std::process::exit(0);
                }
                other => {
                    return Err(LdpError::invalid(format!("unknown flag '{other}'")));
                }
            }
        }
        if cli.trials == Some(0) {
            return Err(LdpError::invalid("--trials must be ≥ 1"));
        }
        Ok(cli)
    }

    /// The scenario-engine scale these flags describe: explicit
    /// `--trials` wins; otherwise named presets bring their own trial
    /// count (5 for `small`, 10 for `paper`) and explicit fractions run
    /// the paper's 10 — matching `ldp repro`.
    pub fn run_scale(&self) -> RunScale {
        let trials = self.trials.unwrap_or(match self.scale {
            ScaleSpec::Preset(preset) => preset.trials(),
            ScaleSpec::Fraction(_) => 10,
        });
        RunScale {
            trials,
            seed: self.seed,
            scale: self.scale,
        }
    }

    /// Runs one catalog figure: execute, print, optionally emit JSON.
    ///
    /// # Errors
    /// Propagates catalog lookup, execution, and I/O failures.
    pub fn run_figure(&self, id: &str) -> Result<()> {
        let scenario = catalog::scenario(id)?;
        let report = run_scenario(&scenario, &self.run_scale())?;
        print!("{}", report.render_text(self.csv));
        if let Some(path) = &self.json {
            let written = report.write_json(path, false)?;
            eprintln!("wrote {}", written.display());
        }
        Ok(())
    }
}

/// Entry point of the single-figure binaries: parse the common flags and
/// run one catalog scenario.
///
/// # Errors
/// Propagates flag parsing and [`Cli::run_figure`] failures.
pub fn run_figure(id: &str) -> Result<()> {
    Cli::parse()?.run_figure(id)
}

/// Entry point of the `repro` binary: every catalog figure in the paper's
/// presentation order. With `--json PATH`, `PATH` is a directory that
/// receives one `<figure>.json` per scenario.
///
/// # Errors
/// Propagates flag parsing and per-figure failures (the run stops at the
/// first failing figure).
pub fn run_all_figures() -> Result<()> {
    let cli = Cli::parse()?;
    for id in FIGURE_IDS {
        println!("################################################################");
        println!("## {id}");
        println!("################################################################");
        let scenario = catalog::scenario(id)?;
        let report = run_scenario(&scenario, &cli.run_scale())?;
        print!("{}", report.render_text(cli.csv));
        if let Some(path) = &cli.json {
            let written = report.write_json(path, true)?;
            eprintln!("wrote {}", written.display());
        }
    }
    println!(
        "repro complete: all {} experiments finished.",
        FIGURE_IDS.len()
    );
    Ok(())
}

fn next_value<I: Iterator<Item = String>>(iter: &mut I, flag: &str) -> Result<String> {
    iter.next()
        .ok_or_else(|| LdpError::invalid(format!("{flag} requires a value")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::DatasetKind;

    fn parse(args: &[&str]) -> Result<Cli> {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.trials, None);
        assert_eq!(cli.run_scale().trials, 10, "fraction default trials");
        assert_eq!(cli.scale, ScaleSpec::Fraction(0.25));
        assert!(!cli.csv);
        assert!(cli.json.is_none());

        let cli = parse(&[
            "--trials", "4", "--scale", "0.5", "--seed", "9", "--csv", "--json", "out.json",
        ])
        .unwrap();
        assert_eq!(cli.run_scale().trials, 4);
        assert_eq!(cli.scale, ScaleSpec::Fraction(0.5));
        assert_eq!(cli.seed, 9);
        assert!(cli.csv);
        assert_eq!(cli.json.as_deref(), Some(std::path::Path::new("out.json")));
    }

    #[test]
    fn named_scale_presets_bring_their_trial_counts() {
        // `--scale small|paper` must behave exactly like `ldp repro`:
        // preset trials apply unless --trials is explicit.
        let cli = parse(&["--scale", "small"]).unwrap();
        assert_eq!(cli.scale, ScaleSpec::Preset(ScalePreset::Small));
        assert_eq!(cli.run_scale().trials, ScalePreset::Small.trials());
        assert!(cli.run_scale().scale.fraction(DatasetKind::Ipums) < 0.01);
        let cli = parse(&["--scale", "paper"]).unwrap();
        assert_eq!(cli.scale, ScaleSpec::Preset(ScalePreset::Paper));
        assert_eq!(cli.run_scale().trials, 10);
        assert_eq!(cli.run_scale().scale.fraction(DatasetKind::Fire), 1.0);
        let cli = parse(&["--scale", "small", "--trials", "2"]).unwrap();
        assert_eq!(cli.run_scale().trials, 2, "explicit trials win");
    }

    #[test]
    fn quick_and_full_shorthands() {
        let cli = parse(&["--quick"]).unwrap();
        assert_eq!(cli.trials, Some(3));
        assert_eq!(cli.scale, ScaleSpec::Fraction(0.05));
        // --full is the paper preset (full populations, label "paper").
        let cli = parse(&["--full"]).unwrap();
        assert_eq!(cli.scale, ScaleSpec::Preset(ScalePreset::Paper));
        assert_eq!(cli.run_scale().scale.fraction(DatasetKind::Ipums), 1.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "zero"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--scale", "2.0"]).is_err());
        assert!(parse(&["--scale", "medium"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn run_scale_mirrors_flags() {
        let cli = parse(&["--trials", "2", "--scale", "0.1", "--seed", "5"]).unwrap();
        let scale = cli.run_scale();
        assert_eq!(scale.trials, 2);
        assert_eq!(scale.seed, 5);
        assert_eq!(scale.scale.fraction(DatasetKind::Ipums), 0.1);
    }
}
