//! Experiment harness shared by the `fig*` / `table1` / `repro` binaries.
//!
//! Each binary regenerates one table or figure of the LDPRecover paper
//! (see DESIGN.md §5 for the full index) and prints the same rows/series
//! the paper reports, alongside the paper's own (approximate, read off the
//! figures) values where available. Absolute numbers depend on the
//! synthetic dataset stand-ins and the `--scale` factor; the *shape* —
//! which method wins, by roughly what factor, where crossovers fall — is
//! the reproduction target (system prompt of EXPERIMENTS.md).
//!
//! # Common flags
//!
//! ```text
//! --trials N    trials per cell            (default: 10, paper's setting)
//! --scale F     population scale in (0,1]  (default: 0.25)
//! --seed N      master seed                (default: 0x1DB05EED)
//! --quick       shorthand for --trials 3 --scale 0.05
//! --full        shorthand for --scale 1.0
//! --csv         emit CSV instead of aligned tables
//! ```

use ldp_common::{LdpError, Result};

pub mod sweeps;

/// Parsed common command-line options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cli {
    /// Trials per experiment cell.
    pub trials: usize,
    /// Population scale factor.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Emit CSV instead of aligned tables.
    pub csv: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            trials: 10,
            scale: 0.25,
            seed: 0x1DB0_5EED,
            csv: false,
        }
    }
}

impl Cli {
    /// Parses `std::env::args()`, exiting with usage help on `--help`.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for malformed flags or values.
    pub fn parse() -> Result<Self> {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (testable).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for malformed flags or values.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self> {
        let mut cli = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--trials" => {
                    cli.trials = next_value(&mut iter, "--trials")?
                        .parse()
                        .map_err(|e| LdpError::invalid(format!("--trials: {e}")))?;
                }
                "--scale" => {
                    cli.scale = next_value(&mut iter, "--scale")?
                        .parse()
                        .map_err(|e| LdpError::invalid(format!("--scale: {e}")))?;
                }
                "--seed" => {
                    cli.seed = next_value(&mut iter, "--seed")?
                        .parse()
                        .map_err(|e| LdpError::invalid(format!("--seed: {e}")))?;
                }
                "--quick" => {
                    cli.trials = 3;
                    cli.scale = 0.05;
                }
                "--full" => {
                    cli.scale = 1.0;
                }
                "--csv" => cli.csv = true,
                "--help" | "-h" => {
                    println!("flags: --trials N  --scale F  --seed N  --quick  --full  --csv");
                    std::process::exit(0);
                }
                other => {
                    return Err(LdpError::invalid(format!("unknown flag '{other}'")));
                }
            }
        }
        if cli.trials == 0 {
            return Err(LdpError::invalid("--trials must be ≥ 1"));
        }
        if !(cli.scale > 0.0 && cli.scale <= 1.0) {
            return Err(LdpError::invalid("--scale must be in (0,1]"));
        }
        Ok(cli)
    }

    /// Applies the common options onto an experiment config.
    pub fn apply(&self, config: &mut ldp_sim::ExperimentConfig) {
        config.trials = self.trials;
        config.scale = self.scale;
        config.seed = self.seed;
    }

    /// Prints a table in the selected format.
    pub fn print_table(&self, title: &str, table: &ldp_sim::Table) {
        println!("== {title} ==");
        if self.csv {
            print!("{}", table.render_csv());
        } else {
            print!("{}", table.render());
        }
        println!();
    }

    /// Prints the run header (scale caveat included once per binary).
    pub fn print_header(&self, what: &str, paper_anchor: &str) {
        println!("LDPRecover reproduction — {what}");
        println!(
            "trials={} scale={} seed={:#x}   (MSE scales ≈ 1/n: at scale σ the \
             noise floor is 1/σ × the paper's; method ordering is scale-invariant)",
            self.trials, self.scale, self.seed
        );
        if !paper_anchor.is_empty() {
            println!("paper anchor: {paper_anchor}");
        }
        println!();
    }
}

fn next_value<I: Iterator<Item = String>>(iter: &mut I, flag: &str) -> Result<String> {
    iter.next()
        .ok_or_else(|| LdpError::invalid(format!("{flag} requires a value")))
}

/// The β grid of Figs. 7, 8, 10.
pub const BETA_GRID_WIDE: [f64; 5] = [0.05, 0.10, 0.15, 0.20, 0.25];
/// The β grid of Figs. 5–6.
pub const BETA_GRID_FINE: [f64; 5] = [0.001, 0.005, 0.01, 0.05, 0.1];
/// The ε grid of Figs. 5–6.
pub const EPSILON_GRID: [f64; 5] = [0.1, 0.2, 0.4, 0.8, 1.6];
/// The η grid of Figs. 5–6.
pub const ETA_GRID: [f64; 5] = [0.01, 0.05, 0.1, 0.2, 0.4];
/// The ξ (sample-rate) grid of Fig. 9.
pub const XI_GRID: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli> {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.trials, 10);
        assert!(!cli.csv);

        let cli = parse(&["--trials", "4", "--scale", "0.5", "--seed", "9", "--csv"]).unwrap();
        assert_eq!(cli.trials, 4);
        assert_eq!(cli.scale, 0.5);
        assert_eq!(cli.seed, 9);
        assert!(cli.csv);
    }

    #[test]
    fn quick_and_full_shorthands() {
        let cli = parse(&["--quick"]).unwrap();
        assert_eq!(cli.trials, 3);
        assert_eq!(cli.scale, 0.05);
        let cli = parse(&["--full"]).unwrap();
        assert_eq!(cli.scale, 1.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "zero"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--scale", "2.0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn apply_overrides_config() {
        let cli = parse(&["--trials", "2", "--scale", "0.1", "--seed", "5"]).unwrap();
        let mut config = ldp_sim::ExperimentConfig::paper_default(
            ldp_datasets::DatasetKind::Ipums,
            ldp_protocols::ProtocolKind::Grr,
            None,
        );
        config.beta = 0.0;
        cli.apply(&mut config);
        assert_eq!(config.trials, 2);
        assert_eq!(config.scale, 0.1);
        assert_eq!(config.seed, 5);
    }
}
