//! Figure 3 — MSE of {before recovery, Detection, LDPRecover, LDPRecover\*}
//! for Manip-GRR, MGA-{GRR,OUE,OLH}, AA-{GRR,OUE,OLH} on both datasets.
//!
//! Paper reading (ε = 0.5, β = 0.05, η = 0.2, 10 trials, full scale):
//! before-recovery bars sit around 10⁻² and both LDPRecover variants drop
//! them to the 10⁻³–10⁻⁴ decade, with LDPRecover\* lowest under MGA and
//! Detection in between.

use ldp_attacks::AttackKind;
use ldp_bench::Cli;
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::table::{fmt_mean, fmt_stat};
use ldp_sim::{run_experiment, ExperimentConfig, PipelineOptions, Table};

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Figure 3: MSE across attacks, protocols, and recovery methods",
        "before ≈ 1e-2; LDPRecover/LDPRecover* ≈ 1e-3..1e-4; Detection in between",
    );

    let cells: [(AttackKind, ProtocolKind); 7] = [
        (AttackKind::Manip { h: 10 }, ProtocolKind::Grr),
        (AttackKind::Mga { r: 10 }, ProtocolKind::Grr),
        (AttackKind::Mga { r: 10 }, ProtocolKind::Oue),
        (AttackKind::Mga { r: 10 }, ProtocolKind::Olh),
        (AttackKind::Adaptive, ProtocolKind::Grr),
        (AttackKind::Adaptive, ProtocolKind::Oue),
        (AttackKind::Adaptive, ProtocolKind::Olh),
    ];

    for dataset in DatasetKind::ALL {
        let mut table = Table::new([
            "cell",
            "MSE before",
            "MSE Detection",
            "MSE LDPRecover",
            "MSE LDPRecover*",
        ]);
        for (attack, protocol) in cells {
            let mut config = ExperimentConfig::paper_default(dataset, protocol, Some(attack));
            cli.apply(&mut config);
            let result = run_experiment(&config, &PipelineOptions::full_comparison())?;
            table.push_row([
                config.label(),
                fmt_mean(&result.mse_before),
                fmt_stat(&result.mse_detection),
                fmt_mean(&result.mse_recover),
                fmt_stat(&result.mse_star),
            ]);
        }
        cli.print_table(&format!("Fig. 3 ({dataset} dataset)"), &table);
    }
    Ok(())
}
