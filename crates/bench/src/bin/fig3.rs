//! Figure 3 — MSE of {before recovery, Detection, LDPRecover, LDPRecover\*}
//! for Manip-GRR, MGA-{GRR,OUE,OLH}, AA-{GRR,OUE,OLH} on both datasets.
//!
//! The grid lives in the shared scenario catalog
//! (`ldp_sim::scenario::catalog`); this binary only parses the common
//! flags and drives the engine.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("fig3")
}
