//! Figure 5 — impact of β ∈ [0.001, 0.1], ε ∈ [0.1, 1.6], η ∈ [0.01, 0.4]
//! on recovery from the adaptive attack (IPUMS, three protocols).
//!
//! Paper anchor (§VI-D): at β = 0.05 and η = 0.4 on GRR, LDPRecover
//! averages MSE ≈ 1.42 × 10⁻⁴ vs ≈ 8.78 × 10⁻² for the poisoned
//! frequencies; MSE before recovery grows with β; LDPRecover\* stays low
//! and stable across ε; both methods are effective for every η.

use ldp_bench::{sweeps::run_parameter_sweeps, Cli};
use ldp_common::Result;
use ldp_datasets::DatasetKind;

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Figure 5: parameter impact on recovery from AA (IPUMS)",
        "GRR @ beta=0.05, eta=0.4: LDPRecover ≈ 1.42e-4 vs poisoned ≈ 8.78e-2 (full scale)",
    );
    run_parameter_sweeps(&cli, DatasetKind::Ipums, "Fig. 5")
}
