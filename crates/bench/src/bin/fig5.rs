//! Figure 5 — impact of β ∈ [0.001, 0.1], ε ∈ [0.1, 1.6], η ∈ [0.01, 0.4]
//! on recovery from the adaptive attack (IPUMS, three protocols). The η
//! grid shares one aggregation per trial via the engine's η-sweep fusion.
//! Grid definition: `ldp_sim::scenario::catalog`.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("fig5")
}
