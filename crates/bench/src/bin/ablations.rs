//! Ablation studies for the design choices DESIGN.md §6 calls out —
//! experiments beyond the paper that quantify each modeling decision:
//! malicious-sum model (OLH), refinement solver, D₁ fallback (OUE), and
//! MGA padding. Defined as custom scenario cells in
//! `ldp_sim::scenario::catalog`.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("ablations")
}
