//! Ablation studies for the design choices DESIGN.md §6 calls out —
//! experiments beyond the paper that quantify each modeling decision:
//!
//! 1. **Malicious-sum model** (Eq. 21 vs collision-aware) on OLH, where the
//!    paper's constant ignores hash collisions.
//! 2. **Refinement solver** (norm-sub vs exact simplex projection vs
//!    clip+normalize) — Algorithm 1 vs alternatives.
//! 3. **D₁ fallback** on AA-OUE, where Eq. (26)'s positive-frequency
//!    heuristic degenerates (see EXPERIMENTS.md).
//! 4. **MGA padding** — attack strength vs detectability trade-off.

use ldp_attacks::AttackKind;
use ldp_bench::Cli;
use ldp_common::rng::{derive_seed, rng_from_seed};
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::pipeline::run_aggregation;
use ldp_sim::{metrics::mse, ExperimentConfig, PipelineOptions, Table};
use ldprecover::{LdpRecover, MaliciousSumModel, PostProcess};

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Ablations: malicious-sum model, solver, D1 fallback, MGA padding",
        "",
    );

    sum_model_ablation(&cli)?;
    solver_ablation(&cli)?;
    d1_fallback_ablation(&cli)?;
    mga_padding_ablation(&cli)?;
    Ok(())
}

/// Per-trial aggregates for an attack/protocol cell.
fn aggregates_for(
    cli: &Cli,
    protocol: ProtocolKind,
    attack: AttackKind,
    trial: u64,
) -> Result<ldp_sim::TrialAggregates> {
    let mut config = ExperimentConfig::paper_default(DatasetKind::Ipums, protocol, Some(attack));
    cli.apply(&mut config);
    let mut rng = rng_from_seed(derive_seed(config.seed, trial));
    run_aggregation(&config, &PipelineOptions::default(), &mut rng)
}

fn sum_model_ablation(cli: &Cli) -> Result<()> {
    let mut table = Table::new([
        "attack",
        "MSE paper-sum (Eq.21)",
        "MSE collision-aware",
        "malicious-MSE paper",
        "malicious-MSE aware",
    ]);
    for attack in [AttackKind::Adaptive, AttackKind::Mga { r: 10 }] {
        let mut acc = [0.0f64; 4];
        for trial in 0..cli.trials as u64 {
            let agg = aggregates_for(cli, ProtocolKind::Olh, attack, trial)?;
            let params = agg.params();
            let mal_true = agg.malicious_true_freqs.as_ref().expect("attacked");
            for (i, model) in [MaliciousSumModel::Paper, MaliciousSumModel::CollisionAware]
                .into_iter()
                .enumerate()
            {
                let out = LdpRecover::new(0.2)?
                    .with_sum_model(model)
                    .recover(&agg.poisoned_freqs, params)?;
                acc[i] += mse(&out.frequencies, &agg.true_freqs);
                acc[2 + i] += mse(&out.malicious_estimate, mal_true);
            }
        }
        let t = cli.trials as f64;
        table.push_row([
            format!("{}-OLH", attack.label()),
            format!("{:.3e}", acc[0] / t),
            format!("{:.3e}", acc[1] / t),
            format!("{:.3e}", acc[2] / t),
            format!("{:.3e}", acc[3] / t),
        ]);
    }
    cli.print_table("Ablation 1: malicious-sum model on OLH (IPUMS)", &table);
    Ok(())
}

fn solver_ablation(cli: &Cli) -> Result<()> {
    let mut table = Table::new(["solver", "MSE AA-GRR", "MSE MGA-GRR"]);
    let solvers = [
        ("norm-sub (Alg. 1)", PostProcess::NormSub),
        ("simplex projection", PostProcess::SimplexProjection),
        ("clip+normalize", PostProcess::ClipNormalize),
        ("base-cut", PostProcess::BaseCut),
    ];
    let mut rows = vec![[0.0f64; 2]; solvers.len()];
    for (col, attack) in [AttackKind::Adaptive, AttackKind::Mga { r: 10 }]
        .into_iter()
        .enumerate()
    {
        for trial in 0..cli.trials as u64 {
            let agg = aggregates_for(cli, ProtocolKind::Grr, attack, trial)?;
            for (row, (_, solver)) in solvers.iter().enumerate() {
                let out = LdpRecover::new(0.2)?
                    .with_post_process(*solver)
                    .recover(&agg.poisoned_freqs, agg.params())?;
                rows[row][col] += mse(&out.frequencies, &agg.true_freqs);
            }
        }
    }
    let t = cli.trials as f64;
    for ((name, _), row) in solvers.iter().zip(&rows) {
        table.push_row([
            name.to_string(),
            format!("{:.3e}", row[0] / t),
            format!("{:.3e}", row[1] / t),
        ]);
    }
    cli.print_table("Ablation 2: refinement solver on GRR (IPUMS)", &table);
    Ok(())
}

fn d1_fallback_ablation(cli: &Cli) -> Result<()> {
    let mut table = Table::new(["attack", "MSE paper-exact", "MSE with D1 fallback (10%)"]);
    for attack in [AttackKind::Adaptive, AttackKind::AdaptiveCamouflaged] {
        let mut acc = [0.0f64; 2];
        for trial in 0..cli.trials as u64 {
            let agg = aggregates_for(cli, ProtocolKind::Oue, attack, trial)?;
            let params = agg.params();
            let paper = LdpRecover::new(0.2)?.recover(&agg.poisoned_freqs, params)?;
            let fallback = LdpRecover::new(0.2)?
                .with_d1_fallback(0.1)
                .recover(&agg.poisoned_freqs, params)?;
            acc[0] += mse(&paper.frequencies, &agg.true_freqs);
            acc[1] += mse(&fallback.frequencies, &agg.true_freqs);
        }
        let t = cli.trials as f64;
        table.push_row([
            format!("{}-OUE", attack.label()),
            format!("{:.3e}", acc[0] / t),
            format!("{:.3e}", acc[1] / t),
        ]);
    }
    cli.print_table("Ablation 3: D1 uniform fallback on OUE (IPUMS)", &table);
    Ok(())
}

fn mga_padding_ablation(cli: &Cli) -> Result<()> {
    use ldp_attacks::{Mga, PoisoningAttack};
    use ldp_common::Domain;
    use ldp_protocols::LdpFrequencyProtocol;
    use ldprecover::Detection;

    let domain = Domain::new(102)?;
    let protocol = ProtocolKind::Oue.build(0.5, domain)?;
    let mut rng = rng_from_seed(cli.seed);
    let targets: Vec<usize> = (20..30).collect();
    let detection = Detection::new(targets.clone())?;
    let m = 2_000;

    let mut table = Table::new(["variant", "targets/report", "flagged by detection"]);
    for (name, attack) in [
        ("padded (default)", Mga::new(targets.clone())),
        ("un-padded", Mga::new(targets.clone()).without_padding()),
    ] {
        let reports = attack.craft(&protocol, m, &mut rng);
        let avg_support: f64 = reports
            .iter()
            .map(|r| targets.iter().filter(|&&t| protocol.supports(r, t)).count() as f64)
            .sum::<f64>()
            / m as f64;
        let flagged = detection
            .keep_mask(&protocol, &reports)
            .iter()
            .filter(|&&keep| !keep)
            .count();
        table.push_row([
            name.to_string(),
            format!("{avg_support:.1}"),
            format!("{:.1}%", 100.0 * flagged as f64 / m as f64),
        ]);
    }
    cli.print_table(
        "Ablation 4: MGA-OUE padding (both support all targets; padding \
         changes the popcount signature, not the r-target one)",
        &table,
    );
    Ok(())
}
