//! Figure 10 — multi-attacker poisoning: five independent adaptive
//! attackers share the malicious population (IPUMS, β ∈ [0.05, 0.25]).
//! Grid definition: `ldp_sim::scenario::catalog`.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("fig10")
}
