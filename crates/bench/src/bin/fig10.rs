//! Figure 10 — multi-attacker poisoning: five independent adaptive
//! attackers share the malicious population (IPUMS, β ∈ [0.05, 0.25]).
//!
//! Paper anchor (§VII-C): LDPRecover recovers accurately from
//! multi-attacker poisoning — e.g. an average 80.2% MSE improvement over
//! the poisoned frequencies for GRR.

use ldp_attacks::AttackKind;
use ldp_bench::{Cli, BETA_GRID_WIDE};
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::table::fmt_mean;
use ldp_sim::{run_experiment, ExperimentConfig, PipelineOptions, Table};

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Figure 10: multi-attacker adaptive poisoning (5 attackers, IPUMS)",
        "LDPRecover ≈ 80.2% average MSE improvement for GRR (paper)",
    );

    for protocol in ProtocolKind::ALL {
        let mut table = Table::new(["beta", "MSE before", "MSE LDPRecover", "improvement"]);
        let mut improvements = Vec::new();
        for &beta in &BETA_GRID_WIDE {
            let mut config = ExperimentConfig::paper_default(
                DatasetKind::Ipums,
                protocol,
                Some(AttackKind::MultiAdaptive { attackers: 5 }),
            );
            cli.apply(&mut config);
            config.beta = beta;
            let result = run_experiment(&config, &PipelineOptions::default())?;
            let improvement = 1.0 - result.mse_recover.mean / result.mse_before.mean;
            improvements.push(improvement);
            table.push_row([
                format!("{beta}"),
                fmt_mean(&result.mse_before),
                fmt_mean(&result.mse_recover),
                format!("{:.1}%", 100.0 * improvement),
            ]);
        }
        cli.print_table(&format!("Fig. 10 (MUL-AA-{protocol}, IPUMS)"), &table);
        let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
        println!("average improvement ({protocol}): {:.1}%\n", 100.0 * avg);
    }
    Ok(())
}
