//! Figure 8 — MGA vs MGA-IPA: poisoned-frequency MSE under the general
//! attack and its input-poisoning variant (IPUMS, β ∈ [0.05, 0.25]).
//!
//! Paper anchor (§VII-B): attacking GRR, the original MGA's MSE spans
//! 6.07 × 10⁻² – 1.08 while MGA-IPA stays at 5.16 × 10⁻⁴ – 6.21 × 10⁻⁴ —
//! a 2–4 order-of-magnitude gap. (At reduced scale the IPA numbers are
//! dominated by the LDP noise floor, which the table also reports.)

use ldp_attacks::AttackKind;
use ldp_bench::{Cli, BETA_GRID_WIDE};
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::table::fmt_mean;
use ldp_sim::{run_experiment, ExperimentConfig, PipelineOptions, Table};

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Figure 8: general MGA vs input-poisoning MGA-IPA (IPUMS)",
        "GRR: MGA MSE 6.07e-2..1.08 vs MGA-IPA 5.16e-4..6.21e-4 (paper, full scale)",
    );

    for protocol in ProtocolKind::ALL {
        let mut table = Table::new(["beta", "MSE MGA", "MSE MGA-IPA", "noise floor"]);
        for &beta in &BETA_GRID_WIDE {
            let mut mga = ExperimentConfig::paper_default(
                DatasetKind::Ipums,
                protocol,
                Some(AttackKind::Mga { r: 10 }),
            );
            cli.apply(&mut mga);
            mga.beta = beta;
            let mga_result = run_experiment(&mga, &PipelineOptions::default())?;

            let mut ipa = mga.clone();
            ipa.attack = Some(AttackKind::MgaIpa { r: 10 });
            let ipa_result = run_experiment(&ipa, &PipelineOptions::default())?;

            table.push_row([
                format!("{beta}"),
                fmt_mean(&mga_result.mse_before),
                fmt_mean(&ipa_result.mse_before),
                fmt_mean(&ipa_result.mse_genuine),
            ]);
        }
        cli.print_table(&format!("Fig. 8 ({protocol}, IPUMS)"), &table);
    }
    Ok(())
}
