//! Figure 8 — MGA vs MGA-IPA: poisoned-frequency MSE under the general
//! attack and its input-poisoning variant (IPUMS, β ∈ [0.05, 0.25]).
//! Grid definition: `ldp_sim::scenario::catalog`.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("fig8")
}
