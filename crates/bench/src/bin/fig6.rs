//! Figure 6 — the Fig. 5 parameter sweeps repeated on the Fire dataset.
//! Grid definition: `ldp_sim::scenario::catalog`.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("fig6")
}
