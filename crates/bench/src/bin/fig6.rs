//! Figure 6 — the Fig. 5 parameter sweeps repeated on the Fire dataset.
//!
//! Paper reading: same qualitative shapes as Fig. 5 with lower absolute
//! MSE levels (Fire has ≈ 1.7× the users and a flatter distribution).

use ldp_bench::{sweeps::run_parameter_sweeps, Cli};
use ldp_common::Result;
use ldp_datasets::DatasetKind;

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Figure 6: parameter impact on recovery from AA (Fire)",
        "same shapes as Fig. 5 at lower MSE levels (larger n, flatter distribution)",
    );
    run_parameter_sweeps(&cli, DatasetKind::Fire, "Fig. 6")
}
