//! Table I — MSE of LDPRecover executed on *unpoisoned* frequencies
//! (β = 0): the cost of running recovery when no attack happened.
//!
//! Paper values (full scale):
//!
//! | LDP | IPUMS before | IPUMS after | Fire before | Fire after |
//! |-----|--------------|-------------|-------------|------------|
//! | GRR | 5.89e-4      | 5.31e-4     | 1.68e-3     | 3.62e-5    |
//! | OUE | 3.81e-5      | 5.33e-4     | 2.93e-5     | 3.64e-5    |
//! | OLH | 1.21e-6      | 5.30e-4     | 6.87e-7     | 3.63e-5    |
//!
//! i.e. recovery helps GRR (whose raw variance is d-dependent and large)
//! and hurts the already-tight OUE/OLH estimates. Note the paper's OLH
//! "before" values sit well below the OUE ones although both protocols
//! share the same theoretical variance (Eqs. 7 vs 10) — our measured
//! numbers keep OUE ≈ OLH, see EXPERIMENTS.md.

use ldp_bench::Cli;
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::table::fmt_mean;
use ldp_sim::{run_experiment, ExperimentConfig, PipelineOptions, Table};

/// The paper's Table I values for the "paper vs measured" columns.
const PAPER: [(ProtocolKind, [f64; 4]); 3] = [
    (ProtocolKind::Grr, [5.89e-4, 5.31e-4, 1.68e-3, 3.62e-5]),
    (ProtocolKind::Oue, [3.81e-5, 5.33e-4, 2.93e-5, 3.64e-5]),
    (ProtocolKind::Olh, [1.21e-6, 5.30e-4, 6.87e-7, 3.63e-5]),
];

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Table I: LDPRecover on unpoisoned frequencies (beta = 0)",
        "recovery helps GRR, hurts OUE/OLH (see module docs for the paper's numbers)",
    );

    let mut table = Table::new([
        "LDP",
        "dataset",
        "Before-Rec (measured)",
        "Before-Rec (paper)",
        "After-Rec (measured)",
        "After-Rec (paper)",
    ]);
    for (protocol, paper_vals) in PAPER {
        for (di, dataset) in DatasetKind::ALL.into_iter().enumerate() {
            let mut config = ExperimentConfig::paper_default(dataset, protocol, None);
            cli.apply(&mut config);
            config.beta = 0.0;
            let result = run_experiment(&config, &PipelineOptions::default())?;
            table.push_row([
                protocol.name().to_string(),
                dataset.name().to_string(),
                fmt_mean(&result.mse_before),
                format!("{:.2e}", paper_vals[di * 2]),
                fmt_mean(&result.mse_recover),
                format!("{:.2e}", paper_vals[di * 2 + 1]),
            ]);
        }
    }
    cli.print_table("Table I", &table);
    println!(
        "note: paper values are full-scale; at --scale s the measured noise floor \
         is ≈ 1/s × the paper's."
    );
    Ok(())
}
