//! Table I — MSE of LDPRecover executed on *unpoisoned* frequencies
//! (β = 0): the cost of running recovery when no attack happened. The
//! printed table carries the paper's own full-scale values alongside the
//! measured ones. Grid definition: `ldp_sim::scenario::catalog`.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("table1")
}
