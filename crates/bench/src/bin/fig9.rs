//! Figure 9 — defending input poisoning: LDPRecover-KM vs plain k-means
//! vs no defense, under MGA-IPA on IPUMS, sample rate ξ ∈ [0.1, 0.9].
//! Grid definition: `ldp_sim::scenario::catalog`.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("fig9")
}
