//! Figure 9 — defending input poisoning: LDPRecover-KM vs plain k-means vs
//! no defense, under MGA-IPA on IPUMS, sample rate ξ ∈ [0.1, 0.9].
//!
//! Paper anchor (§VII-B): integrating LDPRecover with the k-means subset
//! defense improves recovery accuracy by ≈ 48.9% over k-means alone when
//! MGA-IPA attacks GRR.

use ldp_attacks::AttackKind;
use ldp_bench::{Cli, XI_GRID};
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::table::{fmt_mean, fmt_stat};
use ldp_sim::{run_experiment, ExperimentConfig, PipelineOptions, Table};
use ldprecover::KMeansDefense;

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Figure 9: LDPRecover-KM vs k-means under MGA-IPA (IPUMS)",
        "LDPRecover-KM ≈ 48.9% better than k-means alone for GRR (paper)",
    );

    for protocol in ProtocolKind::ALL {
        let mut table = Table::new(["xi", "MSE before", "MSE k-means", "MSE LDPRecover-KM"]);
        for &xi in &XI_GRID {
            let mut config = ExperimentConfig::paper_default(
                DatasetKind::Ipums,
                protocol,
                Some(AttackKind::MgaIpa { r: 10 }),
            );
            cli.apply(&mut config);
            // Keep the clustering cost bounded: G = 20 subsets of rate ξ.
            let options = PipelineOptions {
                kmeans: Some(KMeansDefense::new(20, xi)?),
                ..Default::default()
            };
            let result = run_experiment(&config, &options)?;
            table.push_row([
                format!("{xi}"),
                fmt_mean(&result.mse_before),
                fmt_stat(&result.mse_kmeans),
                fmt_stat(&result.mse_recover_km),
            ]);
        }
        cli.print_table(&format!("Fig. 9 ({protocol}, IPUMS)"), &table);
    }
    Ok(())
}
