//! Runs the complete reproduction: every table and figure of the paper's
//! evaluation, in order. Accepts the common flags of all `fig*` binaries;
//! `--quick` produces a fast smoke run, `--full` the paper-scale run.
//!
//! ```text
//! cargo run --release -p ldp-bench --bin repro -- --quick
//! ```

use ldp_bench::Cli;
use ldp_common::Result;
use std::process::Command;

/// The paper's experiments in presentation order, then the extensions.
const EXPERIMENTS: [&str; 11] = [
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "fig8",
    "fig9",
    "fig10",
    "ablations",
    "kv_extension",
];

fn main() -> Result<()> {
    // Validate flags once up front (each child re-parses its own copy).
    let _cli = Cli::parse()?;
    let args: Vec<String> = std::env::args().skip(1).collect();

    let exe = std::env::current_exe()?;
    let bin_dir = exe.parent().expect("binary directory");

    for name in EXPERIMENTS {
        let path = bin_dir.join(name);
        println!("################################################################");
        println!("## {name}");
        println!("################################################################");
        let status = Command::new(&path).args(&args).status()?;
        if !status.success() {
            return Err(ldp_common::LdpError::invalid(format!(
                "{name} exited with {status}"
            )));
        }
    }
    println!(
        "repro complete: all {} experiments finished.",
        EXPERIMENTS.len()
    );
    Ok(())
}
