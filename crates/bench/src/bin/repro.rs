//! Runs the complete reproduction: every table and figure of the paper's
//! evaluation, in catalog order, in-process through the scenario engine.
//! Accepts the common flags of all `fig*` binaries; `--quick` produces a
//! fast smoke run, `--full` (or `--scale paper`) the paper-scale run, and
//! `--json DIR` writes one structured report per figure.
//!
//! ```text
//! cargo run --release -p ldp-bench --bin repro -- --quick
//! cargo run --release -p ldp-bench --bin repro -- --scale small --json reports
//! ```

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_all_figures()
}
