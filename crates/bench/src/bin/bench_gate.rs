//! `bench_gate` — the perf-trajectory regression gate.
//!
//! Compares freshly emitted `BENCH_<suite>.json` files (written by the
//! vendored criterion harness when `LDP_BENCH_JSON_DIR` is set) against
//! the blessed trajectory checked in under `crates/bench/trajectory/`.
//!
//! ```text
//! LDP_BENCH_JSON_DIR=bench-out cargo bench --bench aggregation -p ldp-bench
//! cargo run --release -p ldp-bench --bin bench_gate -- bench-out
//! LDP_BLESS_BENCH=1 cargo run -p ldp-bench --bin bench_gate -- bench-out
//! ```
//!
//! The comparison works on `score` — median ns/iteration normalized by
//! the in-process calibration microbench — so it is stable across
//! machines of different absolute speeds. The gate is one-sided with a
//! generous band (`TOLERANCE`×): only genuine regressions fail; noise
//! and modest machine-to-machine variation do not. Large *improvements*
//! are reported as a hint to re-bless so the trajectory keeps ratcheting
//! downward. `LDP_BLESS_BENCH=1` rewrites the blessed files from the
//! emitted ones.

use ldp_common::{Json, LdpError, Result};
use std::path::{Path, PathBuf};

/// A case fails when its normalized score exceeds the blessed score by
/// more than this factor. Wide on purpose: scores already factor out
/// machine speed, but cache hierarchy and allocator behaviour still
/// differ between hosts; the gate exists to catch algorithmic
/// regressions (an O(n·d) loop sneaking back in is a 100×+ jump at
/// n=10⁶, far outside any band this wide).
const TOLERANCE: f64 = 4.0;

/// An improvement beyond this factor earns a re-bless hint.
const IMPROVEMENT_HINT: f64 = 4.0;

/// One `{id, median_ns, score}` entry of a trajectory file.
struct Case {
    id: String,
    median_ns: f64,
    score: f64,
}

fn blessed_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("trajectory")
}

fn parse_cases(path: &Path) -> Result<Vec<Case>> {
    let text = std::fs::read_to_string(path)?;
    let json = Json::parse(&text)?;
    let cases = json
        .get("cases")
        .and_then(Json::as_array)
        .ok_or_else(|| LdpError::invalid(format!("{}: no `cases` array", path.display())))?;
    cases
        .iter()
        .map(|c| {
            let field = |key: &str| {
                c.get(key).ok_or_else(|| {
                    LdpError::invalid(format!("{}: case missing `{key}`", path.display()))
                })
            };
            Ok(Case {
                id: field("id")?
                    .as_str()
                    .ok_or_else(|| LdpError::invalid("`id` must be a string"))?
                    .to_string(),
                median_ns: field("median_ns")?
                    .as_f64()
                    .ok_or_else(|| LdpError::invalid("`median_ns` must be a number"))?,
                score: field("score")?
                    .as_f64()
                    .ok_or_else(|| LdpError::invalid("`score` must be a number"))?,
            })
        })
        .collect()
}

/// `BENCH_*.json` filenames in `dir`, sorted for stable output.
fn bench_files(dir: &Path) -> Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// Rejects scores the ratio test would silently mishandle: a NaN
/// propagates to a never-failing comparison, and a zero/negative blessed
/// score used to be clamped to `1e-12`, turning any emitted value into an
/// astronomically "failing" — or, for a corrupt emitted zero, silently
/// passing — ratio. Either way the gate's verdict would be meaningless,
/// so both sides must be finite and strictly positive.
///
/// # Errors
/// [`LdpError::InvalidParameter`] naming the case and the bad value.
fn check_score(what: &str, id: &str, score: f64) -> Result<()> {
    if !score.is_finite() || score <= 0.0 {
        return Err(LdpError::invalid(format!(
            "{what} score for `{id}` is {score}, not a finite positive number — \
             re-bless the trajectory or fix the baseline before gating"
        )));
    }
    Ok(())
}

/// Compares one emitted suite against its blessed counterpart; returns
/// the number of failures.
fn gate_suite(name: &str, emitted_path: &Path, blessed_path: &Path) -> Result<usize> {
    let emitted = parse_cases(emitted_path)?;
    let blessed = parse_cases(blessed_path)?;
    let mut failures = 0usize;
    println!("{name}:");
    for b in &blessed {
        let Some(e) = emitted.iter().find(|e| e.id == b.id) else {
            println!("  FAIL {:<40} missing from the emitted run", b.id);
            failures += 1;
            continue;
        };
        check_score("blessed", &b.id, b.score)?;
        check_score("emitted", &e.id, e.score)?;
        let ratio = e.score / b.score;
        let (tag, note) = if ratio > TOLERANCE {
            failures += 1;
            ("FAIL", "")
        } else if ratio < 1.0 / IMPROVEMENT_HINT {
            ("  ok", "  ← big improvement; consider LDP_BLESS_BENCH=1")
        } else {
            ("  ok", "")
        };
        println!(
            "  {tag} {:<40} score {:>10.3} vs blessed {:>10.3}  ({ratio:.2}x, median {:.0} ns){note}",
            e.id, e.score, b.score, e.median_ns,
        );
    }
    for e in &emitted {
        if !blessed.iter().any(|b| b.id == e.id) {
            println!(
                "  FAIL {:<40} not in the blessed trajectory (bless with LDP_BLESS_BENCH=1)",
                e.id
            );
            failures += 1;
        }
    }
    Ok(failures)
}

/// Copies the emitted trajectory files into the blessed directory via
/// write_atomic — an interrupted bless must not leave a half-copied
/// trajectory the next gate run trusts. Returns the blessed paths.
fn bless(names: &[String], emitted_dir: &Path, blessed_dir: &Path) -> Result<Vec<PathBuf>> {
    std::fs::create_dir_all(blessed_dir)?;
    let mut written = Vec::with_capacity(names.len());
    for name in names {
        let contents = std::fs::read_to_string(emitted_dir.join(name))?;
        let target = blessed_dir.join(name);
        ldp_common::write_atomic(&target, &contents)?;
        written.push(target);
    }
    Ok(written)
}

fn main() -> Result<()> {
    let emitted_dir = PathBuf::from(std::env::args().nth(1).ok_or_else(|| {
        LdpError::invalid("usage: bench_gate <dir with emitted BENCH_*.json files>")
    })?);
    let names = bench_files(&emitted_dir)?;
    if names.is_empty() {
        return Err(LdpError::invalid(format!(
            "no BENCH_*.json files in {} — run the benches with LDP_BENCH_JSON_DIR set",
            emitted_dir.display()
        )));
    }

    let blessed = blessed_dir();
    if std::env::var("LDP_BLESS_BENCH").map(|v| v == "1") == Ok(true) {
        for name in bless(&names, &emitted_dir, &blessed)? {
            println!("blessed {}", name.display());
        }
        return Ok(());
    }

    let mut failures = 0usize;
    for name in &names {
        let blessed_path = blessed.join(name);
        if !blessed_path.is_file() {
            println!("FAIL {name}: no blessed trajectory (bless with LDP_BLESS_BENCH=1)");
            failures += 1;
            continue;
        }
        failures += gate_suite(name, &emitted_dir.join(name), &blessed_path)?;
    }
    // Coverage in the other direction: a blessed suite that stopped being
    // emitted is a silently-lost gate.
    for name in bench_files(&blessed)? {
        if !names.contains(&name) {
            println!("FAIL {name}: blessed but not emitted by this run");
            failures += 1;
        }
    }

    if failures > 0 {
        return Err(LdpError::invalid(format!(
            "perf trajectory: {failures} case(s) regressed beyond {TOLERANCE}x \
             (or coverage changed); re-bless with LDP_BLESS_BENCH=1 only if intentional"
        )));
    }
    println!("perf trajectory: all suites within {TOLERANCE}x of blessed");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bless_is_crash_atomic_and_replaces_stale_files() {
        // Blessing goes through write_atomic, not fs::copy: after the
        // call each blessed file is the complete emitted document, any
        // stale previous bless is fully replaced, and no staging temp
        // file survives (the crash window is confined to temp names the
        // gate never reads).
        let base = std::env::temp_dir().join("ldp_bench_gate_bless_atomic_test");
        let _ = std::fs::remove_dir_all(&base);
        let emitted = base.join("emitted");
        let blessed = base.join("blessed");
        std::fs::create_dir_all(&emitted).unwrap();
        std::fs::create_dir_all(&blessed).unwrap();
        let doc = r#"{"cases": [{"id": "a", "median_ns": 10.0, "score": 1.0}]}"#;
        std::fs::write(emitted.join("BENCH_x.json"), doc).unwrap();
        std::fs::write(blessed.join("BENCH_x.json"), "{\"stale\": true}").unwrap();
        let written = bless(&["BENCH_x.json".to_string()], &emitted, &blessed).unwrap();
        assert_eq!(written, [blessed.join("BENCH_x.json")]);
        assert_eq!(std::fs::read_to_string(&written[0]).unwrap(), doc);
        let leftovers: Vec<_> = std::fs::read_dir(&blessed)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "staging files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn check_score_accepts_positive_finite() {
        check_score("blessed", "case", 1e-9).unwrap();
        check_score("emitted", "case", 1234.5).unwrap();
    }

    #[test]
    fn check_score_rejects_every_degenerate_value() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = check_score("blessed", "aggregate/HR/n=1000000", bad)
                .expect_err(&format!("{bad} must be rejected"));
            let msg = err.to_string();
            assert!(
                msg.contains("aggregate/HR/n=1000000") && msg.contains("re-bless"),
                "unhelpful error: {msg}"
            );
        }
    }

    #[test]
    fn gate_suite_fails_loudly_on_corrupt_blessed_score() {
        // End-to-end through the file layer: a blessed score of 0 must
        // error out instead of silently passing (the old max(1e-12)
        // clamp made `0 / 0-clamped` look like a huge regression and a
        // corrupt emitted 0 vs healthy blessed look like a huge win).
        let dir = std::env::temp_dir().join("ldp_bench_gate_zero_score_test");
        std::fs::create_dir_all(&dir).unwrap();
        let blessed = dir.join("blessed.json");
        let emitted = dir.join("emitted.json");
        std::fs::write(
            &blessed,
            r#"{"cases": [{"id": "a", "median_ns": 10.0, "score": 0.0}]}"#,
        )
        .unwrap();
        std::fs::write(
            &emitted,
            r#"{"cases": [{"id": "a", "median_ns": 10.0, "score": 1.0}]}"#,
        )
        .unwrap();
        let err = gate_suite("suite", &emitted, &blessed).expect_err("must reject");
        assert!(err.to_string().contains("blessed score"), "{err}");
    }
}
