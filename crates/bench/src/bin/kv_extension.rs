//! Extension experiment — key-value LDP under M2GA poisoning and
//! LDPRecover-KV (the base paper's stated future work; see the `ldp-kv`
//! crate docs). Defined as custom scenario cells in
//! `ldp_sim::scenario::catalog`.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("kv_extension")
}
