//! Extension experiment — key-value LDP under M2GA poisoning and
//! LDPRecover-KV (the base paper's stated future work; see
//! `ldp-kv` crate docs and EXPERIMENTS.md "Key-value extension").
//!
//! Reports, per β, the target-key frequency gain and mean shift before and
//! after recovery, plus the probe-anomaly localization accuracy.

use ldp_bench::{Cli, BETA_GRID_WIDE};
use ldp_common::rng::{derive_seed, rng_from_seed};
use ldp_common::sampling::{zipf_weights, AliasTable};
use ldp_common::{Domain, Result};
use ldp_kv::{KvProtocol, KvRecover, M2ga};
use ldp_sim::Table;
use rand::Rng;

const D: usize = 50;
const BASE_USERS: usize = 200_000;
const EPSILON: f64 = 2.0;

struct Cell {
    fg_before: f64,
    fg_after: f64,
    mean_shift_before: f64,
    mean_shift_after: f64,
    probe_accuracy: f64,
}

fn run_cell(beta: f64, trials: usize, scale: f64, seed: u64) -> Result<Cell> {
    let n = ((BASE_USERS as f64) * scale).round() as usize;
    let m = ((beta / (1.0 - beta)) * n as f64).round() as usize;
    let domain = Domain::new(D)?;
    let kv = KvProtocol::new(EPSILON, domain)?;
    let weights = zipf_weights(D, 1.0);
    let sampler = AliasTable::new(&weights)?;
    let mean_of = |k: usize| if k.is_multiple_of(2) { 0.4 } else { -0.4 };

    let mut acc = Cell {
        fg_before: 0.0,
        fg_after: 0.0,
        mean_shift_before: 0.0,
        mean_shift_after: 0.0,
        probe_accuracy: 0.0,
    };
    for trial in 0..trials {
        let mut rng = rng_from_seed(derive_seed(seed, trial as u64));
        let mut reports = Vec::with_capacity(n + m);
        for _ in 0..n {
            let key = sampler.sample(&mut rng);
            reports.push(kv.perturb(key, mean_of(key), &mut rng)?);
        }
        let clean = kv.estimate(&kv.aggregate(&reports)?)?;

        let target = D - 1;
        let attack = M2ga::new(vec![target]);
        reports.extend(attack.craft(&kv, m, &mut rng));
        let agg = kv.aggregate(&reports)?;
        let poisoned = kv.estimate(&agg)?;
        let recovered = KvRecover::default().recover(&kv, &agg)?;

        acc.fg_before += poisoned.frequencies[target] - clean.frequencies[target];
        acc.fg_after += recovered.frequencies[target] - clean.frequencies[target];
        acc.mean_shift_before += poisoned.means[target] - mean_of(target);
        acc.mean_shift_after += recovered.means[target] - mean_of(target);
        acc.probe_accuracy += if m > 0 {
            (recovered.malicious_probes[target] / m as f64).min(2.0)
        } else {
            1.0
        };
    }
    let t = trials as f64;
    acc.fg_before /= t;
    acc.fg_after /= t;
    acc.mean_shift_before /= t;
    acc.mean_shift_after /= t;
    acc.probe_accuracy /= t;
    Ok(acc)
}

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Extension: key-value LDP (PrivKV-style) under M2GA + LDPRecover-KV",
        "future work of the base paper; d=50, eps=2.0, Zipf(1) keys, means ±0.4",
    );

    let mut table = Table::new([
        "beta",
        "FG before",
        "FG after",
        "mean shift before",
        "mean shift after",
        "probe-anomaly recall",
    ]);
    for &beta in &BETA_GRID_WIDE {
        let cell = run_cell(beta, cli.trials, cli.scale, cli.seed)?;
        table.push_row([
            format!("{beta}"),
            format!("{:+.4}", cell.fg_before),
            format!("{:+.4}", cell.fg_after),
            format!("{:+.3}", cell.mean_shift_before),
            format!("{:+.3}", cell.mean_shift_after),
            format!("{:.2}", cell.probe_accuracy),
        ]);
    }
    cli.print_table("Key-value extension (target = rarest key)", &table);

    // Keep the harness honest about what the probe-anomaly defense cannot
    // see: attackers spreading across ≥ d/2 keys defeat the median
    // baseline (documented breakdown point).
    let mut rng = rng_from_seed(cli.seed);
    let wide: usize = rng.gen_range(D / 2..D);
    println!("note: probe-anomaly baseline breaks down past ~d/2 targeted keys ({wide}+ of {D}).");
    Ok(())
}
