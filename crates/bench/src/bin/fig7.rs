//! Figure 7 — MSE between the *estimated* malicious frequencies and the
//! *true* malicious aggregated frequencies, under MGA on IPUMS,
//! β ∈ [0.05, 0.25]. Grid definition: `ldp_sim::scenario::catalog`.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("fig7")
}
