//! Figure 7 — MSE between the *estimated* malicious frequencies
//! (LDPRecover's uniform spread vs LDPRecover\*'s target-aware model) and
//! the *true* malicious aggregated frequencies, under MGA on IPUMS,
//! β ∈ [0.05, 0.25].
//!
//! Paper reading: LDPRecover\* estimates malicious frequencies one-plus
//! orders of magnitude more accurately than LDPRecover across the whole β
//! range and all three protocols — the mechanism behind its lower MSE/FG.

use ldp_attacks::AttackKind;
use ldp_bench::{Cli, BETA_GRID_WIDE};
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::table::fmt_stat;
use ldp_sim::{run_experiment, ExperimentConfig, PipelineOptions, Table};

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Figure 7: accuracy of the estimated malicious frequencies (IPUMS, MGA)",
        "LDPRecover* beats LDPRecover by ≥ 1 order of magnitude across beta",
    );

    for protocol in ProtocolKind::ALL {
        let mut table = Table::new([
            "beta",
            "malicious-MSE LDPRecover",
            "malicious-MSE LDPRecover*",
        ]);
        for &beta in &BETA_GRID_WIDE {
            let mut config = ExperimentConfig::paper_default(
                DatasetKind::Ipums,
                protocol,
                Some(AttackKind::Mga { r: 10 }),
            );
            cli.apply(&mut config);
            config.beta = beta;
            let result = run_experiment(&config, &PipelineOptions::recovery_only())?;
            table.push_row([
                format!("{beta}"),
                fmt_stat(&result.malicious_mse_recover),
                fmt_stat(&result.malicious_mse_star),
            ]);
        }
        cli.print_table(&format!("Fig. 7 ({protocol}, IPUMS)"), &table);
    }
    Ok(())
}
