//! Figure 4 — frequency gain (FG) of the four methods under MGA on both
//! datasets.
//!
//! Paper reading: before-recovery FG ≈ 8 (GRR) / ≈ 4 (OUE, OLH) on IPUMS
//! and up to ≈ 30 (GRR) on Fire; LDPRecover collapses the gain,
//! LDPRecover\* drives it to ≈ 0 or negative, Detection lands in between.

use ldp_attacks::AttackKind;
use ldp_bench::Cli;
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::table::fmt_stat;
use ldp_sim::{run_experiment, ExperimentConfig, PipelineOptions, Table};

fn main() -> Result<()> {
    let cli = Cli::parse()?;
    cli.print_header(
        "Figure 4: frequency gain under MGA (r = 10)",
        "IPUMS before: GRR ≈ 8, OUE/OLH ≈ 4; Fire GRR ≈ 30; recovered ≈ 0, star ≤ 0",
    );

    for dataset in DatasetKind::ALL {
        let mut table = Table::new([
            "cell",
            "FG before",
            "FG Detection",
            "FG LDPRecover",
            "FG LDPRecover*",
        ]);
        for protocol in ProtocolKind::ALL {
            let mut config =
                ExperimentConfig::paper_default(dataset, protocol, Some(AttackKind::Mga { r: 10 }));
            cli.apply(&mut config);
            let result = run_experiment(&config, &PipelineOptions::full_comparison())?;
            table.push_row([
                config.label(),
                fmt_stat(&result.fg_before),
                fmt_stat(&result.fg_detection),
                fmt_stat(&result.fg_recover),
                fmt_stat(&result.fg_star),
            ]);
        }
        cli.print_table(&format!("Fig. 4 ({dataset} dataset)"), &table);
    }
    Ok(())
}
