//! Figure 4 — frequency gain (FG) of the four methods under MGA on both
//! datasets. Grid definition: `ldp_sim::scenario::catalog`.

use ldp_common::Result;

fn main() -> Result<()> {
    ldp_bench::run_figure("fig4")
}
