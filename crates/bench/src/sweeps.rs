//! Shared implementation of the Fig. 5 / Fig. 6 parameter sweeps:
//! impact of β, ε, η on recovery from the adaptive attack, per protocol.

use ldp_attacks::AttackKind;
use ldp_common::Result;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::table::{fmt_mean, fmt_stat};
use ldp_sim::{run_experiment, runner::run_eta_sweep, ExperimentConfig, PipelineOptions, Table};

use crate::{Cli, BETA_GRID_FINE, EPSILON_GRID, ETA_GRID};

/// Runs all three sweeps for one dataset (Fig. 5 = IPUMS, Fig. 6 = Fire).
///
/// The sweep arms retain no per-user reports, so the default
/// `AggregationMode::Auto` routes every trial through the count-based
/// batched engine — full-scale (`--scale 1.0`) β/ε/η grids run in
/// milliseconds of aggregation per trial instead of minutes.
///
/// # Errors
/// Propagates experiment failures.
pub fn run_parameter_sweeps(cli: &Cli, dataset: DatasetKind, figure: &str) -> Result<()> {
    let options = PipelineOptions::recovery_only();

    for protocol in ProtocolKind::ALL {
        // β sweep (first column of the figure).
        let mut beta_table =
            Table::new(["beta", "MSE before", "MSE LDPRecover", "MSE LDPRecover*"]);
        for &beta in &BETA_GRID_FINE {
            let mut config =
                ExperimentConfig::paper_default(dataset, protocol, Some(AttackKind::Adaptive));
            cli.apply(&mut config);
            config.beta = beta;
            let result = run_experiment(&config, &options)?;
            beta_table.push_row([
                format!("{beta}"),
                fmt_mean(&result.mse_before),
                fmt_mean(&result.mse_recover),
                fmt_stat(&result.mse_star),
            ]);
        }
        cli.print_table(
            &format!("{figure} AA-{protocol} ({dataset}): impact of beta"),
            &beta_table,
        );

        // ε sweep (second column).
        let mut eps_table =
            Table::new(["epsilon", "MSE before", "MSE LDPRecover", "MSE LDPRecover*"]);
        for &epsilon in &EPSILON_GRID {
            let mut config =
                ExperimentConfig::paper_default(dataset, protocol, Some(AttackKind::Adaptive));
            cli.apply(&mut config);
            config.epsilon = epsilon;
            let result = run_experiment(&config, &options)?;
            eps_table.push_row([
                format!("{epsilon}"),
                fmt_mean(&result.mse_before),
                fmt_mean(&result.mse_recover),
                fmt_stat(&result.mse_star),
            ]);
        }
        cli.print_table(
            &format!("{figure} AA-{protocol} ({dataset}): impact of epsilon"),
            &eps_table,
        );

        // η sweep (third column) — reuses one aggregation per trial.
        let mut eta_table = Table::new(["eta", "MSE before", "MSE LDPRecover", "MSE LDPRecover*"]);
        let mut config =
            ExperimentConfig::paper_default(dataset, protocol, Some(AttackKind::Adaptive));
        cli.apply(&mut config);
        let results = run_eta_sweep(&config, &ETA_GRID, &options)?;
        for result in &results {
            eta_table.push_row([
                format!("{}", result.config.eta),
                fmt_mean(&result.mse_before),
                fmt_mean(&result.mse_recover),
                fmt_stat(&result.mse_star),
            ]);
        }
        cli.print_table(
            &format!("{figure} AA-{protocol} ({dataset}): impact of eta"),
            &eta_table,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_complete_at_miniature_scale() {
        // Smoke the full β/ε/η grid machinery end to end (1 trial, 0.5% of
        // the population) — the fig5/fig6 binaries run exactly this path.
        let cli = Cli {
            trials: 1,
            scale: 0.005,
            seed: 1,
            csv: true,
        };
        run_parameter_sweeps(&cli, DatasetKind::Ipums, "test").unwrap();
    }
}
