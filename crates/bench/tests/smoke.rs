//! Smoke tests for the figure/table reproductions: every catalog scenario
//! runs end to end, in-process, at a miniature scale.
//!
//! These used to spawn the real binaries behind `#[ignore]`; since the
//! binaries are now thin shells over the shared scenario engine, the same
//! pipelines run directly through `run_scenario` — one tiny trial per
//! cell — inside plain `cargo test -q`. Binary-level flag handling keeps
//! two `#[ignore]`-gated spawn tests below.

use ldp_sim::scenario::{catalog, run_scenario, RunScale, ScaleSpec};
use std::process::Command;

/// Runs one catalog figure with a single tiny trial per cell and asserts
/// a structurally complete report.
fn smoke(id: &str) {
    let scenario = catalog::scenario(id).unwrap_or_else(|e| panic!("{id}: {e}"));
    let scale = RunScale {
        trials: 1,
        seed: 7,
        scale: ScaleSpec::Fraction(0.002),
    };
    let report = run_scenario(&scenario, &scale).unwrap_or_else(|e| panic!("{id}: {e}"));
    assert!(!report.cells.is_empty(), "{id}: no cells");
    for cell in &report.cells {
        assert!(!cell.metrics.is_empty(), "{id}/{}: no metrics", cell.id);
        for (metric, stats) in &cell.metrics {
            assert_eq!(stats.count, 1, "{id}/{}/{metric}", cell.id);
            assert!(
                stats.mean.is_finite(),
                "{id}/{}/{metric}: non-finite mean",
                cell.id
            );
        }
    }
    assert!(!report.grids.is_empty(), "{id}: no grids");
    for grid in &report.grids {
        assert!(!grid.table.is_empty(), "{id}/{}: empty table", grid.title);
    }
}

macro_rules! smoke_tests {
    ($($name:ident => $figure:literal),* $(,)?) => {$(
        #[test]
        fn $name() {
            smoke($figure);
        }
    )*};
}

smoke_tests! {
    fig3_pipeline_runs_one_tiny_trial => "fig3",
    fig4_pipeline_runs_one_tiny_trial => "fig4",
    fig5_pipeline_runs_one_tiny_trial => "fig5",
    fig6_pipeline_runs_one_tiny_trial => "fig6",
    fig7_pipeline_runs_one_tiny_trial => "fig7",
    fig8_pipeline_runs_one_tiny_trial => "fig8",
    fig9_pipeline_runs_one_tiny_trial => "fig9",
    fig10_pipeline_runs_one_tiny_trial => "fig10",
    table1_pipeline_runs_one_tiny_trial => "table1",
    ablations_pipeline_runs_one_tiny_trial => "ablations",
    kv_extension_pipeline_runs_one_tiny_trial => "kv_extension",
    stream_online_pipeline_runs_one_tiny_trial => "stream_online",
    stream_windowed_pipeline_runs_one_tiny_trial => "stream_windowed",
    defense_arms_pipeline_runs_one_tiny_trial => "defense_arms",
}

#[test]
fn repro_covers_every_figure_exactly_once() {
    // The `repro` binary iterates FIGURE_IDS verbatim; guard the index.
    let mut seen = std::collections::HashSet::new();
    for id in catalog::FIGURE_IDS {
        assert!(seen.insert(id), "duplicate figure id {id}");
        catalog::scenario(id).unwrap();
    }
    assert_eq!(seen.len(), 14);
}

#[test]
#[ignore = "spawns the repro binaries; run with --ignored"]
fn binaries_reject_malformed_flags() {
    // Arg parsing must fail loudly, not fall through to defaults.
    for (bin, args) in [
        (env!("CARGO_BIN_EXE_fig3"), ["--frobnicate"].as_slice()),
        (env!("CARGO_BIN_EXE_table1"), ["--trials", "0"].as_slice()),
        (env!("CARGO_BIN_EXE_repro"), ["--scale", "2.0"].as_slice()),
        (
            env!("CARGO_BIN_EXE_repro"),
            ["--scale", "medium"].as_slice(),
        ),
    ] {
        let output = Command::new(bin).args(args).output().expect("spawn");
        assert!(
            !output.status.success(),
            "{bin} {args:?} should exit non-zero"
        );
    }
}

#[test]
#[ignore = "spawns the fig3 binary; run with --ignored"]
fn csv_and_json_modes_emit_structured_output() {
    let dir = std::env::temp_dir().join("ldprecover-smoke-json");
    let json_path = dir.join("fig3.json");
    let _ = std::fs::remove_file(&json_path);
    let output = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args(["--trials", "1", "--scale", "0.002", "--csv"])
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("spawn fig3");
    assert!(
        output.status.success(),
        "stderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.lines().any(|l| l.matches(',').count() >= 2),
        "--csv produced no comma-separated rows:\n{stdout}"
    );
    let json = std::fs::read_to_string(&json_path).expect("json report written");
    assert!(json.contains("\"figure\": \"fig3\""), "{json}");
}
