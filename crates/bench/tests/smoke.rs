//! `#[ignore]`-gated smoke tests for the figure/table reproduction
//! binaries: each must parse its arguments and complete one tiny trial.
//!
//! These spawn the real binaries (via `CARGO_BIN_EXE_*`, so `cargo test`
//! builds them first) at `--trials 1 --scale 0.005` — big enough to
//! exercise the full pipeline, small enough that the whole set runs in a
//! few seconds. They are ignored by default so `cargo test -q` stays lean;
//! CI runs them explicitly with `cargo test -p ldp-bench -- --ignored`.

use std::process::Command;

/// Runs one binary with tiny-trial flags and asserts a clean exit plus
/// non-empty tabular output.
fn smoke(bin_path: &str) {
    let output = Command::new(bin_path)
        .args(["--trials", "1", "--scale", "0.005", "--seed", "7"])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin_path}: {e}"));
    assert!(
        output.status.success(),
        "{bin_path} exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.lines().count() > 3,
        "{bin_path} produced no table output:\n{stdout}"
    );
}

macro_rules! smoke_tests {
    ($($name:ident => $bin:literal),* $(,)?) => {$(
        #[test]
        #[ignore = "spawns the release-grade repro binary; run with --ignored"]
        fn $name() {
            smoke(env!(concat!("CARGO_BIN_EXE_", $bin)));
        }
    )*};
}

smoke_tests! {
    repro_runs_one_tiny_trial => "repro",
    fig3_runs_one_tiny_trial => "fig3",
    fig4_runs_one_tiny_trial => "fig4",
    fig5_runs_one_tiny_trial => "fig5",
    fig6_runs_one_tiny_trial => "fig6",
    fig7_runs_one_tiny_trial => "fig7",
    fig8_runs_one_tiny_trial => "fig8",
    fig9_runs_one_tiny_trial => "fig9",
    fig10_runs_one_tiny_trial => "fig10",
    table1_runs_one_tiny_trial => "table1",
    ablations_runs_one_tiny_trial => "ablations",
    kv_extension_runs_one_tiny_trial => "kv_extension",
}

#[test]
#[ignore = "spawns the release-grade repro binary; run with --ignored"]
fn binaries_reject_malformed_flags() {
    // Arg parsing must fail loudly, not fall through to defaults.
    for (bin, args) in [
        (env!("CARGO_BIN_EXE_fig3"), ["--frobnicate"].as_slice()),
        (env!("CARGO_BIN_EXE_table1"), ["--trials", "0"].as_slice()),
        (env!("CARGO_BIN_EXE_repro"), ["--scale", "2.0"].as_slice()),
    ] {
        let output = Command::new(bin).args(args).output().expect("spawn");
        assert!(
            !output.status.success(),
            "{bin} {args:?} should exit non-zero"
        );
    }
}

#[test]
#[ignore = "spawns the release-grade repro binary; run with --ignored"]
fn csv_mode_emits_csv() {
    let output = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args(["--trials", "1", "--scale", "0.005", "--csv"])
        .output()
        .expect("spawn fig3");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.lines().any(|l| l.matches(',').count() >= 2),
        "--csv produced no comma-separated rows:\n{stdout}"
    );
}
