//! Criterion end-to-end benchmark: one full Fig. 3 cell (perturb → poison
//! → aggregate → recover) at reduced population, per protocol — the number
//! that budgets full-figure runtimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_attacks::AttackKind;
use ldp_common::rng::rng_from_seed;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::{pipeline::run_trial, ExperimentConfig, PipelineOptions};
use std::hint::black_box;

fn bench_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_cell_trial_scale_0.01");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for protocol in ProtocolKind::ALL {
        let mut config = ExperimentConfig::paper_default(
            DatasetKind::Ipums,
            protocol,
            Some(AttackKind::Adaptive),
        );
        config.scale = 0.01;
        let options = PipelineOptions::recovery_only();
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.name()),
            &(),
            |b, ()| {
                let mut rng = rng_from_seed(5);
                b.iter(|| black_box(run_trial(&config, &options, &mut rng).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_eta_sweep_reuse(c: &mut Criterion) {
    // The aggregation-reuse optimization: recovery alone vs a full trial.
    let mut config = ExperimentConfig::paper_default(
        DatasetKind::Ipums,
        ProtocolKind::Grr,
        Some(AttackKind::Adaptive),
    );
    config.scale = 0.01;
    let options = PipelineOptions::recovery_only();
    let mut rng = rng_from_seed(6);
    let aggregates = ldp_sim::pipeline::run_aggregation(&config, &options, &mut rng).unwrap();

    let mut group = c.benchmark_group("eta_sweep");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("recovery_half_only", |b| {
        let mut rng = rng_from_seed(7);
        b.iter(|| {
            black_box(
                ldp_sim::pipeline::apply_recoveries(&aggregates, 0.2, &options, &mut rng).unwrap(),
            )
        });
    });
    group.bench_function("full_trial", |b| {
        let mut rng = rng_from_seed(8);
        b.iter(|| black_box(run_trial(&config, &options, &mut rng).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_trial, bench_eta_sweep_reuse);
criterion_main!(benches);
