//! Streaming ingestion throughput: epochs per second as a function of the
//! shard count and the per-epoch traffic volume.
//!
//! One epoch = every shard samples its population histogram and batched
//! support-count delta from its own derived stream, the deltas merge, and
//! recovery runs on the cumulative counts. For GRR/OUE the per-shard work
//! is `O(d)`–`O(d·log n)`, so epoch cost should be flat in `n` up to the
//! paper-scale 10⁶ users — the property that makes the streaming engine
//! viable at millions-of-users traffic. Shards ∈ {1, 4, 16} additionally
//! quantify the fan-out overhead (thread scheduling vs. shard-local
//! sampling) at fixed total traffic.
//!
//! Run with `cargo bench --bench streaming`; CI only compiles it
//! (`cargo bench --no-run`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldp_attacks::AttackKind;
use ldp_common::Json;
use ldp_datasets::DatasetKind;
use ldp_protocols::ProtocolKind;
use ldp_sim::stream::coordinator::{run_stream, CoordinatorConfig, WorkerLauncher};
use ldp_sim::stream::{StreamEngine, StreamSpec, WindowMode};
use std::hint::black_box;
use std::path::PathBuf;

/// Shard layouts of the comparison.
const SHARDS: [usize; 3] = [1, 4, 16];

/// Per-epoch traffic volumes, up to 10⁶ users (beyond the static corpus:
/// counts draw with replacement from the realized frequencies).
const USERS_PER_EPOCH: [usize; 3] = [10_000, 100_000, 1_000_000];

fn spec(protocol: ProtocolKind, shards: usize, users_per_epoch: usize) -> StreamSpec {
    StreamSpec {
        dataset: DatasetKind::Ipums,
        protocol,
        epsilon: 0.5,
        attack: Some(AttackKind::Adaptive),
        beta: 0.05,
        eta: 0.2,
        shards,
        epochs: 1,
        users_per_epoch,
        seed: 0xBE9C4,
        window: WindowMode::Cumulative,
    }
}

fn bench_epoch_ingestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_epoch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for protocol in [ProtocolKind::Grr, ProtocolKind::Oue] {
        for shards in SHARDS {
            for users in USERS_PER_EPOCH {
                group.throughput(Throughput::Elements(users as u64));
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/shards={shards}", protocol.name()), users),
                    &users,
                    |b, &users| {
                        b.iter(|| {
                            let mut engine =
                                StreamEngine::new(spec(protocol, shards, users)).unwrap();
                            black_box(engine.step().unwrap())
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_checkpoint_roundtrip(c: &mut Criterion) {
    // Suspend/resume cost at a realistic state size (d = 102, mid-run).
    let mut group = c.benchmark_group("stream_checkpoint");
    group.sample_size(10);
    let mut engine = StreamEngine::new(spec(ProtocolKind::Grr, 4, 50_000)).unwrap();
    engine.step().unwrap();
    group.bench_function("dump", |b| {
        b.iter(|| black_box(engine.to_checkpoint().render()));
    });
    let bytes = engine.to_checkpoint().render();
    group.bench_function("restore", |b| {
        b.iter(|| {
            let json = Json::parse(black_box(&bytes)).unwrap();
            black_box(StreamEngine::from_checkpoint(&json).unwrap())
        });
    });
    group.finish();
}

/// Locates the `ldp` binary next to the bench executable
/// (`target/<profile>/ldp`). The coordinator spawns it as the shard
/// worker; benches live in `ldp-bench`, so `CARGO_BIN_EXE_ldp` is not
/// available and the path is resolved at runtime instead.
fn ldp_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let profile_dir = exe.parent()?.parent()?;
    let candidate = profile_dir.join(if cfg!(windows) { "ldp.exe" } else { "ldp" });
    candidate.exists().then_some(candidate)
}

fn bench_multiprocess_coordination(c: &mut Criterion) {
    // The distributed-mode overhead question: what does fanning the same
    // 4-shard × 2-epoch run out to worker *processes* (spawn + frame
    // I/O + JSON render/parse per unit) cost relative to the in-process
    // engine, which shares memory and skips serialization entirely? The
    // deltas are bit-identical either way, so the delta in time is pure
    // coordination overhead.
    let Some(binary) = ldp_binary() else {
        eprintln!(
            "stream_multiprocess: skipped — `ldp` binary not found next to the bench \
             executable; build it first: cargo build --release -p ldp-sim --bin ldp"
        );
        return;
    };
    let users = 50_000;
    let mk_spec = || {
        let mut s = spec(ProtocolKind::Grr, 4, users);
        s.epochs = 2;
        s
    };
    let mut group = c.benchmark_group("stream_multiprocess");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(2500));
    group.throughput(Throughput::Elements(2 * users as u64));
    group.bench_function("in_process", |b| {
        b.iter(|| {
            let mut engine = StreamEngine::new(mk_spec()).unwrap();
            engine.run_to_completion().unwrap();
            black_box(engine)
        });
    });
    let launcher = WorkerLauncher::for_binary(binary);
    for workers in [2, 4] {
        let config = CoordinatorConfig {
            workers,
            ..CoordinatorConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| black_box(run_stream(mk_spec(), &launcher, &config).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_epoch_ingestion,
    bench_checkpoint_roundtrip,
    bench_multiprocess_coordination
);
criterion_main!(benches);
