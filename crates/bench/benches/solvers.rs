//! Criterion ablation: the paper's norm-sub KKT solver vs the exact
//! sort-based simplex projection vs the biased clip+normalize baseline
//! (the `PostProcess` ablation called out in DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_common::rng::rng_from_seed;
use ldprecover::solve::{clip_normalize, norm_sub, project_simplex};
use rand::Rng;
use std::hint::black_box;

fn estimates(d: usize, negative_fraction: f64, seed: u64) -> Vec<f64> {
    let mut rng = rng_from_seed(seed);
    (0..d)
        .map(|_| {
            if rng.gen::<f64>() < negative_fraction {
                -0.2 * rng.gen::<f64>()
            } else {
                rng.gen::<f64>() / d as f64 * 4.0
            }
        })
        .collect()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for d in [102usize, 490, 4096] {
        // Heavy-negative input: many norm-sub iterations (worst case).
        let est = estimates(d, 0.5, 7);
        group.bench_with_input(BenchmarkId::new("norm_sub", d), &d, |b, _| {
            b.iter(|| black_box(norm_sub(&est)));
        });
        group.bench_with_input(BenchmarkId::new("project_simplex", d), &d, |b, _| {
            b.iter(|| black_box(project_simplex(&est)));
        });
        group.bench_with_input(BenchmarkId::new("clip_normalize", d), &d, |b, _| {
            b.iter(|| black_box(clip_normalize(&est)));
        });
    }
    group.finish();
}

fn bench_norm_sub_iteration_regimes(c: &mut Criterion) {
    // Few vs many deactivation rounds.
    let mut group = c.benchmark_group("norm_sub_regimes");
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (label, negative_fraction) in [("mostly_positive", 0.05), ("mostly_negative", 0.9)] {
        let est = estimates(1024, negative_fraction, 11);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| black_box(norm_sub(&est)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_norm_sub_iteration_regimes);
criterion_main!(benches);
