//! Criterion micro-benchmarks: perturbation and aggregation throughput of
//! the three LDP protocols vs domain size.
//!
//! These quantify the simulator's hot paths (OUE bit perturbation, OLH
//! hashing) that dominate full-scale trial cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldp_common::rng::rng_from_seed;
use ldp_common::Domain;
use ldp_protocols::{CountAccumulator, LdpFrequencyProtocol, ProtocolKind};
use std::hint::black_box;

fn bench_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for kind in ProtocolKind::ALL {
        for d in [102usize, 490] {
            let domain = Domain::new(d).unwrap();
            let protocol = kind.build(0.5, domain).unwrap();
            let mut rng = rng_from_seed(1);
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(BenchmarkId::new(kind.name(), d), &d, |b, _| {
                b.iter(|| black_box(protocol.perturb(black_box(7), &mut rng)));
            });
        }
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for kind in ProtocolKind::ALL {
        for d in [102usize, 490] {
            let domain = Domain::new(d).unwrap();
            let protocol = kind.build(0.5, domain).unwrap();
            let mut rng = rng_from_seed(2);
            let reports: Vec<_> = (0..256)
                .map(|i| protocol.perturb(i % d, &mut rng))
                .collect();
            group.throughput(Throughput::Elements(reports.len() as u64));
            group.bench_with_input(BenchmarkId::new(kind.name(), d), &d, |b, _| {
                b.iter(|| {
                    let mut acc = CountAccumulator::new(domain);
                    for r in &reports {
                        acc.add(&protocol, r);
                    }
                    black_box(acc.counts()[0])
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_perturb, bench_aggregate);
criterion_main!(benches);
