//! Criterion micro-benchmarks: LDPRecover's recovery cost vs domain size
//! and knowledge mode. Recovery is O(d · iterations) — thousands of times
//! cheaper than aggregation, which is what makes the η sweep reuse
//! worthwhile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_common::rng::rng_from_seed;
use ldp_common::Domain;
use ldp_protocols::PureParams;
use ldprecover::LdpRecover;
use rand::Rng;
use std::hint::black_box;

fn poisoned_fixture(d: usize, seed: u64) -> (Vec<f64>, PureParams) {
    let mut rng = rng_from_seed(seed);
    let domain = Domain::new(d).unwrap();
    let e = 0.5f64.exp();
    let denom = d as f64 - 1.0 + e;
    let params = PureParams::new(e / denom, 1.0 / denom, domain).unwrap();
    // Zipf-ish truth plus additive noise, some entries negative.
    let poisoned: Vec<f64> = (0..d)
        .map(|v| 1.0 / (v as f64 + 1.0) / 5.0 + 0.02 * (rng.gen::<f64>() - 0.6))
        .collect();
    (poisoned, params)
}

fn bench_recover(c: &mut Criterion) {
    let mut group = c.benchmark_group("recover");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for d in [102usize, 490, 2048, 16384] {
        let (poisoned, params) = poisoned_fixture(d, 1);
        let recover = LdpRecover::new(0.2).unwrap();
        group.bench_with_input(BenchmarkId::new("non_knowledge", d), &d, |b, _| {
            b.iter(|| black_box(recover.recover(&poisoned, params).unwrap()));
        });

        let targets: Vec<usize> = (0..10.min(d)).collect();
        let star = LdpRecover::new(0.2).unwrap().with_targets(targets);
        group.bench_with_input(BenchmarkId::new("partial_knowledge", d), &d, |b, _| {
            b.iter(|| black_box(star.recover(&poisoned, params).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recover);
criterion_main!(benches);
