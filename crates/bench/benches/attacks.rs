//! Criterion micro-benchmarks: attack crafting throughput — notably the
//! cost gap between the paper's sampled MGA and the precise MGA (whose OLH
//! arm pays for a per-report seed search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldp_attacks::{AdaptiveAttack, Mga, MgaSampled, PoisoningAttack};
use ldp_common::rng::rng_from_seed;
use ldp_common::Domain;
use ldp_protocols::ProtocolKind;
use std::hint::black_box;

const M: usize = 512;

fn bench_crafting(c: &mut Criterion) {
    let domain = Domain::new(102).unwrap();
    let mut group = c.benchmark_group("craft");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Elements(M as u64));

    for kind in ProtocolKind::ALL {
        let protocol = kind.build(0.5, domain).unwrap();

        let mut rng = rng_from_seed(1);
        let aa = AdaptiveAttack::random(domain, &mut rng);
        group.bench_with_input(BenchmarkId::new("adaptive", kind.name()), &(), |b, ()| {
            b.iter(|| black_box(aa.craft(&protocol, M, &mut rng)));
        });

        let mut rng = rng_from_seed(2);
        let sampled = MgaSampled::random_targets(domain, 10, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("mga_sampled", kind.name()),
            &(),
            |b, ()| {
                b.iter(|| black_box(sampled.craft(&protocol, M, &mut rng)));
            },
        );

        let mut rng = rng_from_seed(3);
        let precise = Mga::random_targets(domain, 10, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("mga_precise", kind.name()),
            &(),
            |b, ()| {
                b.iter(|| black_box(precise.craft(&protocol, M, &mut rng)));
            },
        );
    }
    group.finish();
}

fn bench_olh_seed_search_budget(c: &mut Criterion) {
    // Ablation: how the seed-search budget scales MGA-OLH crafting cost.
    let domain = Domain::new(102).unwrap();
    let protocol = ProtocolKind::Olh.build(0.5, domain).unwrap();
    let mut group = c.benchmark_group("mga_olh_seed_trials");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for trials in [10usize, 50, 200] {
        let mut rng = rng_from_seed(4);
        let mga = Mga::random_targets(domain, 10, &mut rng).with_seed_trials(trials);
        group.bench_with_input(BenchmarkId::from_parameter(trials), &trials, |b, _| {
            b.iter(|| black_box(mga.craft(&protocol, 64, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crafting, bench_olh_seed_search_budget);
criterion_main!(benches);
