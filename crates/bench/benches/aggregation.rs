//! Per-user vs count-based batched aggregation throughput.
//!
//! Quantifies the batched engine's headline claim: all five protocols
//! (GRR/OUE/SUE/HR, and OLH since the λ-split mixture sampler) sample
//! aggregate support counts in `O(d)`–`O(d·log n)` independent of the
//! population size, versus the `O(n·d)` per-user loop. The OLH rows are
//! the ones to watch — they measure the closed-form sampler that retired
//! the grouped per-user fallback.
//!
//! Run with `cargo bench --bench aggregation`; CI runs it in `--release`
//! and gates the emitted `BENCH_aggregation.json` against the blessed
//! trajectory (see `crates/bench/trajectory/`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldp_common::rng::rng_from_seed;
use ldp_common::sampling::zipf_weights;
use ldp_common::Domain;
use ldp_protocols::{CountAccumulator, LdpFrequencyProtocol, ProtocolKind};
use std::hint::black_box;

/// IPUMS-like domain size (paper §VI-A.1).
const D: usize = 102;

/// A Zipf(1)-shaped population of `n` users over `d` items — the skewed
/// shape real frequency workloads have.
fn item_counts_over(d: usize, n: u64) -> Vec<u64> {
    let weights = zipf_weights(d, 1.0);
    let total: f64 = weights.iter().sum();
    let mut counts: Vec<u64> = weights
        .iter()
        .map(|w| ((w / total) * n as f64).floor() as u64)
        .collect();
    let assigned: u64 = counts.iter().sum();
    counts[0] += n - assigned;
    counts
}

fn item_counts(n: u64) -> Vec<u64> {
    item_counts_over(D, n)
}

/// The population sizes of the comparison: 10⁴, 10⁵, and the paper-scale
/// 10⁶.
const POPULATIONS: [u64; 3] = [10_000, 100_000, 1_000_000];

fn bench_per_user(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_per_user");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for kind in ProtocolKind::EXTENDED {
        for n in POPULATIONS {
            let domain = Domain::new(D).unwrap();
            let protocol = kind.build(0.5, domain).unwrap();
            let counts = item_counts(n);
            let mut rng = rng_from_seed(1);
            group.throughput(Throughput::Elements(n));
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                b.iter(|| {
                    let mut acc = CountAccumulator::new(domain);
                    for (item, &c) in counts.iter().enumerate() {
                        for _ in 0..c {
                            let report = protocol.perturb(item, &mut rng);
                            acc.add(&protocol, &report);
                        }
                    }
                    black_box(acc.counts()[0])
                });
            });
        }
    }
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_batched");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for kind in ProtocolKind::EXTENDED {
        for n in POPULATIONS {
            let domain = Domain::new(D).unwrap();
            let protocol = kind.build(0.5, domain).unwrap();
            let counts = item_counts(n);
            let mut rng = rng_from_seed(2);
            group.throughput(Throughput::Elements(n));
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        protocol
                            .batch_aggregate(black_box(&counts), &mut rng)
                            .expect("enum protocols all batch"),
                    )
                });
            });
        }
    }
    group.finish();
}

/// The FWHT readoff claim in isolation: folding n = 10⁶ pre-generated HR
/// reports into support counts at a wide domain (d = 1024 → Hadamard
/// order k = 2048). `loop` is the per-report scatter (O(n·d) column
/// adds, the pre-kernel per-user path); `fwht` is
/// `CountAccumulator::add_batch`, which histograms the reports and does
/// one O(k log k) transform. Perturbation is deliberately hoisted out of
/// the timed body so the two cases differ only in the readoff.
fn bench_hr_accumulate_wide(c: &mut Criterion) {
    const D_WIDE: usize = 1024;
    const N: u64 = 1_000_000;
    let mut group = c.benchmark_group("accumulate_hr_wide");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let domain = Domain::new(D_WIDE).unwrap();
    let protocol = ProtocolKind::Hr.build(0.5, domain).unwrap();
    let mut rng = rng_from_seed(3);
    let mut reports = Vec::with_capacity(N as usize);
    for (item, &c) in item_counts_over(D_WIDE, N).iter().enumerate() {
        for _ in 0..c {
            reports.push(protocol.perturb(item, &mut rng));
        }
    }
    group.throughput(Throughput::Elements(N));
    group.bench_with_input(BenchmarkId::new("loop", N), &N, |b, _| {
        b.iter(|| {
            let mut acc = CountAccumulator::new(domain);
            for report in &reports {
                acc.add(&protocol, report);
            }
            black_box(acc.counts()[0])
        });
    });
    group.bench_with_input(BenchmarkId::new("fwht", N), &N, |b, _| {
        b.iter(|| {
            let mut acc = CountAccumulator::new(domain);
            acc.add_batch(&protocol, &reports);
            black_box(acc.counts()[0])
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_per_user,
    bench_batched,
    bench_hr_accumulate_wide
);
criterion_main!(benches);
