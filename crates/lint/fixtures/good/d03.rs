// Fixture: D03 twin — epsilon bands for computed values, the blessed
// ldp_common::float helpers for intentional exact sentinel checks.
use ldp_common::float::{exact_eq, exactly_zero};

pub fn is_reset(x: f64) -> bool {
    exactly_zero(x)
}

pub fn unit_scale(scale: f64) -> bool {
    exact_eq(scale, 1.0)
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

pub fn int_compare(n: u64) -> bool {
    // Integer equality is fine — the rule only watches float operands.
    n == 0
}
