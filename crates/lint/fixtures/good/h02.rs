// Fixture: H02 twin — library code renders; callers that own a
// terminal (the CLI, bench binaries) print.
pub fn report(x: u64) -> String {
    format!("x = {x}\n")
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("debugging a test is allowed");
        assert_eq!(super::report(3), "x = 3\n");
    }
}
