// Fixture: D10 twin — parallel work flows through the audited fan-out
// (map_trials owns worker topology and join order); the caller never
// touches a thread handle itself.
use ldp_sim::runner::map_trials;

pub fn fan_out(n_trials: usize, threads: usize, master: u64) -> Vec<u64> {
    map_trials(n_trials, threads, move |trial| master ^ trial as u64)
}
