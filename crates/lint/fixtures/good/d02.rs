// Fixture: D02 twin — every random bit derives from the master seed;
// nothing observes real time. Mentions of banned names in comments
// (thread_rng, SystemTime::now) and strings must not fire.
use ldp_common::rng::{derive_seed2, rng_from_seed};
use rand::Rng;

pub fn shard_stream(master: u64, shard: u64, epoch: u64) -> u64 {
    let mut rng = rng_from_seed(derive_seed2(master, shard, epoch));
    rng.random_range(0..u64::MAX)
}

pub fn describe() -> &'static str {
    "deterministic: no SystemTime::now, no thread_rng"
}
