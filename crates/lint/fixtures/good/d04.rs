// Fixture: D04 twin — typed errors, justified expects, and test-scope
// unwraps (exempt).
use ldp_common::{LdpError, Result};

pub fn first_plus_one(xs: &[u64]) -> Result<u64> {
    let first = xs
        .first()
        .ok_or_else(|| LdpError::invalid("empty input".to_string()))?;
    let parsed: u64 = "7"
        .parse()
        .expect("literal '7' always parses as u64");
    Ok(first + parsed)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Vec<u64> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
