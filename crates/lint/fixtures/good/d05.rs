// Fixture: D05 twin — streams derive from the caller's master seed;
// literals stay confined to test code.
use ldp_common::rng::{derive_seed2, rng_from_seed};
use rand::Rng;

pub fn sample(master: u64, trial: u64) -> u64 {
    let mut rng = rng_from_seed(derive_seed2(master, trial, 0));
    rng.random_range(0..10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_seeds_are_fine_in_tests() {
        let mut rng = ldp_common::rng::rng_from_seed(7);
        let _ = rng.random_range(0..10u64);
    }
}
