// Fixture: D09 twin — artifacts route through write_atomic (temp file
// + rename, so readers only ever observe a complete file); plain reads
// are not writes, and scratch files inside test regions are exempt.
use ldp_common::write_atomic;

pub fn dump_report(path: &std::path::Path, body: &str) -> ldp_common::Result<()> {
    write_atomic(path, body)
}

pub fn load_report(path: &str) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_in_tests_are_fine() {
        std::fs::write("/tmp/scratch.json", b"{}").expect("tmp writable");
    }
}
