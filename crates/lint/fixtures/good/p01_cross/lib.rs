#![forbid(unsafe_code)]
// Fixture: P01 cross-file twin — same two-file shape, but the whole
// closure is a function of its arguments and every call resolves.
//@ pure-roots: compute_delta
pub mod util;

pub fn compute_delta(cells: u64, knob: u64) -> u64 {
    util::scale(cells, knob)
}
