// The pure tail of the good/p01_cross unit: the tuning knob arrives as
// a parameter, so the closure reads no ambient state.

pub fn scale(cells: u64, knob: u64) -> u64 {
    jitter(knob) + cells
}

fn jitter(knob: u64) -> u64 {
    knob.rotate_left(1)
}
