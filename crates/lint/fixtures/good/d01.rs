// Fixture: D01 twin — hash collections used only for membership, with
// iteration routed through sorted/ordered structures.
use std::collections::{BTreeMap, HashSet};

pub fn tally(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    // BTreeMap iteration is key-ordered: deterministic.
    counts.into_iter().collect()
}

pub fn dedup_in_order(xs: &[u64]) -> Vec<u64> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for &x in xs {
        // Membership checks on a HashSet stay legal — only iteration
        // observes the nondeterministic order.
        if seen.insert(x) {
            out.push(x);
        }
    }
    out
}
