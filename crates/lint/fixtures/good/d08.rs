// Fixture: D08 twin — RNG consumption order made explicit with
// sequential `let` bindings, or decorrelated entirely with independent
// derived streams; either way no call observes argument evaluation
// order.
use ldp_common::rng::{derive_seed2, rng_from_seed};
use rand::Rng;

pub fn ordered_pair(rng: &mut impl Rng) -> (u64, u64) {
    let first = rng.random_range(0..10);
    let second = rng.random_range(0..10);
    pair(draw(first), draw(second))
}

pub fn independent_streams(master: u64) -> u64 {
    let mut a_rng = rng_from_seed(derive_seed2(master, 0, 0));
    let mut b_rng = rng_from_seed(derive_seed2(master, 1, 0));
    combine(sample(3, &mut a_rng), sample(7, &mut b_rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_be_sloppy_about_order() {
        let mut rng = rng_from_seed(7);
        let _ = pair(draw(rng.random_range(0..10)), draw(rng.random_range(0..10)));
    }
}
