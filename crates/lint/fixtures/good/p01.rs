// Fixture: P01 twin — the whole call closure of the pure root is a
// function of its arguments: the tuning knob arrives as a parameter
// instead of an environment read, and nothing touches shared state.
//@ pure-roots: entry

pub fn entry(cells: u64, knob: u64) -> u64 {
    scale(cells, knob)
}

fn scale(cells: u64, knob: u64) -> u64 {
    cells * knob.max(1)
}
