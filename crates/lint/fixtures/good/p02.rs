// Fixture: P02 twin — every draw has a defined position in exactly one
// stream: sequential `let`s fix the consumption order, independent
// streams come from derive_seed2 instead of clone(), and the trial
// fan-out derives a per-trial stream *inside* the closure.
use ldp_common::rng::{derive_seed2, rng_from_seed};

pub fn ordered(rng: &mut R) -> u64 {
    let a = rng.next_u64();
    let b = rng.next_u64();
    a ^ b
}

pub fn independent(master: u64) -> u64 {
    let mut fresh = rng_from_seed(derive_seed2(master, 9, 0));
    fresh.next_u64()
}

pub fn per_trial(master: u64) -> Vec<u64> {
    map_trials(8, 2, move |trial| {
        let mut trial_rng = rng_from_seed(derive_seed2(master, trial as u64, 0));
        trial_rng.next_u64()
    })
}

pub fn map_trials(n_trials: usize, threads: usize, run: fn(usize) -> u64) -> Vec<u64> {
    Vec::new()
}
