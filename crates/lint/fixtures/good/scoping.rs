// Fixture: lexer/scoping torture twin — banned spellings hidden where
// the rules must NOT see them: comments (line, doc, nested block),
// cooked/raw strings, char-vs-lifetime territory, and test regions.
//
// thread_rng SystemTime::now unwrap() println! == 0.0   <- comment: ignored

/* nested /* block comment with Instant::now and .unwrap() */ still fine */

//! not really inner docs, but: rand::random and expect("")

pub fn strings<'a>(s: &'a str) -> String {
    let cooked = "SystemTime::now() .unwrap() println!(\"x\") == 0.0";
    let raw = r#"thread_rng() and rng_from_seed(42) stay inert in raw strings"#;
    let ch: char = '=';
    let lifetime_marker: &'a str = s;
    format!("{cooked}{raw}{ch}{lifetime_marker}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_is_legal_in_test_scope() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        for (k, v) in &m {
            println!("{k}={v}");
        }
        let x: f64 = 0.0;
        assert!(x == 0.0);
        let _ = m.get(&1).unwrap();
        let _ = ldp_common::rng::rng_from_seed(42);
    }
}
