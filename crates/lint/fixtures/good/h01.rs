#![forbid(unsafe_code)]
//! Fixture: H01 twin — a crate root carrying the forbid attribute.

pub mod something;
