// Fixture: D01 — HashMap/HashSet iteration in library code.
// `//~ <ID>` markers name the rule expected to fire on that line.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (k, v) in &counts { //~ D01
        out.push((*k, *v));
    }
    out
}

pub fn keys_of(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect() //~ D01
}

pub fn drain_all(seen: &mut HashSet<u64>) -> Vec<u64> {
    seen.drain().collect() //~ D01
}
