// Fixture: D03 — float equality comparisons.
pub fn is_reset(x: f64) -> bool {
    x == 0.0 //~ D03
}

pub fn not_unit(y: f64) -> bool {
    1.0 != y //~ D03
}

pub fn cast_compare(n: u64, z: f64) -> bool {
    n as f64 == z //~ D03
}

pub fn fract_check(v: f64) -> bool {
    v.fract() == 0.0 //~ D03
}
