// Fixture: P01 — impurity reachable from a declared pure root. `entry`
// is pure on its face; the taint hides one hop down (`scale` reads the
// environment) and in a shared counter (`bump` bumps an
// interior-mutable static). The pass reports each impurity site with
// the full root → … → fn chain.
//@ pure-roots: entry
use std::sync::atomic::{AtomicU64, Ordering};

static CALLS: AtomicU64 = AtomicU64::new(0);

pub fn entry(cells: u64) -> u64 {
    bump();
    scale(cells)
}

fn bump() {
    CALLS.fetch_add(1, Ordering::Relaxed); //~ P01
}

fn scale(cells: u64) -> u64 {
    let knob = match std::env::var("LDP_SCALE") { //~ P01
        Ok(v) => v.len() as u64,
        Err(_) => 1,
    };
    cells * knob
}
