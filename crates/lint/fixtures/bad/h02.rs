// Fixture: H02 — stray terminal output from library code.
pub fn report(x: u64) -> u64 {
    println!("x = {x}"); //~ H02
    eprintln!("warning: something"); //~ H02
    x
}
