// Fixture: D08 — one RNG drawn from in two argument positions of a
// single call. Argument evaluation order is defined (left-to-right)
// today, but any refactor that reorders, splits, or lifts the arguments
// silently reshuffles the consumed stream — and every downstream draw.
use rand::Rng;

pub fn poisoned_pair(rng: &mut impl Rng) -> (u64, u64) {
    pair(draw(rng.random_range(0..10)), draw(rng.random_range(0..10))) //~ D08
}

pub fn nested_draws(rng: &mut impl Rng) -> u64 {
    combine(sample(3, &mut rng), sample(7, &mut rng)) //~ D08
}
