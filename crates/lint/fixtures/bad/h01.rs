//~ H01
//! Fixture: H01 — a crate root (the harness labels this file
//! `crates/fixturecrate/src/lib.rs`) without `#![forbid(unsafe_code)]`.
//! The marker sits on line 1 because the finding anchors at 1:1.

pub mod something;
