// Fixture: D05 — hard-coded seed literal in a production path.
use ldp_common::rng::rng_from_seed;
use rand::Rng;

pub fn sample() -> u64 {
    let mut rng = rng_from_seed(42); //~ D05
    rng.random_range(0..10)
}
