// Fixture: D02 — ambient entropy and wall-clock reads.
use std::time::{Instant, SystemTime};

pub fn jittery_seed() -> u64 {
    let mut rng = rand::thread_rng(); //~ D02
    let x: u64 = rand::random(); //~ D02
    let _ = rng.next_u64();
    x
}

pub fn timed(mut f: impl FnMut()) -> u128 {
    let start = Instant::now(); //~ D02
    f();
    start.elapsed().as_nanos()
}

pub fn stamp() -> SystemTime {
    SystemTime::now() //~ D02
}
