// Fixture: D04 — panicking extraction in library code.
pub fn first_plus_one(xs: &[u64]) -> u64 {
    let first = xs.first().unwrap(); //~ D04
    let parsed: u64 = "7".parse().expect(""); //~ D04
    first + parsed
}
