// Fixture: D10 — thread/process spawns outside the audited surface.
// All parallelism must flow through map_trials* (deterministic join
// order) or the stream coordinator; a stray spawn is unaudited
// interleaving that no replay harness covers.
use std::thread;

pub fn fan_out(jobs: Vec<Job>) -> Vec<thread::JoinHandle<u64>> {
    jobs.into_iter()
        .map(|job| thread::spawn(move || job.run())) //~ D10
        .collect()
}

pub fn shell_out(cmd: &mut std::process::Command) -> std::io::Result<std::process::Child> {
    cmd.spawn() //~ D10
}
