// Fixture: D09 — artifact writes bypassing ldp_common::write_atomic. A
// crash between the open and the final flush leaves a torn half-file,
// which checkpoint-resume and the golden gates then read as corrupt —
// or worse, truncated-but-parseable.
use std::fs;
use std::fs::File;

pub fn dump_report(path: &str, body: &str) -> std::io::Result<()> {
    fs::write(path, body) //~ D09
}

pub fn open_artifact(path: &str) -> std::io::Result<File> {
    File::create(path) //~ D09
}

pub fn snapshot(src: &str, dst: &str) -> std::io::Result<u64> {
    fs::copy(src, dst) //~ D09
}

pub fn fresh_manifest(path: &str) -> std::io::Result<File> {
    File::create_new(path) //~ D09
}
