// Fixture: P02 — the three RNG stream-discipline shapes. (a) One RNG
// feeding two calls inside a single statement consumes the stream in
// evaluation order, which the next refactor silently reshuffles;
// (b) cloning an RNG forks the stream into replayed draws; (c) an RNG
// captured by a closure handed to a trial fan-out draws in scheduler
// order.

pub fn double_draw(rng: &mut R) -> u64 {
    rng.next_u64() ^ rng.next_u64() //~ P02
}

pub fn forked(rng: &mut R) -> R {
    rng.clone() //~ P02
}

pub fn captured(rng: &mut R) -> Vec<u64> {
    map_trials(8, 2, |trial| trial as u64 ^ rng.next_u64()) //~ P02
}

pub fn map_trials(n_trials: usize, threads: usize, run: fn(usize) -> u64) -> Vec<u64> {
    Vec::new()
}
