// The impure tail of the bad/p01_cross unit: `scale` is reached from
// the pure root `compute_delta` in lib.rs, and its helper reads the
// environment.

pub fn scale(cells: u64) -> u64 {
    jitter() + cells
}

fn jitter() -> u64 {
    match std::env::var("LDP_JITTER") { //~ P01
        Ok(v) => v.len() as u64,
        Err(_) => 0,
    }
}
