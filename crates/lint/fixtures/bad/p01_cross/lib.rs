#![forbid(unsafe_code)]
// Fixture: P01 cross-file — the caller looks pure; the impurity lives
// in another file, two hops down the call graph. Also the pessimism
// case: a workspace-rooted path that resolves to nothing is treated as
// impure at the call site (waivable per edge, never silently trusted).
//@ pure-roots: compute_delta opaque_root
pub mod util;

pub fn compute_delta(cells: u64) -> u64 {
    util::scale(cells)
}

pub fn opaque_root(cells: u64) -> u64 {
    crate::missing::helper(cells) //~ P01
}
