//! Token-tree builder: `()`/`[]`/`{}` nesting over the lexer's flat
//! token stream.
//!
//! The cross-file passes ([`crate::symbols`], [`crate::callgraph`],
//! [`crate::passes`]) constantly need "the extent of this group": the
//! body of a `fn`, the argument list of a call, the block of a `mod`.
//! Re-deriving that by depth-counting at every use site is both slow and
//! easy to get subtly wrong, so this module computes it once per file:
//!
//! * [`delim_matches`] — a flat map from every opening delimiter token
//!   index to its matching closer (and back), which is what most
//!   consumers actually want;
//! * [`build_forest`] — a recursive [`Node`] forest for consumers that
//!   walk structure (currently the symbol-table module's `mod`-block
//!   scoping).
//!
//! Angle brackets are deliberately **not** delimiters: `<`/`>` are
//! operators in Rust's token stream (`a < b`, `->`), so generics nesting
//! cannot be balanced at this level. The builder is total: unbalanced
//! input (which rustc would reject anyway) degrades to unmatched leaves
//! instead of failing.

use crate::lexer::Tok;

/// The three bracket kinds that nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` … `)`
    Paren,
    /// `[` … `]`
    Bracket,
    /// `{` … `}`
    Brace,
}

impl Delim {
    /// Classifies an opening delimiter token.
    pub fn from_open(t: &Tok) -> Option<Delim> {
        match () {
            _ if t.is_punct("(") => Some(Delim::Paren),
            _ if t.is_punct("[") => Some(Delim::Bracket),
            _ if t.is_punct("{") => Some(Delim::Brace),
            _ => None,
        }
    }

    /// Classifies a closing delimiter token.
    pub fn from_close(t: &Tok) -> Option<Delim> {
        match () {
            _ if t.is_punct(")") => Some(Delim::Paren),
            _ if t.is_punct("]") => Some(Delim::Bracket),
            _ if t.is_punct("}") => Some(Delim::Brace),
            _ => None,
        }
    }
}

/// One node of the token tree: a plain token, or a delimited group.
#[derive(Debug)]
pub enum Node {
    /// A non-delimiter token, by index into the lexed stream.
    Leaf(usize),
    /// A balanced group.
    Group(Group),
}

/// A balanced delimiter group and its children.
#[derive(Debug)]
pub struct Group {
    /// Which bracket pair.
    pub delim: Delim,
    /// Token index of the opener.
    pub open: usize,
    /// Token index of the closer; `None` when the input ran out first.
    pub close: Option<usize>,
    /// Nested structure between the delimiters.
    pub children: Vec<Node>,
}

/// Builds the nesting forest for a whole token stream.
///
/// Mismatched closers (e.g. a stray `)` inside a `{` block) are treated
/// as leaves, so one bad token cannot swallow the rest of the file.
pub fn build_forest(toks: &[Tok]) -> Vec<Node> {
    let mut i = 0usize;
    parse_nodes(toks, &mut i, None)
}

fn parse_nodes(toks: &[Tok], i: &mut usize, closing: Option<Delim>) -> Vec<Node> {
    let mut out = Vec::new();
    while *i < toks.len() {
        let t = &toks[*i];
        if let Some(d) = Delim::from_close(t) {
            if Some(d) == closing {
                return out; // caller consumes the closer
            }
            // Mismatched closer: degrade to a leaf.
            out.push(Node::Leaf(*i));
            *i += 1;
            continue;
        }
        if let Some(d) = Delim::from_open(t) {
            let open = *i;
            *i += 1;
            let children = parse_nodes(toks, i, Some(d));
            let close = if *i < toks.len() && Delim::from_close(&toks[*i]) == Some(d) {
                let c = *i;
                *i += 1;
                Some(c)
            } else {
                None
            };
            out.push(Node::Group(Group {
                delim: d,
                open,
                close,
                children,
            }));
            continue;
        }
        out.push(Node::Leaf(*i));
        *i += 1;
    }
    out
}

/// For every token index: the index of its matching partner delimiter
/// (`open → close` **and** `close → open`), or `None` for non-delimiter
/// or unmatched tokens. This is the flat view most passes consume.
pub fn delim_matches(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut matches = vec![None; toks.len()];
    let mut stack: Vec<(Delim, usize)> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if let Some(d) = Delim::from_open(t) {
            stack.push((d, k));
        } else if let Some(d) = Delim::from_close(t) {
            // Pop until a matching opener; non-matching openers stay
            // unmatched (same degradation as the forest builder).
            if let Some(pos) = stack.iter().rposition(|&(sd, _)| sd == d) {
                let (_, open) = stack[pos];
                stack.truncate(pos);
                matches[open] = Some(k);
                matches[k] = Some(open);
            }
        }
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn matches_pair_up_nested_groups() {
        let toks = lex("fn f(a: [u8; 4]) { g(x); }");
        let m = delim_matches(&toks);
        // Every matched pair points at each other symmetrically.
        for (k, partner) in m.iter().enumerate() {
            if let Some(p) = partner {
                assert_eq!(m[*p], Some(k), "asymmetric match at {k}");
            }
        }
        // fn body: `{` is matched to the final `}`.
        let open_brace = toks.iter().position(|t| t.is_punct("{")).unwrap();
        let close_brace = toks.iter().rposition(|t| t.is_punct("}")).unwrap();
        assert_eq!(m[open_brace], Some(close_brace));
    }

    #[test]
    fn forest_mirrors_nesting() {
        let toks = lex("a { b ( c ) } d");
        let forest = build_forest(&toks);
        assert_eq!(forest.len(), 3); // a, {…}, d
        let Node::Group(g) = &forest[1] else {
            panic!("expected group");
        };
        assert_eq!(g.delim, Delim::Brace);
        assert!(g.close.is_some());
        assert_eq!(g.children.len(), 2); // b, (…)
    }

    #[test]
    fn unbalanced_input_degrades_instead_of_failing() {
        let toks = lex("f ( a } b");
        let forest = build_forest(&toks);
        assert!(!forest.is_empty());
        let m = delim_matches(&toks);
        let open = toks.iter().position(|t| t.is_punct("(")).unwrap();
        assert_eq!(m[open], None, "unclosed paren stays unmatched");
    }

    #[test]
    fn angle_brackets_are_not_delimiters() {
        let toks = lex("fn f() -> Vec<u8> { Vec::new() }");
        let m = delim_matches(&toks);
        for (k, t) in toks.iter().enumerate() {
            if t.is_punct("<") || t.is_punct(">") {
                assert_eq!(m[k], None);
            }
        }
    }
}
